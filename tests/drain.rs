//! Bounded-drain regression: `Glt::finalize` with wedged units must
//! come back with a `DrainError` after the configured deadline — one
//! case per backend — instead of the historical hang.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lwt::sync::Event;
use lwt::{BackendKind, Glt};

/// A unit that parks on `ev`, yielding cooperatively so its worker can
/// still observe the runtime's abandon flag between resumptions.
/// (Argobots yields through its own scheduler, the ultcore-based
/// backends through `lwt_ultcore`; a Converse *message* executes
/// atomically and can only spin — that path exercises the
/// detach-wedged-worker degradation instead.)
fn park(ev: Arc<Event>) -> impl FnOnce() {
    move || {
        ev.wait(|| {
            if lwt::argobots::in_ult() {
                lwt::argobots::yield_now();
            } else if lwt::ultcore::in_ult() {
                lwt::ultcore::yield_now();
            } else {
                std::thread::yield_now();
            }
        });
    }
}

#[test]
fn finalize_reports_stragglers_instead_of_hanging() {
    const DRAIN: Duration = Duration::from_millis(200);
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).drain_timeout(DRAIN).build();
        let ev = Arc::new(Event::new());
        let handles: Vec<_> = (0..4).map(|_| glt.ult_create(park(ev.clone()))).collect();
        let start = Instant::now();
        let err = glt.finalize().expect_err("wedged units must surface as DrainError");
        assert_eq!(err.waited, DRAIN, "backend {kind}");
        // Bounded: deadline + quiescence poll + abandon grace, with
        // headroom for a loaded CI host — but nowhere near a hang.
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "backend {kind}: drain took {:?}",
            start.elapsed()
        );
        // The error formats into a human-readable straggler table.
        assert!(
            format!("{err}").contains("drain incomplete"),
            "backend {kind}: {err}"
        );
        // Unpark so abandoned/detached workers wind down; the unjoined
        // handles must stay droppable.
        ev.set();
        drop(handles);
    }
}

#[test]
fn finalize_with_healthy_workload_is_clean_under_short_deadline() {
    // The inverse guard: a deadline generous only on the scale of
    // healthy work must NOT produce spurious DrainErrors.
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind)
            .workers(2)
            .drain_timeout(Duration::from_secs(10))
            .build();
        let handles: Vec<_> = (0..100).map(|i| glt.ult_create(move || i)).collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 4950, "backend {kind}");
        glt.finalize()
            .unwrap_or_else(|e| panic!("backend {kind}: spurious {e}"));
    }
}
