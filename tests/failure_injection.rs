//! Failure injection: panics, mid-flight teardown, and pathological
//! shapes that a production runtime must survive.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lwt::{BackendKind, Glt};

#[test]
fn panicking_units_do_not_poison_the_runtime() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        // Interleave panicking and healthy units; every healthy unit
        // must still complete and every panic must surface at its own
        // join only.
        let mut panics = 0;
        let mut oks = 0;
        let handles: Vec<_> = (0..40)
            .map(|i| {
                glt.ult_create(move || {
                    if i % 5 == 0 {
                        panic!("unit {i} failing by design");
                    }
                    i
                })
            })
            .collect();
        for h in handles {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join())) {
                Ok(_) => oks += 1,
                Err(_) => panics += 1,
            }
        }
        assert_eq!(panics, 8, "backend {kind}");
        assert_eq!(oks, 32, "backend {kind}");
        // The runtime is still healthy afterwards.
        assert_eq!(glt.ult_create(|| 1).join(), 1, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn shutdown_with_unjoined_completed_work_is_clean() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..50)
            .map(|_| {
                let d = done.clone();
                glt.ult_create(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        // Wait for completion but never join the handles; dropping them
        // unjoined must release everything.
        while done.load(Ordering::Relaxed) < 50 {
            std::thread::yield_now();
        }
        drop(handles);
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn deep_chain_of_dependent_spawns() {
    // A linked chain: unit k spawns and joins unit k+1. Exercises deep
    // join nesting across workers without exhausting anything.
    fn chain(rt: &lwt::argobots::Runtime, depth: usize) -> usize {
        if depth == 0 {
            return 0;
        }
        let rt2 = rt.clone();
        let h = rt.ult_create(move || chain(&rt2, depth - 1));
        h.join() + 1
    }
    let rt = lwt::argobots::Runtime::init(lwt::argobots::Config {
        num_streams: 2,
        ..Default::default()
    });
    assert_eq!(chain(&rt, 200), 200);
    rt.shutdown();
}

#[test]
fn zero_sized_and_huge_payloads() {
    let glt = Glt::builder(BackendKind::Qthreads).workers(2).build();
    // ZST result.
    glt.ult_create(|| ()).join();
    // Large result moved through the completion slot.
    let big = glt.ult_create(|| vec![7u8; 1 << 20]).join();
    assert_eq!(big.len(), 1 << 20);
    assert!(big.iter().all(|&b| b == 7));
    glt.finalize().expect("clean drain");
}

#[test]
fn rapid_init_shutdown_cycles() {
    // Runtime lifecycle churn: no leaked threads or poisoned state.
    for kind in BackendKind::ALL {
        for _ in 0..5 {
            let glt = Glt::builder(kind).workers(1).build();
            assert_eq!(glt.ult_create(|| 2 + 2).join(), 4);
            glt.finalize().expect("clean drain");
        }
    }
}

#[test]
fn join_error_payload_downcasts() {
    // The `JoinError` from a fallible join carries the panic payload
    // verbatim; all three common payload shapes must downcast across
    // every backend.
    #[derive(Debug, PartialEq)]
    struct CustomFault {
        code: u32,
    }

    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();

        // `&'static str` — the `panic!("literal")` shape.
        let err = glt
            .ult_create(|| -> u32 { panic!("static str fault") })
            .try_join()
            .expect_err("unit panicked");
        assert_eq!(
            err.into_panic().downcast_ref::<&str>(),
            Some(&"static str fault"),
            "backend {kind}"
        );

        // `String` — the formatted `panic!("...{}...")` shape, also
        // visible through the `message()` convenience accessor.
        let err = glt
            .ult_create(|| -> u32 { panic!("dynamic {}", 6 * 7) })
            .try_join()
            .expect_err("unit panicked");
        assert_eq!(err.message(), Some("dynamic 42"), "backend {kind}");
        let payload = err
            .into_panic()
            .downcast::<String>()
            .expect("String payload downcasts");
        assert_eq!(*payload, "dynamic 42", "backend {kind}");

        // Arbitrary typed payload via `panic_any` — no message, but a
        // clean downcast to the concrete type.
        let err = glt
            .ult_create(|| -> u32 { std::panic::panic_any(CustomFault { code: 7 }) })
            .try_join()
            .expect_err("unit panicked");
        assert_eq!(err.message(), None, "backend {kind}");
        let payload = err
            .into_panic()
            .downcast::<CustomFault>()
            .expect("typed payload downcasts");
        assert_eq!(*payload, CustomFault { code: 7 }, "backend {kind}");

        glt.finalize().expect("clean drain");
    }
}

#[test]
fn chaos_steal_storm_completes_everything() {
    // With the chaos engine forcing steal failures, victim
    // misdirection, stack-cache misses, FEB wake perturbations, and
    // extra yield points at a high rate, every unit must still run to
    // completion on every backend — fault injection degrades
    // performance, never correctness.
    lwt::chaos::force_chaos(0x00C0_FFEE, 75);
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(4).build();
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|_| {
                let d = done.clone();
                glt.ult_create(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(done.load(Ordering::Relaxed), 200, "backend {kind}");
        glt.finalize().expect("clean drain under chaos");
    }
    lwt::chaos::reset_to_env();
}

#[test]
fn watchdog_flags_a_seeded_feb_deadlock() {
    use lwt::chaos::{BlockKind, StallSubject, WatchdogConfig};

    // Seed a deadlock: a reader blocks on an empty FEB cell nobody is
    // filling. The watchdog must flag the blocked wait within its
    // configured interval — and kill nothing (the reader completes
    // normally once the cell is finally written).
    lwt::chaos::force_watchdog(WatchdogConfig {
        interval: std::time::Duration::from_millis(5),
        // Effectively disable worker-stall detection so concurrent
        // tests in this binary can't add unrelated reports.
        worker_stall: std::time::Duration::from_secs(3600),
        blocked_after: std::time::Duration::from_millis(40),
    });

    let cell = Arc::new(lwt::sync::FebCell::<u32>::new());
    let reader = {
        let cell = cell.clone();
        std::thread::spawn(move || cell.read_ff(std::thread::yield_now))
    };

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let flagged = loop {
        let hit = lwt::chaos::reports()
            .iter()
            .any(|r| matches!(r.subject, StallSubject::Blocked(BlockKind::Feb, _)));
        if hit {
            break true;
        }
        if std::time::Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    assert!(flagged, "watchdog never flagged the blocked FEB read");

    // Degradation, not destruction: filling the cell releases the
    // reader unharmed.
    cell.write_ef(9, std::thread::yield_now);
    assert_eq!(reader.join().expect("reader survived being flagged"), 9);

    lwt::chaos::take_reports();
    lwt::chaos::reset_watchdog_to_env();
}

#[test]
fn oversubscribed_burst() {
    // Far more concurrent blocked units than workers: everything still
    // completes (yield-based waiting, no thread exhaustion).
    let rt = lwt::massive::Runtime::init(lwt::massive::Config {
        num_workers: 2,
        policy: lwt::massive::Policy::HelpFirst,
        ..Default::default()
    });
    let total = rt.run(|rt| {
        let handles: Vec<_> = (0..300)
            .map(|i| {
                let rt2 = rt.clone();
                rt.spawn(move || {
                    // Each unit spawns and joins a child: 600 live
                    // stacks at peak on 2 workers.
                    let c = rt2.spawn(move || i);
                    c.join()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).sum::<usize>()
    });
    assert_eq!(total, 300 * 299 / 2);
    rt.shutdown();
}
