//! Failure injection: panics, mid-flight teardown, and pathological
//! shapes that a production runtime must survive.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lwt::{BackendKind, Glt};

#[test]
fn panicking_units_do_not_poison_the_runtime() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        // Interleave panicking and healthy units; every healthy unit
        // must still complete and every panic must surface at its own
        // join only.
        let mut panics = 0;
        let mut oks = 0;
        let handles: Vec<_> = (0..40)
            .map(|i| {
                glt.ult_create(move || {
                    if i % 5 == 0 {
                        panic!("unit {i} failing by design");
                    }
                    i
                })
            })
            .collect();
        for h in handles {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join())) {
                Ok(_) => oks += 1,
                Err(_) => panics += 1,
            }
        }
        assert_eq!(panics, 8, "backend {kind}");
        assert_eq!(oks, 32, "backend {kind}");
        // The runtime is still healthy afterwards.
        assert_eq!(glt.ult_create(|| 1).join(), 1, "backend {kind}");
        glt.finalize();
    }
}

#[test]
fn shutdown_with_unjoined_completed_work_is_clean() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..50)
            .map(|_| {
                let d = done.clone();
                glt.ult_create(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        // Wait for completion but never join the handles; dropping them
        // unjoined must release everything.
        while done.load(Ordering::Relaxed) < 50 {
            std::thread::yield_now();
        }
        drop(handles);
        glt.finalize();
    }
}

#[test]
fn deep_chain_of_dependent_spawns() {
    // A linked chain: unit k spawns and joins unit k+1. Exercises deep
    // join nesting across workers without exhausting anything.
    fn chain(rt: &lwt::argobots::Runtime, depth: usize) -> usize {
        if depth == 0 {
            return 0;
        }
        let rt2 = rt.clone();
        let h = rt.ult_create(move || chain(&rt2, depth - 1));
        h.join() + 1
    }
    let rt = lwt::argobots::Runtime::init(lwt::argobots::Config {
        num_streams: 2,
        ..Default::default()
    });
    assert_eq!(chain(&rt, 200), 200);
    rt.shutdown();
}

#[test]
fn zero_sized_and_huge_payloads() {
    let glt = Glt::builder(BackendKind::Qthreads).workers(2).build();
    // ZST result.
    glt.ult_create(|| ()).join();
    // Large result moved through the completion slot.
    let big = glt.ult_create(|| vec![7u8; 1 << 20]).join();
    assert_eq!(big.len(), 1 << 20);
    assert!(big.iter().all(|&b| b == 7));
    glt.finalize();
}

#[test]
fn rapid_init_shutdown_cycles() {
    // Runtime lifecycle churn: no leaked threads or poisoned state.
    for kind in BackendKind::ALL {
        for _ in 0..5 {
            let glt = Glt::builder(kind).workers(1).build();
            assert_eq!(glt.ult_create(|| 2 + 2).join(), 4);
            glt.finalize();
        }
    }
}

#[test]
fn oversubscribed_burst() {
    // Far more concurrent blocked units than workers: everything still
    // completes (yield-based waiting, no thread exhaustion).
    let rt = lwt::massive::Runtime::init(lwt::massive::Config {
        num_workers: 2,
        policy: lwt::massive::Policy::HelpFirst,
        ..Default::default()
    });
    let total = rt.run(|rt| {
        let handles: Vec<_> = (0..300)
            .map(|i| {
                let rt2 = rt.clone();
                rt.spawn(move || {
                    // Each unit spawns and joins a child: 600 live
                    // stacks at peak on 2 workers.
                    let c = rt2.spawn(move || i);
                    c.join()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).sum::<usize>()
    });
    assert_eq!(total, 300 * 299 / 2);
    rt.shutdown();
}
