//! Chaos-seeded replay for the lwt-net data path: with fault injection
//! forced on (`force_chaos`), the echo exchange must stay byte-exact
//! under injected partial writes ([`lwt::chaos::FaultSite::NetPartialWrite`]),
//! spurious EAGAINs (`NetSpuriousEagain`), and delayed readiness
//! dispatch (`NetDelayedReadiness`) — chaos degrades throughput, never
//! correctness. Lives in its own test binary because `force_chaos` is
//! process-global.

use std::time::Duration;

use lwt::chaos::{self, FaultSite};
use lwt::net::{TcpListener, TcpStream};
use lwt::{BackendKind, Glt};

const JOIN: Duration = Duration::from_secs(120);
const SEED: u64 = 0x1BAD_B002;
const RATE: u64 = 25;
/// Big enough that `write_all` takes many syscalls, so the partial-write
/// and EAGAIN sites each get hundreds of draws from the seeded stream.
const PAYLOAD: usize = 256 * 1024;

fn join_within<T>(h: lwt::GltHandle<T>, what: &str) -> T {
    match h.join_timeout(JOIN) {
        Ok(done) => done.unwrap_or_else(|e| panic!("{what} panicked: {e:?}")),
        Err(_) => panic!("{what} did not finish within {JOIN:?}"),
    }
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

/// One full echo exchange of [`PAYLOAD`] bytes: sync ULT server,
/// async client, both directions crossing the chaos-wrapped read and
/// write paths.
fn echo_round(kind: BackendKind) {
    let glt = Glt::builder(kind).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");

    let server = glt.ult_create(move || {
        let (stream, _peer) = listener.accept().expect("accept");
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf).expect("server read") {
                0 => return,
                n => stream.write_all(&buf[..n]).expect("server write"),
            }
        }
    });

    let client = glt.spawn_async(async move {
        let stream = TcpStream::connect(addr).expect("connect");
        let sent = pattern(PAYLOAD);
        // Write and read concurrently would need a split; instead rely
        // on the loopback buffers by interleaving in chunks well below
        // the kernel's socket buffer size.
        let mut got = vec![0u8; PAYLOAD];
        for (out_chunk, in_chunk) in sent.chunks(8192).zip(got.chunks_mut(8192)) {
            stream.write_all_async(out_chunk).await.expect("client write");
            stream.read_exact_async(in_chunk).await.expect("client read");
        }
        stream.shutdown(std::net::Shutdown::Write).expect("shutdown");
        assert_eq!(got, sent, "payload corrupted under chaos on {kind}");
    });

    join_within(client, "chaos client");
    join_within(server, "chaos server");
    glt.finalize().expect("clean drain");
}

#[test]
fn echo_payload_intact_under_injected_net_faults() {
    chaos::force_chaos(SEED, RATE);
    let seq_before = chaos::site_sequences();
    let counters_before = lwt::metrics::snapshot().counters;

    echo_round(BackendKind::Argobots);

    let seq_after = chaos::site_sequences();
    let counters = lwt::metrics::snapshot().counters.delta(&counters_before);

    // The data path really consulted the net fault sites...
    let partial = seq_after[FaultSite::NetPartialWrite as usize]
        - seq_before[FaultSite::NetPartialWrite as usize];
    let eagain = seq_after[FaultSite::NetSpuriousEagain as usize]
        - seq_before[FaultSite::NetSpuriousEagain as usize];
    assert!(partial > 0, "no draws at NetPartialWrite");
    assert!(eagain > 0, "no draws at NetSpuriousEagain");
    // ...and at 25% over that many draws, faults were actually injected
    // (should_inject counts every injection it grants).
    assert!(
        counters.faults_injected > 0,
        "chaos at rate {RATE}% injected nothing over {} draws",
        partial + eagain
    );

    // Replay: same seed, schedule rewound — the exchange must survive
    // the identical per-site fault stream again.
    chaos::reset_schedule();
    echo_round(BackendKind::Go);

    chaos::reset_to_env();
}
