//! Chaos-seeded replay for the lwt-net data path: with fault injection
//! forced on (`force_chaos`), the echo exchange must stay byte-exact
//! under injected partial writes ([`lwt::chaos::FaultSite::NetPartialWrite`]),
//! spurious EAGAINs (`NetSpuriousEagain`), and delayed readiness
//! dispatch (`NetDelayedReadiness`) — chaos degrades throughput, never
//! correctness. The HTTP storm test adds the overload sites
//! (`NetConnKill`, `NetReadStall`, `HandlerPanic`) against a capped
//! server, and the timeout test pins that a `SpuriousUnpark` storm
//! cannot stretch `join_timeout` / `FebCell::wait_timeout` past their
//! deadlines. Lives in its own test binary because `force_chaos` is
//! process-global; the [`SERIAL`] mutex keeps the tests from
//! overlapping within it.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use lwt::chaos::{self, FaultSite};
use lwt::net::{TcpListener, TcpStream};
use lwt::{BackendKind, Glt};

/// `force_chaos` is process-global: only one chaos test may own it at
/// a time (the harness runs tests in one binary concurrently).
static SERIAL: Mutex<()> = Mutex::new(());

const JOIN: Duration = Duration::from_secs(120);
const SEED: u64 = 0x1BAD_B002;
const RATE: u64 = 25;
/// Big enough that `write_all` takes many syscalls, so the partial-write
/// and EAGAIN sites each get hundreds of draws from the seeded stream.
const PAYLOAD: usize = 256 * 1024;

fn join_within<T>(h: lwt::GltHandle<T>, what: &str) -> T {
    match h.join_timeout(JOIN) {
        Ok(done) => done.unwrap_or_else(|e| panic!("{what} panicked: {e:?}")),
        Err(_) => panic!("{what} did not finish within {JOIN:?}"),
    }
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

/// One full echo exchange of [`PAYLOAD`] bytes: sync ULT server,
/// async client, both directions crossing the chaos-wrapped read and
/// write paths.
fn echo_round(kind: BackendKind) {
    let glt = Glt::builder(kind).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");

    let server = glt.ult_create(move || {
        let (stream, _peer) = listener.accept().expect("accept");
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf).expect("server read") {
                0 => return,
                n => stream.write_all(&buf[..n]).expect("server write"),
            }
        }
    });

    let client = glt.spawn_async(async move {
        let stream = TcpStream::connect(addr).expect("connect");
        let sent = pattern(PAYLOAD);
        // Write and read concurrently would need a split; instead rely
        // on the loopback buffers by interleaving in chunks well below
        // the kernel's socket buffer size.
        let mut got = vec![0u8; PAYLOAD];
        for (out_chunk, in_chunk) in sent.chunks(8192).zip(got.chunks_mut(8192)) {
            stream.write_all_async(out_chunk).await.expect("client write");
            stream.read_exact_async(in_chunk).await.expect("client read");
        }
        stream.shutdown(std::net::Shutdown::Write).expect("shutdown");
        assert_eq!(got, sent, "payload corrupted under chaos on {kind}");
    });

    join_within(client, "chaos client");
    join_within(server, "chaos server");
    glt.finalize().expect("clean drain");
}

#[test]
fn echo_payload_intact_under_injected_net_faults() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    chaos::force_chaos(SEED, RATE);
    let seq_before = chaos::site_sequences();
    let counters_before = lwt::metrics::snapshot().counters;

    echo_round(BackendKind::Argobots);

    let seq_after = chaos::site_sequences();
    let counters = lwt::metrics::snapshot().counters.delta(&counters_before);

    // The data path really consulted the net fault sites...
    let partial = seq_after[FaultSite::NetPartialWrite as usize]
        - seq_before[FaultSite::NetPartialWrite as usize];
    let eagain = seq_after[FaultSite::NetSpuriousEagain as usize]
        - seq_before[FaultSite::NetSpuriousEagain as usize];
    assert!(partial > 0, "no draws at NetPartialWrite");
    assert!(eagain > 0, "no draws at NetSpuriousEagain");
    // ...and at 25% over that many draws, faults were actually injected
    // (should_inject counts every injection it grants).
    assert!(
        counters.faults_injected > 0,
        "chaos at rate {RATE}% injected nothing over {} draws",
        partial + eagain
    );

    // Replay: same seed, schedule rewound — the exchange must survive
    // the identical per-site fault stream again.
    chaos::reset_schedule();
    echo_round(BackendKind::Go);

    chaos::reset_to_env();
}

/// Read one full HTTP response off a std socket; `None` on a clean or
/// reset close before a complete response (retryable under chaos).
fn try_read_response(stream: &mut std::net::TcpStream) -> Option<String> {
    use std::io::Read as _;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let clen: usize = head
                .lines()
                .find_map(|l| {
                    let (n, v) = l.split_once(':')?;
                    n.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + clen {
                return Some(String::from_utf8_lossy(&buf[..head_end + clen]).to_string());
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// The ISSUE's acceptance scenario: a capped HTTP server under a
/// seeded storm of read stalls, handler panics, and post-response
/// connection kills. Every client must converge to a byte-correct
/// `200` within bounded retries — chaos turns into `500`s, `503`s,
/// and transport errors, never into corruption, worker deaths, or
/// hangs — and the runtime must still drain cleanly.
#[test]
fn http_storm_with_panics_and_kills_stays_correct() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    chaos::force_chaos(0xC0FF_EE00, 10);
    let counters_before = lwt::metrics::snapshot().counters;

    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut config = lwt::net::http::ServerConfig::default();
    config.max_conns = 64;
    config.max_inflight = 2;
    config.header_timeout_ms = 10_000;
    config.idle_timeout_ms = 10_000;
    let server = lwt::net::http::serve_config(
        &glt,
        listener,
        config,
        std::sync::Arc::new(|req: &lwt::net::http::Request| {
            lwt::net::http::Response::ok(format!("echo:{}", req.target))
        }),
    )
    .expect("serve");
    let addr = server.addr();

    let clients: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                use std::io::Write as _;
                let want = format!("echo:/storm/{i}");
                for _attempt in 0..50 {
                    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
                        continue;
                    };
                    let req = format!("GET /storm/{i} HTTP/1.1\r\nHost: t\r\n\r\n");
                    if stream.write_all(req.as_bytes()).is_err() {
                        continue; // injected kill mid-request: retry
                    }
                    match try_read_response(&mut stream) {
                        Some(resp) if resp.starts_with("HTTP/1.1 200 ") => {
                            assert!(
                                resp.ends_with(&want),
                                "corrupt 200 for client {i}: {resp}"
                            );
                            return;
                        }
                        // 500 (injected panic), 503 (shed), or a cut
                        // connection: all retryable, never corrupt.
                        Some(resp) => assert!(
                            resp.starts_with("HTTP/1.1 500 ")
                                || resp.starts_with("HTTP/1.1 503 "),
                            "unexpected status for client {i}: {resp}"
                        ),
                        None => {}
                    }
                }
                panic!("client {i} never got a correct 200 in 50 attempts");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("storm client");
    }

    // The storm actually exercised the new sites.
    let seq = chaos::site_sequences();
    assert!(
        seq[FaultSite::HandlerPanic as usize] > 0,
        "no draws at HandlerPanic"
    );
    assert!(
        seq[FaultSite::NetReadStall as usize] > 0,
        "no draws at NetReadStall"
    );
    let delta = lwt::metrics::snapshot().counters.delta(&counters_before);
    assert!(
        delta.handler_panics > 0,
        "storm at 10% injected no handler panics"
    );

    server.shutdown();
    glt.finalize().expect("clean drain after storm");
    chaos::reset_to_env();
}

/// Regression pin for the timeout-path audit: a `SpuriousUnpark` /
/// `FebSpuriousWake` storm (every draw injects) may cost extra wake
/// rounds, but can never stretch `FebCell::wait_timeout` or
/// `GltHandle::join_timeout` meaningfully past their deadlines — both
/// re-check the clock on every wake, spurious or real.
#[test]
fn spurious_wake_storm_cannot_extend_timeouts() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    chaos::force_chaos(0xDEAD_5EED, 100);

    // FebCell: never filled, so only the deadline can end the wait.
    let feb = lwt::sync::FebCell::<u32>::new();
    let started = Instant::now();
    let filled = feb.wait_timeout(Duration::from_millis(100), std::thread::yield_now);
    let elapsed = started.elapsed();
    assert!(!filled, "empty FEB reported full");
    assert!(
        elapsed < Duration::from_secs(5),
        "spurious-wake storm stretched wait_timeout to {elapsed:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(100),
        "wait_timeout returned before its deadline: {elapsed:?}"
    );

    // join_timeout on a gated ULT: must hand the handle back at the
    // deadline, not when the storm quiets.
    let glt = Glt::builder(BackendKind::Go).workers(1).build();
    let gate = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let gate_u = std::sync::Arc::clone(&gate);
    let unit = glt.ult_create(move || {
        while !gate_u.load(std::sync::atomic::Ordering::Acquire) {
            std::thread::yield_now();
        }
        7
    });
    let started = Instant::now();
    let back = unit
        .join_timeout(Duration::from_millis(100))
        .expect_err("gated unit cannot have finished");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "spurious-wake storm stretched join_timeout to {elapsed:?}"
    );
    gate.store(true, std::sync::atomic::Ordering::Release);
    assert_eq!(back.join(), 7);
    glt.finalize().expect("clean drain");
    chaos::reset_to_env();
}
