//! Thread-count fidelity: the paper's §IX-C claims, checked exactly
//! through the `lwt_metrics` snapshot API.
//!
//! "With 36 threads, [gcc] spawns 35,036 threads (36 for the main team,
//! and 35 for each outer loop iteration)" → `T + regions × (T − 1)`
//! spawned threads (our count excludes the caller, so
//! `(T − 1) + regions × (T − 1)`; at paper scale, 35 + 1000 × 35 plus
//! the master = 35,036).
//!
//! "icc reuses the idle threads but it still creates a large number of
//! threads (1,296: 36 for the main team and 35 for each secondary
//! team)" → with reuse, total spawns are bounded by pool demand, far
//! below gcc's.
//!
//! Each test runs its workload under [`lwt::metrics::registry::scoped`],
//! which serializes the reset→run→read window process-wide — no
//! hand-rolled mutex needed, and no reset race with other suites.

use lwt::metrics::registry::{scoped, snapshot};
use lwt::openmp::{Config, Flavor, OpenMp, WaitPolicy};

fn omp(threads: usize, flavor: Flavor) -> OpenMp {
    OpenMp::init(Config {
        num_threads: threads,
        flavor,
        wait_policy: WaitPolicy::Passive,
    })
}

/// Run the paper's nested pattern: an outer parallel for over
/// `outer_iters` iterations, each iteration opening a nested region.
fn nested_pattern(rt: &OpenMp, outer_iters: usize) {
    rt.parallel_for(0..outer_iters, |_| {
        rt.parallel(|_| {
            // Trivial inner body.
        });
    });
}

#[test]
fn gcc_nested_thread_count_matches_paper_formula() {
    const T: u64 = 3;
    const OUTER: u64 = 10;
    let ((), snap) = scoped(|| {
        let rt = omp(T as usize, Flavor::Gcc);
        nested_pattern(&rt, OUTER as usize);
        rt.shutdown();
    });
    // Paper formula (their count includes the master): T + outer×(T−1).
    // Our counter excludes the caller thread: (T−1) + outer×(T−1).
    assert_eq!(
        snap.counters.os_threads_spawned,
        (T - 1) + OUTER * (T - 1),
        "gcc must spawn fresh threads for every nested region"
    );
    assert_eq!(snap.counters.nested_regions, OUTER);
    // The same formula at the paper's scale (T = 36, 1,000 regions,
    // counting the master as the paper does) is its §IX-C headline.
    assert_eq!(36 + 1000 * (36 - 1), 35_036);
}

#[test]
fn icc_nested_reuses_threads_far_below_gcc() {
    const T: u64 = 3;
    const OUTER: u64 = 30;
    let ((), snap) = scoped(|| {
        let rt = omp(T as usize, Flavor::Icc);
        nested_pattern(&rt, OUTER as usize);
        rt.shutdown();
    });
    let spawned = snap.counters.os_threads_spawned;
    let gcc_equivalent = (T - 1) + OUTER * (T - 1);
    // Reuse: far fewer spawns than the no-reuse formula, and the pool's
    // high-water mark is bounded by concurrent demand ≤ T × (T − 1)
    // (the paper's 36 × 36 = 1,296 shape).
    assert!(
        spawned < gcc_equivalent / 2,
        "icc spawned {spawned}, expected well under gcc's {gcc_equivalent}"
    );
    // The pool may transiently over-provision (a finished thread that
    // has not yet re-registered as idle is invisible to `acquire`) —
    // the same effect that makes real icc hold 1,296 threads rather
    // than the 106 strictly needed. It must still stay well under the
    // no-reuse total.
    let high = snap.counters.nested_pool_high_water;
    assert!(
        high <= spawned && high < gcc_equivalent / 2,
        "pool high-water {high} out of bounds (spawned {spawned})"
    );
    assert_eq!(snap.counters.nested_regions, OUTER);
}

#[test]
fn repeated_icc_nesting_adds_no_new_threads() {
    scoped(|| {
        let rt = omp(2, Flavor::Icc);
        nested_pattern(&rt, 5);
        let after_warmup = snapshot().counters.os_threads_spawned;
        nested_pattern(&rt, 5);
        let after_second = snapshot().counters.os_threads_spawned;
        rt.shutdown();
        // A warmed pool should satisfy repeat demand almost entirely
        // from idle threads; tolerate a couple of race-driven spawns.
        assert!(
            after_second - after_warmup <= 2,
            "warmed icc pool spawned {} new threads",
            after_second - after_warmup
        );
    });
}

#[test]
fn top_level_regions_do_not_spawn_after_init() {
    scoped(|| {
        let rt = omp(3, Flavor::Gcc);
        let after_init = snapshot().counters.os_threads_spawned;
        assert_eq!(after_init, 2); // persistent pool, minus the caller
        for _ in 0..10 {
            rt.parallel(|_| {});
        }
        rt.shutdown();
        // Top-level regions reuse the persistent team — the property
        // that makes the paper's Fig. 2 OpenMP comparison fair.
        assert_eq!(snapshot().counters.os_threads_spawned, after_init);
    });
}
