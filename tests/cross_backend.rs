//! Workspace integration: the unified API must behave identically (in
//! results, not in mechanism) over every runtime backend.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lwt::{BackendKind, Glt};

#[test]
fn fan_out_fan_in_large() {
    const N: usize = 500;
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(3).build();
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let c = counter.clone();
                glt.ult_create(move || {
                    c.fetch_add(i, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        let expect = N * (N - 1) / 2;
        assert_eq!(sum, expect, "backend {kind}");
        assert_eq!(counter.load(Ordering::Relaxed), expect, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn mixed_ults_and_tasklets() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let ults: Vec<_> = (0..20).map(|i| glt.ult_create(move || i)).collect();
        let tasklets: Vec<_> = (0..20).map(|i| glt.tasklet_create(move || i)).collect();
        let a: i32 = ults.into_iter().map(|h| h.join()).sum();
        let b: i32 = tasklets.into_iter().map(|h| h.join()).sum();
        assert_eq!(a, b, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn join_out_of_creation_order() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let mut handles: Vec<_> = (0..64).map(|i| glt.ult_create(move || i)).collect();
        // Join newest-first: completion order must not matter.
        let mut sum = 0;
        while let Some(h) = handles.pop() {
            sum += h.join();
        }
        assert_eq!(sum, 64 * 63 / 2, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn is_finished_becomes_true() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(1).build();
        let h = glt.ult_create(|| 1);
        // Spin externally until the unit completes, then join.
        while !h.is_finished() {
            std::thread::yield_now();
        }
        assert_eq!(h.join(), 1, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn sequential_batches_reuse_the_runtime() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        for batch in 0..5 {
            let handles: Vec<_> = (0..32)
                .map(|i| glt.ult_create(move || batch * 100 + i))
                .collect();
            let sum: usize = handles.into_iter().map(|h| h.join()).sum();
            assert_eq!(sum, 32 * batch * 100 + 32 * 31 / 2, "backend {kind}");
        }
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn single_resource_still_completes_everything() {
    // One stream/shepherd/worker/processor/thread: everything must
    // still run (cooperative progress, no lost wakeups).
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(1).build();
        let handles: Vec<_> = (0..100).map(|i| glt.ult_create(move || i)).collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 4950, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}
