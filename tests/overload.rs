//! Overload-control conformance for the serving stack (DESIGN.md
//! §16): in-flight shedding (`503` + `Retry-After`), slow-loris
//! header deadlines (`408`), quiet idle closes, handler panic
//! isolation (`500`, worker survives), graceful drain, and the
//! `TcpStream` read deadline underneath it all.
//!
//! Clients are plain `std::net` sockets on external threads — the
//! point is to probe the server's degradation behavior from outside
//! the runtime, with no lwt machinery on the client side.

use std::io::{Read as _, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lwt::net::http::{self, Response, ServerConfig};
use lwt::net::TcpListener;
use lwt::{BackendKind, Glt};

const JOIN: Duration = Duration::from_secs(60);

fn join_within<T>(h: lwt::GltHandle<T>, what: &str) -> T {
    match h.join_timeout(JOIN) {
        Ok(done) => done.unwrap_or_else(|e| panic!("{what} panicked: {e:?}")),
        Err(_) => panic!("{what} did not finish within {JOIN:?}"),
    }
}

/// A config where nothing times out or sheds unless the test says so.
fn quiet_config() -> ServerConfig {
    let mut c = ServerConfig::default();
    c.max_conns = 0;
    c.max_inflight = 0;
    c.read_timeout_ms = 30_000;
    c.write_timeout_ms = 30_000;
    c.header_timeout_ms = 30_000;
    c.idle_timeout_ms = 30_000;
    c.drain_timeout_ms = 5_000;
    c
}

/// Read one full HTTP response (head + `Content-Length` body) from a
/// std stream. Panics on EOF mid-response.
fn read_response(stream: &mut std::net::TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let clen: usize = head
                .lines()
                .find_map(|l| {
                    let (n, v) = l.split_once(':')?;
                    n.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + clen {
                return String::from_utf8_lossy(&buf[..head_end + clen]).to_string();
            }
        }
        let n = stream.read(&mut chunk).expect("response read");
        assert_ne!(n, 0, "server closed mid-response: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Spin (from an external thread) until `cond` holds or the deadline
/// passes; panics on expiry.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// Over the in-flight cap, requests are shed with `503` +
/// `Retry-After` *before* the handler runs; once the slot frees, the
/// same connection serves normally again.
#[test]
fn inflight_cap_sheds_with_503_and_retry_after() {
    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let gate = Arc::new(AtomicBool::new(false));
    let gate_h = Arc::clone(&gate);

    let mut config = quiet_config();
    config.max_inflight = 1;
    let shed_before = lwt::metrics::snapshot().counters;
    let server = http::serve_config(
        &glt,
        listener,
        config,
        Arc::new(move |req: &http::Request| {
            if req.target == "/slow" {
                while !gate_h.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
            Response::ok(format!("done:{}", req.target))
        }),
    )
    .expect("serve");
    let addr = server.addr();

    // Occupy the single in-flight slot with a gated request.
    let mut slow = std::net::TcpStream::connect(addr).expect("connect slow");
    slow.write_all(b"GET /slow HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write slow");
    wait_until("slow request to enter the handler", || {
        server.inflight_requests() >= 1
    });

    // The next request on a second connection must be shed, not run.
    let mut fast = std::net::TcpStream::connect(addr).expect("connect fast");
    fast.write_all(b"GET /fast HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write fast");
    let resp = read_response(&mut fast);
    assert!(resp.starts_with("HTTP/1.1 503 "), "expected shed: {resp}");
    assert!(resp.contains("Retry-After: 1"), "no Retry-After: {resp}");
    assert!(!resp.contains("done:/fast"), "handler ran on a shed request");

    // Release the slot: the shed connection is still usable and now
    // gets real service.
    gate.store(true, Ordering::Release);
    let resp = read_response(&mut slow);
    assert!(resp.contains("done:/slow"), "slow request lost: {resp}");
    fast.write_all(b"GET /again HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write again");
    let resp = read_response(&mut fast);
    assert!(resp.contains("done:/again"), "post-shed request failed: {resp}");

    let delta = lwt::metrics::snapshot().counters.delta(&shed_before);
    assert!(delta.requests_shed >= 1, "requests_shed not counted");

    server.shutdown();
    glt.finalize().expect("clean drain");
}

/// A client trickling a request head slower than the header deadline
/// gets `408` and a close — the absolute deadline spans all reads of
/// one head, so trickling cannot extend it (slow-loris defense).
#[test]
fn slow_loris_header_gets_408() {
    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut config = quiet_config();
    config.header_timeout_ms = 200;
    let server = http::serve_config(
        &glt,
        listener,
        config,
        Arc::new(|_req: &http::Request| Response::ok("never")),
    )
    .expect("serve");
    let addr = server.addr();

    let mut client = std::net::TcpStream::connect(addr).expect("connect");
    let started = Instant::now();
    // Trickle an incomplete head: a fresh fragment every 100 ms would
    // reset any per-read timer, but not the absolute one.
    for fragment in [&b"GET / HTTP/1.1\r\n"[..], b"Host: t\r\n", b"X-Slow: 1"] {
        client.write_all(fragment).expect("trickle");
        std::thread::sleep(Duration::from_millis(100));
    }
    let mut resp = String::new();
    client.read_to_string(&mut resp).expect("read 408");
    assert!(resp.starts_with("HTTP/1.1 408 "), "expected 408: {resp}");
    assert!(resp.contains("Connection: close"), "408 must close: {resp}");
    assert!(
        started.elapsed() >= Duration::from_millis(180),
        "408 fired before the deadline"
    );

    server.shutdown();
    glt.finalize().expect("clean drain");
}

/// A keep-alive connection that goes quiet past the idle deadline is
/// closed without a response — nothing was asked, nothing is owed.
#[test]
fn idle_keepalive_connection_is_closed_quietly() {
    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut config = quiet_config();
    config.idle_timeout_ms = 150;
    let server = http::serve_config(
        &glt,
        listener,
        config,
        Arc::new(|_req: &http::Request| Response::ok("hi")),
    )
    .expect("serve");
    let addr = server.addr();

    // One real exchange proves the connection works, then silence.
    let mut client = std::net::TcpStream::connect(addr).expect("connect");
    client
        .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    let resp = read_response(&mut client);
    assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");

    let mut rest = Vec::new();
    client.read_to_end(&mut rest).expect("read idle close");
    assert!(
        rest.is_empty(),
        "idle close must be quiet, got {:?}",
        String::from_utf8_lossy(&rest)
    );

    server.shutdown();
    glt.finalize().expect("clean drain");
}

/// A panicking handler costs exactly one connection: its client gets
/// a clean `500` + close, the worker survives, and the next
/// connection is served normally.
#[test]
fn handler_panic_is_isolated_to_its_connection() {
    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let before = lwt::metrics::snapshot().counters;
    let server = http::serve_config(
        &glt,
        listener,
        quiet_config(),
        Arc::new(|req: &http::Request| {
            assert!(req.target != "/boom", "handler panicked on purpose");
            Response::ok("fine")
        }),
    )
    .expect("serve");
    let addr = server.addr();

    let mut victim = std::net::TcpStream::connect(addr).expect("connect");
    victim
        .write_all(b"GET /boom HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    let mut resp = String::new();
    victim.read_to_string(&mut resp).expect("read 500");
    assert!(resp.starts_with("HTTP/1.1 500 "), "expected 500: {resp}");
    assert!(resp.contains("Connection: close"), "500 must close: {resp}");

    // The pool is intact: a fresh connection gets real service.
    let mut next = std::net::TcpStream::connect(addr).expect("connect 2");
    next.write_all(b"GET /ok HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write 2");
    let resp = read_response(&mut next);
    assert!(resp.contains("fine"), "server did not survive the panic: {resp}");

    let delta = lwt::metrics::snapshot().counters.delta(&before);
    assert!(delta.handler_panics >= 1, "handler_panics not counted");

    server.shutdown();
    glt.finalize().expect("clean drain");
}

/// Graceful drain: `shutdown_within` waits for the in-flight request
/// (including its response write) before closing, so the client sees
/// a complete reply even though shutdown was called mid-handler.
#[test]
fn graceful_drain_finishes_the_inflight_request() {
    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let gate = Arc::new(AtomicBool::new(false));
    let gate_h = Arc::clone(&gate);
    let server = http::serve_config(
        &glt,
        listener,
        quiet_config(),
        Arc::new(move |_req: &http::Request| {
            while !gate_h.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            Response::ok("drained")
        }),
    )
    .expect("serve");
    let addr = server.addr();

    let mut client = std::net::TcpStream::connect(addr).expect("connect");
    client
        .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    wait_until("request to enter the handler", || {
        server.inflight_requests() >= 1
    });

    // Release the handler shortly after the drain starts.
    let releaser = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            gate.store(true, Ordering::Release);
        })
    };
    server.shutdown_within(Duration::from_secs(30));
    releaser.join().expect("releaser");

    let resp = read_response(&mut client);
    assert!(resp.contains("drained"), "drain cut the response: {resp}");
    glt.finalize().expect("clean drain");
}

/// Drain-abort: a handler that never finishes cannot hold shutdown
/// hostage — `shutdown_within` returns once the grace period expires
/// and the straggler's connection is cut.
#[test]
fn drain_deadline_aborts_stragglers() {
    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let gate = Arc::new(AtomicBool::new(false));
    let gate_h = Arc::clone(&gate);
    let server = http::serve_config(
        &glt,
        listener,
        quiet_config(),
        Arc::new(move |_req: &http::Request| {
            while !gate_h.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            Response::ok("late")
        }),
    )
    .expect("serve");
    let addr = server.addr();

    let mut client = std::net::TcpStream::connect(addr).expect("connect");
    client
        .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    wait_until("request to enter the handler", || {
        server.inflight_requests() >= 1
    });

    let started = Instant::now();
    server.shutdown_within(Duration::from_millis(200));
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "drain-abort did not bound shutdown: {elapsed:?}"
    );

    // Unstick the handler so its task (whose response write now fails
    // against the close-woken socket) and the runtime can wind down.
    gate.store(true, Ordering::Release);
    let mut rest = Vec::new();
    let _ = client.read_to_end(&mut rest); // closed or reset; either is fine
    glt.finalize().expect("clean drain");
}

/// The primitive underneath: a `TcpStream` read deadline turns a
/// silent peer into `ErrorKind::TimedOut` on both spawn paths, and
/// the socket remains usable afterwards.
#[test]
fn stream_read_deadline_times_out_on_both_paths() {
    let glt = Glt::builder(BackendKind::Go).workers(2).build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let before = lwt::metrics::snapshot().counters;

    let quiet_client = std::net::TcpStream::connect(addr).expect("connect");
    let (stream, _peer) = listener.accept().expect("accept");
    stream.set_read_timeout(Some(Duration::from_millis(100)));
    assert_eq!(stream.read_timeout(), Some(Duration::from_millis(100)));

    // Sync (ULT) path.
    let reader = glt.ult_create(move || {
        let started = Instant::now();
        let mut buf = [0u8; 8];
        let err = stream.read(&mut buf).expect_err("no bytes were sent");
        (stream, err.kind(), started.elapsed())
    });
    let (stream, kind, elapsed) = join_within(reader, "deadline reader");
    assert_eq!(kind, std::io::ErrorKind::TimedOut);
    assert!(
        elapsed >= Duration::from_millis(90),
        "timed out early: {elapsed:?}"
    );

    // Async path, same socket — the deadline re-arms per op.
    let reader = glt.spawn_async(async move {
        let mut buf = [0u8; 8];
        let err = stream
            .read_async(&mut buf)
            .await
            .expect_err("still no bytes");
        (stream, err.kind())
    });
    let (stream, kind) = join_within(reader, "async deadline reader");
    assert_eq!(kind, std::io::ErrorKind::TimedOut);

    // The socket survived both timeouts: real bytes still flow.
    (&quiet_client)
        .write_all(b"now-talk")
        .expect("client write");
    let reader = glt.ult_create(move || {
        let mut buf = [0u8; 8];
        stream.read_exact(&mut buf).expect("post-timeout read");
        buf
    });
    assert_eq!(&join_within(reader, "post-timeout reader"), b"now-talk");

    let delta = lwt::metrics::snapshot().counters.delta(&before);
    assert!(delta.io_timeouts >= 2, "io_timeouts not counted");
    assert!(delta.timers_armed >= 2, "timers_armed not counted");
    glt.finalize().expect("clean drain");
}
