//! Workspace integration: the paper's parallel-code patterns produce
//! correct results on every runtime (the microbench runners carry
//! debug assertions on the Sscal vector; this drives them all), plus
//! independent end-to-end pattern checks against the runtimes' public
//! APIs.

use lwt::microbench::runners::{measure, Experiment, Series};

#[test]
fn every_series_executes_every_pattern() {
    let experiments = [
        Experiment::Create,
        Experiment::Join,
        Experiment::ForLoop { n: 100 },
        Experiment::TaskSingle { n: 50 },
        Experiment::TaskParallel { n: 50 },
        Experiment::NestedFor { n: 10 },
        Experiment::NestedTask {
            parents: 10,
            children: 4,
        },
    ];
    for series in Series::ALL {
        for exp in experiments {
            let stats = measure(series, exp, 2, 3);
            assert_eq!(stats.samples, 3, "{series} {exp:?}");
            assert!(stats.mean.as_nanos() > 0, "{series} {exp:?}");
        }
    }
}

#[test]
fn openmp_for_loop_equals_sequential() {
    let omp = lwt::openmp::OpenMp::init(lwt::openmp::Config {
        num_threads: 3,
        ..Default::default()
    });
    let n = 1024;
    let out: Vec<std::sync::atomic::AtomicU64> =
        (0..n).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
    omp.parallel_for(0..n, |i| {
        out[i].store((i * i) as u64, std::sync::atomic::Ordering::Relaxed);
    });
    for (i, v) in out.iter().enumerate() {
        assert_eq!(
            v.load(std::sync::atomic::Ordering::Relaxed),
            (i * i) as u64
        );
    }
    omp.shutdown();
}

#[test]
fn argobots_nested_spawn_tree_is_exact() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let rt = lwt::argobots::Runtime::init(lwt::argobots::Config {
        num_streams: 2,
        ..Default::default()
    });
    let count = Arc::new(AtomicUsize::new(0));
    let parents: Vec<_> = (0..16)
        .map(|_| {
            let rt2 = rt.clone();
            let c = count.clone();
            rt.ult_create(move || {
                let children: Vec<_> = (0..8)
                    .map(|_| {
                        let c = c.clone();
                        rt2.tasklet_create(move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for ch in children {
                    ch.join();
                }
            })
        })
        .collect();
    for p in parents {
        p.join();
    }
    assert_eq!(count.load(Ordering::Relaxed), 16 * 8);
    rt.shutdown();
}

#[test]
fn massivethreads_divide_and_conquer_sum() {
    let rt = lwt::massive::Runtime::init(lwt::massive::Config {
        num_workers: 2,
        policy: lwt::massive::Policy::WorkFirst,
        ..Default::default()
    });
    fn sum(rt: &lwt::massive::Runtime, lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let rt2 = rt.clone();
        let left = rt.spawn(move || sum(&rt2, lo, mid));
        let right = sum(rt, mid, hi);
        left.join() + right
    }
    let total = rt.run(|rt| sum(rt, 0, 10_000));
    assert_eq!(total, 10_000 * 9_999 / 2);
    rt.shutdown();
}

#[test]
fn converse_message_fanout_quiesces() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let rt = lwt::converse::Runtime::init(lwt::converse::Config {
        num_processors: 3,
        ..Default::default()
    });
    let count = Arc::new(AtomicUsize::new(0));
    // Three waves of messages spawning messages; one barrier must
    // cover the entire transitive fanout.
    for _ in 0..3 {
        let rt2 = rt.clone();
        let c = count.clone();
        rt.send_rr(move || {
            c.fetch_add(1, Ordering::Relaxed);
            for _ in 0..5 {
                let rt3 = rt2.clone();
                let c2 = c.clone();
                rt2.send_rr(move || {
                    c2.fetch_add(1, Ordering::Relaxed);
                    let c3 = c2.clone();
                    rt3.send_rr(move || {
                        c3.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
    }
    rt.barrier();
    assert_eq!(count.load(Ordering::Relaxed), 3 * (1 + 5 + 5));
    rt.shutdown();
}

#[test]
fn go_select_like_multiplexing() {
    let rt = lwt::go::Runtime::init(lwt::go::Config {
        num_threads: 2,
        ..Default::default()
    });
    let (tx_a, rx) = rt.channel::<u32>(16);
    let tx_b = tx_a.clone();
    rt.go(move || {
        for i in 0..50 {
            tx_a.send(i * 2).unwrap();
        }
    });
    rt.go(move || {
        for i in 0..50 {
            tx_b.send(i * 2 + 1).unwrap();
        }
    });
    let mut seen = vec![false; 100];
    for _ in 0..100 {
        let v = rx.recv().unwrap() as usize;
        assert!(!std::mem::replace(&mut seen[v], true), "duplicate {v}");
    }
    assert!(seen.iter().all(|&s| s));
    rt.shutdown();
}
