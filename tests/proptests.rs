//! Property-based tests over the substrates and runtimes, running on
//! the in-repo `lwt-check` harness (seeded generation + shrinking)
//! instead of an external property-test crate.

use lwt_check::{any_u64, check, prop_assert, prop_assert_eq, range, vec_of};

use lwt::fiber::{yield_now, Fiber, StackSize};
use lwt::sched::{ChaseLev, Steal};
use lwt::sync::{Channel, CountLatch, FebCell, SenseBarrier};

/// A fiber that yields `k` times needs exactly `k + 1` resumes.
#[test]
fn fiber_resume_count_matches_yields() {
    check("fiber resume count", 32, range(0usize..32), |&k| {
        let mut f = Fiber::new(StackSize(16 * 1024), move || {
            for _ in 0..k {
                yield_now();
            }
        });
        let mut resumes = 0;
        while !f.is_finished() {
            f.resume();
            resumes += 1;
        }
        prop_assert_eq!(resumes, k + 1);
        prop_assert!(f.stack_canary_intact());
        Ok(())
    });
}

/// Sequential Chase–Lev behaves as a deque: owner sees LIFO, thief
/// sees FIFO, and the multiset of elements is preserved under any
/// operation interleaving.
#[test]
fn chase_lev_sequential_model() {
    check(
        "chase-lev sequential model",
        32,
        vec_of(range(0u8..4), 1..200),
        |ops| {
            let (w, s) = ChaseLev::with_capacity(2);
            let mut model: std::collections::VecDeque<u64> = Default::default();
            let mut next = 0u64;
            for &op in ops {
                match op {
                    // push
                    0 | 1 => {
                        w.push(next);
                        model.push_back(next);
                        next += 1;
                    }
                    // owner pop (newest)
                    2 => prop_assert_eq!(w.pop(), model.pop_back()),
                    // thief steal (oldest)
                    _ => match s.steal_once() {
                        Steal::Success(v) => prop_assert_eq!(Some(v), model.pop_front()),
                        Steal::Empty => prop_assert!(model.is_empty()),
                        Steal::Retry => {}
                    },
                }
            }
            prop_assert_eq!(w.len(), model.len());
            Ok(())
        },
    );
}

/// FEB cells: any sequence of writeEF/readFE pairs transfers every
/// value exactly once, in order, across a thread boundary.
#[test]
fn feb_transfers_in_order() {
    check(
        "feb in-order transfer",
        32,
        vec_of(any_u64(), 1..64),
        |values| {
            let cell = std::sync::Arc::new(FebCell::new());
            let tx = cell.clone();
            let vs = values.clone();
            let producer = std::thread::spawn(move || {
                for v in vs {
                    tx.write_ef(v, std::thread::yield_now);
                }
            });
            let mut got = Vec::with_capacity(values.len());
            for _ in 0..values.len() {
                got.push(cell.read_fe(std::thread::yield_now));
            }
            producer.join().unwrap();
            prop_assert_eq!(&got, values);
            Ok(())
        },
    );
}

/// Channels preserve the multiset of messages for any producer split
/// and capacity.
#[test]
fn channel_multiset_preserved() {
    check(
        "channel multiset",
        32,
        (range(1usize..32), vec_of(range(1usize..40), 1..4)),
        |(cap, counts)| {
            let ch = std::sync::Arc::new(Channel::bounded(*cap));
            let total: usize = counts.iter().sum();
            let producers: Vec<_> = counts
                .iter()
                .enumerate()
                .map(|(p, &n)| {
                    let ch = ch.clone();
                    std::thread::spawn(move || {
                        for i in 0..n {
                            ch.send(p * 1000 + i, std::thread::yield_now).unwrap();
                        }
                    })
                })
                .collect();
            let mut got = Vec::with_capacity(total);
            for _ in 0..total {
                got.push(ch.recv(std::thread::yield_now).unwrap());
            }
            for p in producers {
                p.join().unwrap();
            }
            got.sort_unstable();
            let mut expect: Vec<usize> = counts
                .iter()
                .enumerate()
                .flat_map(|(p, &n)| (0..n).map(move |i| p * 1000 + i))
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
            Ok(())
        },
    );
}

/// A latch with arbitrary add/count_down interleavings releases
/// exactly when the ledger hits zero.
#[test]
fn latch_ledger() {
    check(
        "latch ledger",
        32,
        (range(0usize..16), range(1usize..16)),
        |&(extra, base)| {
            let latch = CountLatch::new(base);
            latch.add(extra);
            for i in 0..(base + extra) {
                prop_assert!(!latch.is_released(), "released early at {i}");
                latch.count_down();
            }
            prop_assert!(latch.is_released());
            Ok(())
        },
    );
}

/// Barriers of any size release exactly one leader per episode.
#[test]
fn barrier_single_leader() {
    check(
        "barrier single leader",
        32,
        (range(1usize..6), range(1usize..8)),
        |&(parties, episodes)| {
            let barrier = std::sync::Arc::new(SenseBarrier::new(parties));
            let leaders = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let handles: Vec<_> = (0..parties)
                .map(|_| {
                    let b = barrier.clone();
                    let l = leaders.clone();
                    std::thread::spawn(move || {
                        for _ in 0..episodes {
                            if b.wait(std::thread::yield_now) {
                                l.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            prop_assert_eq!(
                leaders.load(std::sync::atomic::Ordering::Relaxed),
                episodes
            );
            Ok(())
        },
    );
}

/// Any spawn count on any backend completes with an exact sum — the
/// cross-backend fan-out invariant under randomized sizes. Fewer cases
/// than the rest: every case spins up all six backends.
#[test]
fn glt_fanout_exact() {
    check(
        "glt fan-out sum",
        8,
        (range(1usize..120), range(1usize..4)),
        |&(n, threads)| {
            use lwt::{BackendKind, Glt};
            for kind in BackendKind::ALL {
                let glt = Glt::builder(kind).workers(threads).build();
                let handles: Vec<_> = (0..n).map(|i| glt.ult_create(move || i)).collect();
                let sum: usize = handles.into_iter().map(|h| h.join()).sum();
                prop_assert_eq!(sum, n * (n - 1) / 2, "backend {}", kind);
                glt.finalize().expect("clean drain");
            }
            Ok(())
        },
    );
}
