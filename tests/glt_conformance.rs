//! Cross-backend conformance for the redesigned GLT surface: the
//! builder flow, spawn/join, the fallible `try_join`, placement
//! (`ult_create_to`) and yield must behave identically — in results,
//! not mechanism — over all five runtime models.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use lwt::sync::SpinLock;
use lwt::{BackendKind, Glt, PlacementError, SchedPolicy};

#[test]
fn builder_spawn_join_roundtrip_every_backend() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        assert_eq!(glt.workers(), 2, "backend {kind}");
        let handles: Vec<_> = (0..64).map(|i| glt.ult_create(move || i * 3)).collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 3 * 63 * 64 / 2, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn builder_accepts_every_knob() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind)
            .workers(2)
            .stack_size(lwt::core::StackSize(128 * 1024))
            .stack_cache_capacity(32)
            .scheduler(SchedPolicy::PrivatePerWorker)
            .build();
        // Deep-ish recursion exercises the configured larger stack.
        fn rec(n: usize) -> usize {
            if n == 0 {
                0
            } else {
                std::hint::black_box(rec(n - 1) + 1)
            }
        }
        assert_eq!(glt.ult_create(|| rec(500)).join(), 500, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn shared_queue_policy_still_computes() {
    // Only Argobots has a shared-pool mode; everyone else must accept
    // and ignore the knob.
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind)
            .workers(2)
            .scheduler(SchedPolicy::SharedQueue)
            .build();
        let handles: Vec<_> = (0..32).map(|i| glt.ult_create(move || i)).collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 31 * 32 / 2, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn try_join_returns_ok_on_success() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let h = glt.ult_create(|| "payload".len());
        assert_eq!(h.try_join().expect("clean ULT must join Ok"), 7, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn try_join_surfaces_panics_as_join_errors() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(1).build();
        let h = glt.ult_create(|| -> () { panic!("conformance boom") });
        let err = h.try_join().expect_err("panicking ULT must join Err");
        assert_eq!(err.message(), Some("conformance boom"), "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn tasklet_try_join_matches_ult_semantics() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        assert_eq!(glt.tasklet_create(|| 11 * 11).try_join().unwrap(), 121);
        let err = glt
            .tasklet_create(|| -> () { panic!("tasklet boom") })
            .try_join()
            .expect_err("panicking tasklet must join Err");
        assert_eq!(err.message(), Some("tasklet boom"), "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn placement_lands_on_the_requested_worker() {
    // The three backends with native placement must actually run the
    // work unit on the requested execution resource.
    for kind in [
        BackendKind::Argobots,
        BackendKind::Qthreads,
        BackendKind::Converse,
    ] {
        let glt = Glt::builder(kind).workers(3).build();
        for target in 0..3 {
            let observed = glt
                .ult_create_to(target, move || match kind {
                    BackendKind::Argobots => lwt::argobots::current_stream(),
                    BackendKind::Converse => lwt::converse::current_processor(),
                    // One worker per shepherd under the GLT, so the
                    // global worker index is the shepherd index.
                    _ => lwt::qthreads::current_worker(),
                })
                .unwrap_or_else(|e| panic!("placement on {kind} failed: {e}"))
                .join();
            assert_eq!(observed, Some(target), "backend {kind} target {target}");
        }
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn placement_is_unsupported_where_the_model_hides_workers() {
    for (kind, expect) in [
        (BackendKind::MassiveThreads, BackendKind::MassiveThreads),
        (BackendKind::Go, BackendKind::Go),
    ] {
        let glt = Glt::builder(kind).workers(2).build();
        match glt.ult_create_to(0, || 1) {
            Err(PlacementError::Unsupported(k)) => assert_eq!(k, expect),
            other => panic!("backend {kind}: expected Unsupported, got {other:?}"),
        }
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn placement_rejects_out_of_range_workers() {
    for kind in [
        BackendKind::Argobots,
        BackendKind::Qthreads,
        BackendKind::Converse,
    ] {
        let glt = Glt::builder(kind).workers(2).build();
        match glt.ult_create_to(2, || 1) {
            Err(PlacementError::OutOfRange { worker: 2, workers: 2 }) => {}
            other => panic!("backend {kind}: expected OutOfRange, got {other:?}"),
        }
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn spawn_onto_fully_parked_pool_wakes_promptly() {
    // Passive policy, no work: every worker in every backend goes to
    // sleep on its parker. A spawn into that fully parked pool is the
    // acid test of the wake-one protocol — a lost wake would leave the
    // join waiting on a 200 ms backstop timeout instead of a notify.
    use std::time::{Duration, Instant};
    lwt::core::force_wait_policy(lwt::core::WaitPolicy::Passive);
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind)
            .workers(2)
            .wait_policy(lwt::core::WaitPolicy::Passive)
            .build();
        // Idle long enough for both workers to saturate their backoff
        // and park (passive parks at the first dry sweep).
        std::thread::sleep(Duration::from_millis(60));
        let t0 = Instant::now();
        let h = glt.ult_create(|| 6 * 7);
        let out = match h.join_timeout(Duration::from_secs(10)) {
            Ok(joined) => joined.expect("no panic"),
            Err(_) => panic!("backend {kind}: spawn onto parked pool never ran"),
        };
        let waited = t0.elapsed();
        assert_eq!(out, 42, "backend {kind}");
        // Well under the passive backstop ⇒ the spawn's notify did the
        // waking, not the timeout.
        assert!(
            waited < Duration::from_millis(150),
            "backend {kind}: parked pool took {waited:?} to serve a spawn \
             (backstop did the work, not the wake-one notify)"
        );
        glt.finalize().expect("clean drain");
    }
    lwt::core::reset_wait_policy_to_env();
}

/// Yield from inside a GLT work unit, using whatever the backend's
/// native mechanism is (mirrors `Glt::yield_now`, which the closure
/// cannot reach because the handle owns no `&Glt`).
fn yield_from_within(kind: BackendKind) {
    match kind {
        BackendKind::Argobots => {
            if lwt::argobots::in_ult() {
                lwt::argobots::yield_now();
            }
        }
        _ => {
            if lwt::ultcore::in_ult() {
                lwt::ultcore::yield_now();
            }
        }
    }
}

#[test]
fn yield_interleaves_rather_than_wedges() {
    // A spinning work unit that yields must not starve its sibling:
    // the sibling's store unblocks it. One worker everywhere except
    // Converse, whose GLT work units are messages that execute
    // atomically — a same-processor spin would wedge by design, so it
    // gets a second processor.
    for kind in BackendKind::ALL {
        let workers = if kind == BackendKind::Converse { 2 } else { 1 };
        let glt = Glt::builder(kind).workers(workers).build();
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = flag.clone();
        let waiter = glt.ult_create(move || {
            let mut spins = 0usize;
            while f2.load(Ordering::Acquire) == 0 {
                yield_from_within(kind);
                std::thread::yield_now();
                spins += 1;
                assert!(spins < 50_000_000, "waiter starved on {kind}");
            }
        });
        let f3 = flag.clone();
        let setter = glt.ult_create(move || f3.store(1, Ordering::Release));
        setter.join();
        waiter.join();
        glt.finalize().expect("clean drain");
    }
}

/// Yields `remaining` times (self-waking before each `Pending`), then
/// resolves to `value` — exercises the requeue path without external
/// help.
struct YieldSome {
    remaining: usize,
    value: usize,
}

impl Future for YieldSome {
    type Output = usize;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        if self.remaining == 0 {
            return Poll::Ready(self.value);
        }
        self.remaining -= 1;
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

#[test]
fn async_result_round_trip_every_backend() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        // Ready-on-first-poll and multi-poll futures both round-trip
        // their results through the generic handle.
        assert_eq!(glt.spawn_async(async { 6 * 7 }).join(), 42, "backend {kind}");
        let handles: Vec<_> = (0..32)
            .map(|i| glt.spawn_async(YieldSome { remaining: 3, value: i }))
            .collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 31 * 32 / 2, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn async_panics_surface_as_join_errors() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(1).build();
        let h = glt.spawn_async(async { panic!("async boom") });
        let err = h.try_join().expect_err("panicking poll must join Err");
        assert_eq!(err.message(), Some("async boom"), "backend {kind}");
        // The executor survives the panic: later tasks still run.
        assert_eq!(glt.spawn_async(async { 1 }).join(), 1, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn async_nested_spawn_inside_future() {
    // A future may spawn more async work on the same runtime. The
    // inner handle is passed *out* and joined externally — joining
    // inside poll would block a scheduler worker, which the poll
    // contract (run-to-completion, like a tasklet) forbids.
    for kind in BackendKind::ALL {
        let glt = Arc::new(Glt::builder(kind).workers(2).build());
        let inner_slot: Arc<SpinLock<Option<lwt::GltHandle<usize>>>> =
            Arc::new(SpinLock::new(None));
        let (g2, s2) = (glt.clone(), inner_slot.clone());
        let outer = glt.spawn_async(async move {
            let inner = g2.spawn_async(YieldSome { remaining: 2, value: 21 });
            *s2.lock() = Some(inner);
            2usize
        });
        assert_eq!(outer.join(), 2, "backend {kind}");
        let inner = inner_slot.lock().take().expect("outer completed, slot filled");
        assert_eq!(inner.join(), 21, "backend {kind}");
        Arc::try_unwrap(glt)
            .unwrap_or_else(|_| panic!("handles dropped, sole owner"))
            .finalize()
            .expect("clean drain");
    }
}

/// Resolves when `open` is set by someone else; parks its waker in the
/// shared slot so the opener can deliver the wake cross-worker.
struct ExternalGate {
    open: Arc<AtomicBool>,
    waker: Arc<SpinLock<Option<Waker>>>,
}

impl Future for ExternalGate {
    type Output = usize;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        if self.open.load(Ordering::Acquire) {
            return Poll::Ready(7);
        }
        *self.waker.lock() = Some(cx.waker().clone());
        // Re-check after publishing the waker: an opener that missed
        // the slot has set `open` before we park, and a Ready here
        // makes the racing wake (if any) a harmless no-op.
        if self.open.load(Ordering::Acquire) {
            return Poll::Ready(7);
        }
        Poll::Pending
    }
}

#[test]
fn async_waker_fires_from_another_worker() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let open = Arc::new(AtomicBool::new(false));
        let waker: Arc<SpinLock<Option<Waker>>> = Arc::new(SpinLock::new(None));
        let task = glt.spawn_async(ExternalGate {
            open: open.clone(),
            waker: waker.clone(),
        });
        // A ULT on the same runtime delivers the wake: it waits for the
        // task to park, opens the gate, then fires the captured waker.
        let (o2, w2) = (open.clone(), waker.clone());
        let opener = glt.ult_create(move || {
            let w = loop {
                if let Some(w) = w2.lock().take() {
                    break w;
                }
                std::thread::yield_now();
            };
            o2.store(true, Ordering::Release);
            w.wake();
        });
        assert_eq!(task.join(), 7, "backend {kind}");
        opener.join();
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn async_and_blocking_serve_a_fully_parked_pool() {
    // Passive policy, no work: all scheduler workers park. Both a
    // spawn_blocking job (runs off-pool, completes via the event) and
    // a spawn_async wake (re-enqueues through the backend's dispatch,
    // which must unpark a worker) have to make progress promptly.
    use std::time::{Duration, Instant};
    lwt::core::force_wait_policy(lwt::core::WaitPolicy::Passive);
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind)
            .workers(2)
            .wait_policy(lwt::core::WaitPolicy::Passive)
            .build();
        std::thread::sleep(Duration::from_millis(60));
        let t0 = Instant::now();
        let b = glt.spawn_blocking(|| "off-worker");
        let a = glt.spawn_async(YieldSome { remaining: 2, value: 9 });
        assert_eq!(b.join(), "off-worker", "backend {kind}");
        assert_eq!(a.join(), 9, "backend {kind}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "backend {kind}: parked pool served async+blocking too slowly"
        );
        glt.finalize().expect("clean drain");
    }
    lwt::core::reset_wait_policy_to_env();
}

#[test]
fn async_pinned_queue_policy_completes() {
    // Pinning every poll to worker 0 must still complete multi-poll
    // futures on every backend (wakes land back on the pinned queue).
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind)
            .workers(2)
            .async_queue(lwt::AsyncQueuePolicy::Pinned(0))
            .build();
        let handles: Vec<_> = (0..8)
            .map(|i| glt.spawn_async(YieldSome { remaining: 2, value: i }))
            .collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 7 * 8 / 2, "backend {kind}");
        glt.finalize().expect("clean drain");
    }
}
