//! Cross-backend conformance for the lwt-net serving stack: echo over
//! loopback on every backend from both spawn paths (stackful ULTs and
//! `spawn_async` futures), shutdown semantics (error, not hang), the
//! blocking-read-wedges-worker regression, and the HTTP/1.1 layer.
//!
//! Everything here runs under bounded joins (`join_timeout`) so a
//! reactor bug reads as a test failure, never a hung suite.

use std::sync::Arc;
use std::time::Duration;

use lwt::net::http;
use lwt::net::{TcpListener, TcpStream};
use lwt::{BackendKind, Glt};

const JOIN: Duration = Duration::from_secs(60);

/// Bounded join that panics with context instead of hanging.
fn join_within<T>(h: lwt::GltHandle<T>, what: &str) -> T {
    match h.join_timeout(JOIN) {
        Ok(done) => done.unwrap_or_else(|e| panic!("{what} panicked: {e:?}")),
        Err(_) => panic!("{what} did not finish within {JOIN:?}"),
    }
}

/// Echo server: accept `conns` connections, echo each until EOF, then
/// return. Handlers are ULTs; the acceptor joins them all.
fn echo_server(glt: &Glt, listener: TcpListener, conns: usize) -> lwt::GltHandle<()> {
    let glt2 = glt.clone();
    glt.ult_create(move || {
        let mut handlers = Vec::with_capacity(conns);
        for _ in 0..conns {
            let (stream, _peer) = listener.accept().expect("accept");
            handlers.push(glt2.ult_create(move || {
                let mut buf = [0u8; 512];
                loop {
                    match stream.read(&mut buf).expect("server read") {
                        0 => return,
                        n => stream.write_all(&buf[..n]).expect("server write"),
                    }
                }
            }));
        }
        for h in handlers {
            h.join();
        }
    })
}

#[test]
fn echo_ult_clients_every_backend() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local_addr");
        const N: usize = 8;

        let server = echo_server(&glt, listener, N);
        let clients: Vec<_> = (0..N)
            .map(|i| {
                glt.ult_create(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let msg = format!("hello-{i:04}");
                    stream.write_all(msg.as_bytes()).expect("client write");
                    let mut buf = [0u8; 10];
                    stream.read_exact(&mut buf).expect("client read");
                    assert_eq!(buf, msg.as_bytes(), "echo mismatch on {kind}");
                })
            })
            .collect();
        for c in clients {
            join_within(c, "ULT client");
        }
        join_within(server, "echo server");
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn echo_async_clients_every_backend() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local_addr");
        const N: usize = 8;

        // Fully async server: acceptor task + one task per connection.
        let glt2 = glt.clone();
        let server = glt.spawn_async(async move {
            let mut handlers = Vec::with_capacity(N);
            for _ in 0..N {
                let (stream, _peer) = listener.accept_async().await.expect("accept_async");
                handlers.push(glt2.spawn_async(async move {
                    let mut buf = [0u8; 512];
                    loop {
                        match stream.read_async(&mut buf).await.expect("server read") {
                            0 => return,
                            n => stream
                                .write_all_async(&buf[..n])
                                .await
                                .expect("server write"),
                        }
                    }
                }));
            }
            handlers
        });

        let clients: Vec<_> = (0..N)
            .map(|i| {
                glt.spawn_async(async move {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let msg = format!("async-{i:04}");
                    stream.write_all_async(msg.as_bytes()).await.expect("write");
                    let mut buf = [0u8; 10];
                    stream.read_exact_async(&mut buf).await.expect("read");
                    assert_eq!(buf, msg.as_bytes(), "echo mismatch on {kind}");
                })
            })
            .collect();
        for c in clients {
            join_within(c, "async client");
        }
        for h in join_within(server, "async acceptor") {
            join_within(h, "async handler");
        }
        glt.finalize().expect("clean drain");
    }
}

#[test]
fn accept_after_shutdown_errors_not_hangs() {
    // Sequential: shutdown first, accept after.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.shutdown();
    let err = listener.accept().expect_err("accept after shutdown");
    assert_eq!(err.kind(), std::io::ErrorKind::NotConnected);

    // Concurrent: a ULT already parked in accept must be unstuck by a
    // shutdown from outside, on every backend.
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let listener = Arc::new(TcpListener::bind("127.0.0.1:0").expect("bind"));
        let inside = Arc::clone(&listener);
        let blocked = glt.ult_create(move || inside.accept().map(|_| ()).expect_err("unblocked"));
        // Give the ULT time to reach the wait; shutdown must wake it
        // whether or not it got there.
        std::thread::sleep(Duration::from_millis(20));
        listener.shutdown();
        let err = join_within(blocked, "blocked accept");
        assert_eq!(err.kind(), std::io::ErrorKind::NotConnected, "on {kind}");
        glt.finalize().expect("clean drain");
    }
}

/// The regression this whole crate exists to prevent: with ONE worker,
/// a ULT waiting on socket data must not wedge the pool — an unrelated
/// unit spawned later must still run, and the reader must resume when
/// bytes arrive.
#[test]
fn reactor_read_does_not_wedge_the_single_worker() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(1).build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local_addr");

        // External (non-worker) client so no work unit is involved in
        // producing the bytes.
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (server_stream, _peer) = listener.accept().expect("accept");

        let reader = glt.ult_create(move || {
            let mut buf = [0u8; 8];
            server_stream.read_exact(&mut buf).expect("read_exact");
            buf
        });
        // The canary: must complete while the reader is parked on I/O.
        // (With a blocking read(2) instead of the reactor, the single
        // worker would be wedged and this join would time out.)
        let canary = glt.ult_create(|| 6 * 7);
        assert_eq!(join_within(canary, "canary unit"), 42, "on {kind}");

        use std::io::Write as _;
        (&client).write_all(b"8 bytes!").expect("feed reader");
        assert_eq!(&join_within(reader, "parked reader"), b"8 bytes!", "on {kind}");
        glt.finalize().expect("clean drain");
    }
}

/// Read one full HTTP response (head + Content-Length body) off a
/// stream, returning it as text.
fn read_response(stream: &TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let clen: usize = head
                .lines()
                .find_map(|l| {
                    let (n, v) = l.split_once(':')?;
                    n.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + clen {
                return String::from_utf8_lossy(&buf[..head_end + clen]).to_string();
            }
        }
        let n = stream.read(&mut chunk).expect("response read");
        assert_ne!(n, 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn http_keepalive_roundtrips_every_backend() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = http::serve(&glt, listener, |req| {
            http::Response::ok(format!("you sent {}", req.target))
                .header("X-Backend-Test", "1")
        })
        .expect("serve");
        let addr = server.addr();

        // Three keep-alive requests on one socket, from a ULT client.
        let client = glt.ult_create(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            for i in 0..3 {
                let req = format!("GET /r{i} HTTP/1.1\r\nHost: t\r\n\r\n");
                stream.write_all(req.as_bytes()).expect("request write");
                let resp = read_response(&stream);
                assert!(resp.starts_with("HTTP/1.1 200 OK"), "on {kind}: {resp}");
                assert!(resp.contains(&format!("you sent /r{i}")), "on {kind}: {resp}");
            }
        });
        join_within(client, "HTTP client");

        // Limits: an oversized header block must come back as 431.
        let client = glt.spawn_async(async move {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut req = b"GET / HTTP/1.1\r\n".to_vec();
            req.extend(std::iter::repeat_n(b'x', 10_000));
            stream.write_all_async(&req).await.expect("write");
            let mut buf = [0u8; 64];
            let n = stream.read_async(&mut buf).await.expect("read");
            String::from_utf8_lossy(&buf[..n]).to_string()
        });
        let resp = join_within(client, "oversized-header client");
        assert!(resp.contains("431"), "on {kind}: {resp}");

        server.shutdown();
        glt.finalize().expect("clean drain");
    }
}

/// The ci/tier1.sh serving smoke: 100 concurrent clients per backend
/// against an echo server, all joins bounded, run with LWT_WATCHDOG=1
/// by the CI stage (which asserts zero stall reports on stderr).
#[test]
fn ci_smoke_100_concurrent_clients_every_backend() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local_addr");
        const N: usize = 100;

        let server = echo_server(&glt, listener, N);
        // Async clients: 100 concurrent parked connections is far past
        // worker count, so most sit in the reactor at any moment.
        let clients: Vec<_> = (0..N)
            .map(|i| {
                glt.spawn_async(async move {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let msg = format!("smoke-{i:06}");
                    stream.write_all_async(msg.as_bytes()).await.expect("write");
                    let mut buf = [0u8; 12];
                    stream.read_exact_async(&mut buf).await.expect("read");
                    assert_eq!(buf, msg.as_bytes());
                })
            })
            .collect();
        for c in clients {
            join_within(c, "smoke client");
        }
        join_within(server, "smoke server");
        glt.finalize().expect("clean drain");
    }
}
