//! Behavioral verification of the paper's Table I: each feature the
//! matrix attributes to a library must be *observable* in the
//! corresponding runtime — not just declared in `capability_matrix()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lwt_sync::SpinLock;

/// Row "Group Control" + Argobots' unique *dynamic* resource creation.
#[test]
fn argobots_dynamic_streams_row() {
    let rt = lwt::argobots::Runtime::init(lwt::argobots::Config {
        num_streams: 1,
        ..Default::default()
    });
    assert_eq!(rt.num_streams(), 1);
    let new_id = rt.stream_create(); // at run time, not init
    assert_eq!(rt.num_streams(), 2);
    let h = rt.ult_create_to(new_id, lwt::argobots::current_stream);
    assert_eq!(h.join(), Some(new_id));
    rt.shutdown();
}

/// Row "Yield To": only Argobots transfers control directly.
#[test]
fn argobots_yield_to_row() {
    let rt = lwt::argobots::Runtime::init(lwt::argobots::Config {
        num_streams: 1,
        ..Default::default()
    });
    let order = Arc::new(SpinLock::new(Vec::new()));
    let o = order.clone();
    let rt2 = rt.clone();
    rt.ult_create(move || {
        let o2 = o.clone();
        let target = rt2.ult_create(move || o2.lock().push("target"));
        o.lock().push("before");
        lwt::argobots::yield_to(&target);
        o.lock().push("after");
        target.join();
    })
    .join();
    assert_eq!(order.lock().clone(), vec!["before", "target", "after"]);
    rt.shutdown();
}

/// Row "# of Work Unit Types" = 2 for Argobots: tasklets execute but
/// cannot yield — and ULTs can.
#[test]
fn argobots_two_unit_types_row() {
    let rt = lwt::argobots::Runtime::init(lwt::argobots::Config {
        num_streams: 1,
        ..Default::default()
    });
    let ult = rt.ult_create(|| {
        lwt::argobots::yield_now(); // legal in a ULT
        "ult"
    });
    let tasklet = rt.tasklet_create(|| "tasklet"); // atomic: no yields inside
    assert_eq!(ult.join(), "ult");
    assert_eq!(tasklet.join(), "tasklet");
    rt.shutdown();
}

/// Row "Levels of Hierarchy" = 3 for Qthreads: shepherd → worker →
/// work unit, with multiple workers per shepherd actually executing.
#[test]
fn qthreads_three_level_row() {
    let rt = lwt::qthreads::Runtime::init(lwt::qthreads::Config {
        num_shepherds: 2,
        workers_per_shepherd: 2,
        ..Default::default()
    });
    assert_eq!(rt.num_shepherds(), 2);
    assert_eq!(rt.num_workers(), 4);
    // Work forked to shepherd 1 runs on one of *its* workers (global
    // ids 2 or 3 under shepherd-major layout).
    for _ in 0..10 {
        let w = rt
            .fork_to(1, lwt::qthreads::current_worker)
            .join()
            .expect("ran on a worker");
        assert!(w == 2 || w == 3, "shepherd 1 owns workers 2,3; got {w}");
    }
    rt.shutdown();
}

/// Qthreads' FEB word synchronization (the mechanism behind its joins).
#[test]
fn qthreads_feb_row() {
    let rt = lwt::qthreads::Runtime::init(lwt::qthreads::Config {
        num_shepherds: 2,
        ..Default::default()
    });
    let addr = 0xFEED_usize;
    let rt2 = rt.clone();
    let producer = rt.fork(move || {
        rt2.feb().write_ef(addr, 2016, || lwt::qthreads::yield_now());
    });
    assert_eq!(
        rt.feb().read_ff(addr, std::thread::yield_now),
        2016,
        "readFF must see the written word"
    );
    producer.join();
    rt.shutdown();
}

/// Row "Plug-in Scheduler ✓(configure)" for MassiveThreads: the policy
/// is chosen by configuration and observably changes execution order.
#[test]
fn massivethreads_configure_policy_row() {
    for (policy, expect_first) in [
        (lwt::massive::Policy::WorkFirst, "child"),
        (lwt::massive::Policy::HelpFirst, "parent"),
    ] {
        let rt = lwt::massive::Runtime::init(lwt::massive::Config {
            num_workers: 1,
            policy,
            ..Default::default()
        });
        let first = rt.run(move |rt| {
            let order = Arc::new(SpinLock::new(Vec::new()));
            let o = order.clone();
            let h = rt.spawn(move || o.lock().push("child"));
            order.lock().push("parent");
            h.join();
            let v = order.lock();
            v.first().copied().expect("both ran")
        });
        assert_eq!(first, expect_first, "policy {policy:?}");
        rt.shutdown();
    }
}

/// Converse's insertion rule: messages go anywhere, ULTs only to the
/// caller's own processor — and never from outside.
#[test]
fn converse_insertion_rule_row() {
    let rt = lwt::converse::Runtime::init(lwt::converse::Config {
        num_processors: 2,
        ..Default::default()
    });
    // Messages: externally targetable at any processor. ✓
    let seen = Arc::new(AtomicUsize::new(0));
    for p in 0..2 {
        let seen = seen.clone();
        rt.send(p, move || {
            seen.fetch_add(1, Ordering::Relaxed);
        });
    }
    rt.barrier();
    assert_eq!(seen.load(Ordering::Relaxed), 2);
    // ULTs: created inside land on the creator's processor.
    let home = Arc::new(SpinLock::new(None));
    let (rt2, h2) = (rt.clone(), home.clone());
    rt.send(1, move || {
        let h3 = h2.clone();
        let _ = rt2.spawn_ult(move || {
            *h3.lock() = lwt::converse::current_processor();
        });
    });
    rt.barrier();
    assert_eq!(*home.lock(), Some(1));
    rt.shutdown();
}

/// Go rows: global queue (any thread runs any goroutine) and *no yield
/// function* — the generic API's yield is a no-op on the Go backend.
#[test]
fn go_global_queue_and_no_yield_rows() {
    let rt = lwt::go::Runtime::init(lwt::go::Config {
        num_threads: 3,
        ..Default::default()
    });
    let (tx, rx) = rt.channel::<std::thread::ThreadId>(64);
    for _ in 0..60 {
        let tx = tx.clone();
        rt.go(move || {
            std::thread::yield_now(); // widen the interleaving window
            tx.send(std::thread::current().id()).unwrap();
        });
    }
    let mut executors = std::collections::HashSet::new();
    for _ in 0..60 {
        executors.insert(rx.recv().unwrap());
    }
    assert!(
        executors.len() > 1,
        "global queue must feed multiple threads"
    );
    rt.shutdown();

    // No yield: Glt::yield_now on Go is a no-op even inside a goroutine.
    let glt = lwt::Glt::builder(lwt::BackendKind::Go).workers(1).build();
    glt.ult_create(|| {
        // Must not panic, must not reschedule visibly.
        // (Reaching here at all is the assertion.)
    })
    .join();
    glt.yield_now();
    glt.finalize().expect("clean drain");
}

/// Rows "Stackable Scheduler"/"Group Scheduler": a pushed scheduler
/// takes over and hands back on Done (exercised further in
/// lwt-argobots' own tests and the custom_scheduler example).
#[test]
fn argobots_stackable_scheduler_row() {
    struct CountingFifo {
        picked: Arc<AtomicUsize>,
        budget: usize,
    }
    impl lwt::argobots::Scheduler for CountingFifo {
        fn pick(&mut self, ctx: &lwt::argobots::SchedContext) -> lwt::argobots::Pick {
            if self.budget == 0 {
                return lwt::argobots::Pick::Done;
            }
            match ctx.pop(0) {
                Some(u) => {
                    self.budget -= 1;
                    self.picked.fetch_add(1, Ordering::Relaxed);
                    lwt::argobots::Pick::Run(u)
                }
                None => lwt::argobots::Pick::Idle,
            }
        }
    }
    let rt = lwt::argobots::Runtime::init(lwt::argobots::Config {
        num_streams: 1,
        ..Default::default()
    });
    let picked = Arc::new(AtomicUsize::new(0));
    rt.push_scheduler(
        0,
        Box::new(CountingFifo {
            picked: picked.clone(),
            budget: 10,
        }),
    );
    let handles: Vec<_> = (0..30).map(|i| rt.ult_create(move || i)).collect();
    let sum: i32 = handles.into_iter().map(|h| h.join()).sum();
    assert_eq!(sum, 435);
    assert_eq!(picked.load(Ordering::Relaxed), 10, "budget respected");
    rt.shutdown();
}
