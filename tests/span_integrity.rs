//! Causal-span integrity across backends: a root unit spawned from the
//! master carries a fresh span with no parent; children it spawns link
//! to the root's span even when their run segments migrate between
//! workers; completion and join edges only ever reference spans that
//! were actually spawned.
//!
//! One `#[test]` on purpose: tracing is a process-global flag and the
//! assertions scan every event ring, so the whole scenario runs
//! sequentially inside a single test binary.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lwt::metrics::registry::{rings, set_tracing};
use lwt::metrics::EventKind;
use lwt::{BackendKind, Glt};

const CHILDREN: u64 = 24;

/// Every retained `SpanSpawn` edge, child id → parent id. Spawn events
/// are emitted exactly once per allocated id, so a duplicate means the
/// allocator or a ring double-recorded.
fn spawn_edges() -> HashMap<u64, u64> {
    let mut edges = HashMap::new();
    for ring in rings() {
        for e in ring.snapshot() {
            if e.kind == EventKind::SpanSpawn {
                let prev = edges.insert(e.span, e.arg);
                assert!(prev.is_none(), "span {} spawned twice", e.span);
            }
        }
    }
    edges
}

/// All span ids referenced by events of `kind` (`SpanComplete` /
/// `SpanJoin`, where the ring event's span field is the subject).
fn spans_referenced(kind: EventKind) -> HashSet<u64> {
    let mut spans = HashSet::new();
    for ring in rings() {
        for e in ring.snapshot() {
            if e.kind == kind {
                spans.insert(e.span);
            }
        }
    }
    spans
}

/// Unwrap the shared handle and drain. The child closures each held a
/// clone; they are dropped when the closure body returns, strictly
/// before the join latch trips, so after every join the count is back
/// to one — the retry only covers the last drop racing this thread.
fn finalize(mut glt: Arc<Glt>) {
    for _ in 0..1000 {
        match Arc::try_unwrap(glt) {
            Ok(g) => {
                g.finalize().expect("clean drain");
                return;
            }
            Err(shared) => {
                glt = shared;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    panic!("Glt clones still alive after all units joined");
}

/// Check the edges a backend run added on top of `before`: exactly one
/// new root (parent 0, spawned from the master thread), every other
/// new span a child of that root, and — the scan running after a clean
/// drain — a completion edge for each. Returns the new ids.
fn assert_tree(
    label: &str,
    before: &HashMap<u64, u64>,
    expect_joins: bool,
) -> HashSet<u64> {
    let after = spawn_edges();
    let new: HashMap<u64, u64> = after
        .iter()
        .filter(|(id, _)| !before.contains_key(*id))
        .map(|(&id, &parent)| (id, parent))
        .collect();
    assert_eq!(
        new.len() as u64,
        CHILDREN + 1,
        "{label}: one root + {CHILDREN} children must each allocate a span"
    );
    let roots: Vec<u64> = new
        .iter()
        .filter(|(_, &parent)| parent == 0)
        .map(|(&id, _)| id)
        .collect();
    assert_eq!(roots.len(), 1, "{label}: exactly one parentless root span");
    let root = roots[0];
    for (&id, &parent) in &new {
        if id != root {
            assert_eq!(
                parent, root,
                "{label}: child {id} must link to the root span even after \
                 its segments migrated between workers"
            );
        }
    }
    let completed = spans_referenced(EventKind::SpanComplete);
    for &id in new.keys() {
        assert!(completed.contains(&id), "{label}: span {id} never completed");
    }
    if expect_joins {
        let joined = spans_referenced(EventKind::SpanJoin);
        let joined_children = new
            .keys()
            .filter(|&&id| id != root && joined.contains(&id))
            .count() as u64;
        assert_eq!(
            joined_children, CHILDREN,
            "{label}: every child join must record its dependency edge"
        );
    }
    new.keys().copied().collect()
}

#[test]
fn span_parent_child_integrity_across_backends() {
    set_tracing(true);

    // Unified-API backends whose units join through native span-aware
    // handles. Converse (event-slot joins, two-stage spawn) is covered
    // separately below, along with its native CthCreate path.
    for kind in [
        BackendKind::Argobots,
        BackendKind::Qthreads,
        BackendKind::MassiveThreads,
        BackendKind::Go,
    ] {
        let before = spawn_edges();
        let glt = Arc::new(Glt::builder(kind).workers(3).build());
        let g2 = Arc::clone(&glt);
        let root = glt.ult_create(move || {
            let handles: Vec<_> = (0..CHILDREN)
                .map(|i| {
                    let g3 = Arc::clone(&g2);
                    g2.ult_create(move || {
                        // Force a reschedule so segments can migrate
                        // off the spawning worker (no-op on Go).
                        g3.yield_now();
                        i
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).sum::<u64>()
        });
        assert_eq!(root.join(), CHILDREN * (CHILDREN - 1) / 2, "backend {kind}");
        finalize(glt);
        // Go joins through a latch-backed slot with no span access, so
        // it records no join edges; the other backends must.
        assert_tree(kind.name(), &before, kind != BackendKind::Go);
    }

    // Converse through the unified API: a Glt ULT bootstraps through a
    // message that performs the CthCreate on-processor, and the ULT
    // *adopts* the span allocated at the `ult_create` call site (so the
    // spawn edge records the true causal parent; joins go through the
    // event slot). The root exports its children's handles and the
    // master performs the joins — exercising the cross-thread join
    // path the other backends don't have.
    {
        let before = spawn_edges();
        let glt = Arc::new(Glt::builder(BackendKind::Converse).workers(3).build());
        let g2 = Arc::clone(&glt);
        let exported = Arc::new(lwt::sync::SpinLock::new(Vec::new()));
        let ex2 = Arc::clone(&exported);
        let root = glt.ult_create(move || {
            let handles: Vec<_> = (0..CHILDREN).map(|i| g2.ult_create(move || i)).collect();
            *ex2.lock() = handles;
        });
        root.join();
        let handles = std::mem::take(&mut *exported.lock());
        assert_eq!(
            handles.into_iter().map(|h| h.join()).sum::<u64>(),
            CHILDREN * (CHILDREN - 1) / 2,
            "backend {}",
            BackendKind::Converse
        );
        drop(exported);
        finalize(glt);
        assert_tree("converse (unified)", &before, true);
    }

    // Converse, natively: a message (atomic, span-less) creates the
    // root ULT, which spawns and joins child ULTs on its processor.
    let before = spawn_edges();
    let rt = lwt::converse::Runtime::init(lwt::converse::Config {
        num_processors: 2,
        ..Default::default()
    });
    let sum = Arc::new(AtomicU64::new(0));
    let (rt2, sum2) = (rt.clone(), Arc::clone(&sum));
    rt.send(0, move || {
        let rt3 = rt2.clone();
        let sum3 = Arc::clone(&sum2);
        let _ = rt2.spawn_ult(move || {
            let handles: Vec<_> = (0..CHILDREN)
                .map(|i| {
                    rt3.spawn_ult(move || {
                        lwt::converse::yield_now();
                        i
                    })
                })
                .collect();
            let total: u64 = handles.into_iter().map(|h| h.join()).sum();
            sum3.store(total, Ordering::Release);
        });
    });
    rt.barrier();
    assert_eq!(sum.load(Ordering::Acquire), CHILDREN * (CHILDREN - 1) / 2);
    rt.shutdown();
    assert_tree("converse (native)", &before, true);

    // Global closure: every completion and join edge anywhere in the
    // rings references a span that was actually spawned.
    let edges = spawn_edges();
    for kind in [EventKind::SpanComplete, EventKind::SpanJoin] {
        for span in spans_referenced(kind) {
            assert!(
                edges.contains_key(&span),
                "{} references unspawned span {span}",
                kind.name()
            );
        }
    }
}
