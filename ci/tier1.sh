#!/usr/bin/env bash
# Tier-1 gate: hermetic build + tests, warning-clean, zero external
# crates. Run from anywhere; operates on the repo root.
#
#   ci/tier1.sh
#
# Policy (see README.md "Hermetic build"): the workspace must build and
# test fully offline with no registry access, and the dependency graph
# must contain only workspace-local packages.

set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

echo "== tier1: hermetic dependency guard"
# Every package in the resolved graph must be a path dependency inside
# this workspace ("source": null). Any registry/git source is a policy
# violation, caught before we spend time compiling.
METADATA=$(cargo metadata --offline --format-version 1)
if command -v jq >/dev/null 2>&1; then
    EXTERNAL=$(printf '%s' "$METADATA" | jq -r '.packages[] | select(.source != null) | .name')
else
    EXTERNAL=$(printf '%s' "$METADATA" | python3 -c '
import json, sys
meta = json.load(sys.stdin)
for pkg in meta["packages"]:
    if pkg["source"] is not None:
        print(pkg["name"])
')
fi
if [ -n "$EXTERNAL" ]; then
    echo "FAIL: non-workspace packages in the dependency graph:" >&2
    printf '  %s\n' $EXTERNAL >&2
    exit 1
fi
echo "   ok: all packages are workspace-local"

echo "== tier1: offline release build (all targets, -D warnings)"
cargo build --release --offline --all-targets

echo "== tier1: offline tests (workspace)"
cargo test -q --offline --workspace

echo "== tier1: doctests (workspace)"
# Also covered by the workspace run above, but kept as an explicit
# gate: the public API examples (Glt quickstart, try_join, FEB,
# lwt-model) must keep compiling and passing.
cargo test -q --offline --workspace --doc

echo "== tier1: concurrency model check (--cfg lwt_model, bounded)"
# Deterministic loom-style exploration of the real lock-free core
# (Chase-Lev deque, MPSC injector, SpinLock, FEB, fiber stack cache)
# under crates/model. The cfg swap rebuilds the checked crates with
# the shim facade, so it gets its own target dir to leave the main
# build cache untouched. Each Checker bounds itself (preemption bound
# 2, per-test execution/time caps); `timeout` is the hard backstop.
CARGO_TARGET_DIR=target/lwt-model \
    RUSTFLAGS="${RUSTFLAGS:-} --cfg lwt_model" \
    timeout 600 cargo test -q --offline -p lwt-model
echo "   ok: model suites green (engine + chase_lev + injector + sync + stack cache + park + waker)"

echo "== tier1: trace-export smoke (LWT_TRACE=1)"
# One real microbench run with tracing on must produce a parseable
# Chrome-trace JSON with events from more than one worker thread. The
# filename carries the config hash of the measurement knobs
# (fig2_create-<hash>.json), so match by glob and require exactly one.
rm -f target/lwt-trace/fig2_create-*.json
LWT_TRACE=1 LWT_THREADS=2 LWT_REPS=3 \
    cargo run --release --offline -q -p lwt-microbench --bin fig2_create >/dev/null
TRACE_OUT=$(ls target/lwt-trace/fig2_create-*.json 2>/dev/null || true)
if [ "$(printf '%s\n' "$TRACE_OUT" | grep -c .)" != 1 ]; then
    echo "FAIL: expected exactly one config-hashed trace file, got: $TRACE_OUT" >&2
    exit 1
fi
python3 - "$TRACE_OUT" <<'PY'
import collections, json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
events = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
assert events, f"{path}: no instant events"
per_tid = collections.Counter(e["tid"] for e in events)
assert all(n >= 1 for n in per_tid.values())
assert len(per_tid) >= 2, f"{path}: events from only {len(per_tid)} worker(s)"
for e in events:
    assert "ts" in e and "pid" in e and "name" in e, f"malformed event: {e}"
print(f"   ok: {len(events)} events across {len(per_tid)} workers in {path}")
PY

echo "== tier1: chaos stage (fault injection under pinned seeds)"
# The failure-injection suite must stay green with the chaos engine
# live: forced steal failures, victim misdirection, stack-cache
# misses, FEB wake perturbations, and injected yields at the default
# rate. Three pinned seeds; identical seeds replay identical fault
# schedules (crates/chaos/tests/determinism.rs pins that property).
for seed in 7 1234 3735928559; do
    echo "   seed $seed"
    LWT_CHAOS_SEED=$seed \
        cargo test -q --offline --test failure_injection >/dev/null
done
echo "   ok: failure-injection suite green under 3 chaos seeds"

echo "== tier1: async-bridge smoke (futures + blocking pool, all backends)"
# The async_ subset of the GLT conformance suite drives spawn_async and
# spawn_blocking across all five backends, then replays under a pinned
# chaos seed with the async fault sites live: AsyncSpuriousWake
# double-enqueues task cells (the begin_poll claim must reject the
# stale entry) and AsyncPollDelay widens the poll/wake race window (the
# coalesce path must not lose the wake).
cargo test -q --offline --test glt_conformance async_ >/dev/null
LWT_CHAOS_SEED=20160926 \
    cargo test -q --offline --test glt_conformance async_ >/dev/null
echo "   ok: async conformance green, plus chaos-seeded spurious-wake replay"

echo "== tier1: watchdog smoke (LWT_WATCHDOG=1, healthy workload)"
# The stall watchdog on a healthy tier-1 workload must report nothing:
# zero false positives is part of the acceptance bar. Stall reports go
# to stderr prefixed "lwt-watchdog:".
WATCHDOG_LOG="target/lwt-watchdog-smoke.log"
LWT_WATCHDOG=1 LWT_THREADS=2 LWT_REPS=3 \
    cargo run --release --offline -q -p lwt-microbench --bin fig2_create \
    >/dev/null 2>"$WATCHDOG_LOG"
if grep -q "lwt-watchdog:" "$WATCHDOG_LOG"; then
    echo "FAIL: watchdog false positives on healthy workload:" >&2
    grep "lwt-watchdog:" "$WATCHDOG_LOG" >&2
    exit 1
fi
echo "   ok: zero stall reports on healthy workload"

echo "== tier1: flight-recorder smoke (seeded FEB deadlock)"
# The watchdog suite seeds a reader blocked on an empty FEB cell
# nobody is filling; with the recorder armed, flagging that stall must
# write a well-formed post-mortem bundle — counters, utilization
# table, per-worker ring tails, and the watchdog/chaos sections (the
# chaos seed makes the bundle replayable).
FLIGHTREC_DIR="$PWD/target/lwt-flightrec-smoke"
rm -rf "$FLIGHTREC_DIR"
LWT_WATCHDOG=1 LWT_FLIGHTREC=1 LWT_FLIGHTREC_DIR="$FLIGHTREC_DIR" \
    cargo test -q --offline --test failure_injection \
    watchdog_flags_a_seeded_feb_deadlock >/dev/null
python3 - "$FLIGHTREC_DIR" <<'PY'
import glob, json, os, sys

dumps = sorted(glob.glob(os.path.join(sys.argv[1], "*.json")))
assert dumps, "no flight-recorder bundle written for the seeded stall"
with open(dumps[0]) as f:
    doc = json.load(f)
for key in ("reason", "unix_ms", "counters", "utilization", "rings", "sections"):
    assert key in doc, f"bundle missing {key!r}"
assert doc["reason"] == "stall", f"unexpected reason {doc['reason']!r}"
assert "ring_dropped" in doc["counters"], "counter snapshot incomplete"
wd = doc["sections"]["watchdog"]
assert any(
    r["kind"] == "blocked" and r["wait"] == "feb" for r in wd["reports"]
), f"watchdog section lacks the seeded FEB block: {wd}"
chaos = doc["sections"]["chaos"]
assert "seed" in chaos and "sites" in chaos, "chaos section must carry replay state"
print(f"   ok: well-formed bundle {os.path.basename(dumps[0])} ({len(dumps)} dump(s))")
PY

echo "== tier1: idle-CPU smoke (passive wait policy must not spin)"
# A quiescent pool in passive mode must burn near-zero process CPU
# across every backend — the acceptance probe for worker parking —
# and the park/unpark counters must balance once everything is
# finalized. The binary asserts both and exits non-zero on violation
# (tolerances: LWT_IDLE_CPU_TOLERANCE_MS, default 150 ms per 800 ms
# idle window).
cargo run --release --offline -q -p lwt-microbench --bin idle_cpu
echo "   ok: parked pools idle at ~zero CPU; park/unpark counters balance"

echo "== tier1: serving smoke (reactor echo, 100 clients x 5 backends)"
# The lwt-net reactor must carry a loopback echo server with 100
# concurrent clients on every backend, all joins bounded (the test
# itself fails on any hang), with the stall watchdog armed: a worker
# wedged by a blocking read — the failure mode the reactor exists to
# prevent — would surface here as an "lwt-watchdog:" stderr report.
SERVING_LOG="target/lwt-serving-smoke.log"
LWT_WATCHDOG=1 \
    cargo test -q --offline --test serving \
    ci_smoke_100_concurrent_clients_every_backend \
    >/dev/null 2>"$SERVING_LOG"
if grep -q "lwt-watchdog:" "$SERVING_LOG"; then
    echo "FAIL: watchdog stall reports during serving smoke:" >&2
    grep "lwt-watchdog:" "$SERVING_LOG" >&2
    exit 1
fi
echo "   ok: 100-client echo green on all backends, zero stall reports"

echo "== tier1: overload smoke (4x connection cap vs 1-worker server)"
# The overload contract under the watchdog, two parts. First the
# deterministic 503 shape: a gated handler saturates a one-slot
# in-flight cap, and the excess request must get a well-formed
# "503 Service Unavailable" with Retry-After while the stall watchdog
# stays silent. Then the macro run: the overload bench offers 4x the
# connection cap to a ONE-worker server (both regimes, both benched
# backends) — every offered request must eventually succeed
# (client_failures == 0: no worker died, nothing wedged) with zero
# stall reports from either process.
OVERLOAD_LOG="target/lwt-overload-smoke.log"
LWT_WATCHDOG=1 \
    cargo test -q --offline --test overload \
    inflight_cap_sheds_with_503_and_retry_after \
    >/dev/null 2>"$OVERLOAD_LOG"
if grep -q "lwt-watchdog:" "$OVERLOAD_LOG"; then
    echo "FAIL: watchdog stall reports during 503-shed smoke:" >&2
    grep "lwt-watchdog:" "$OVERLOAD_LOG" >&2
    exit 1
fi
OVERLOAD_DIR="$PWD/target/lwt-overload-smoke"
rm -f "$OVERLOAD_DIR/BENCH_overload.json"
LWT_WATCHDOG=1 LWT_WORKERS=1 LWT_BENCH_DIR="$OVERLOAD_DIR" \
    LWT_OVERLOAD_CAP=16 LWT_OVERLOAD_REQS=2 \
    cargo bench --offline -q -p lwt-bench --bench overload \
    >/dev/null 2>"$OVERLOAD_LOG"
if grep -q "lwt-watchdog:" "$OVERLOAD_LOG"; then
    echo "FAIL: watchdog stall reports during overload smoke:" >&2
    grep "lwt-watchdog:" "$OVERLOAD_LOG" >&2
    exit 1
fi
python3 - "$OVERLOAD_DIR/BENCH_overload.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
records = doc["benches"]
assert records, "overload smoke wrote no records"
for r in records:
    want = r["offered"] * 2  # LWT_OVERLOAD_REQS=2
    assert r["requests"] == want, (
        f"{r['id']}: {r['requests']}/{want} requests completed — "
        "requests were lost, not shed"
    )
    assert r["client_failures"] == 0, (
        f"{r['id']}: {r['client_failures']} clients exhausted retries"
    )
    assert r["metrics"]["handler_panics"] == 0, (
        f"{r['id']}: worker-side panics during a chaos-free run"
    )
print(f"   {len(records)} records, all offered requests served, 0 failures")
PY
echo "   ok: 503s well-formed, 4x-cap load fully served, zero stall reports"

echo "== tier1: spawn-path smoke (fig2_create vs committed baseline)"
# One quick fig2_create bench run; the spawn path must not regress
# >25% (geometric mean of per-series median ratios) against the
# committed results/BENCH_fig2_create.json. A single series may jitter
# on a loaded box, so individual series only fail at 2x. Tolerances
# overridable for slower/faster CI hosts.
# Absolute: cargo runs the bench with cwd = the package dir, so a
# relative LWT_BENCH_DIR would land under crates/bench/.
SMOKE_DIR="$PWD/target/lwt-bench-smoke"
rm -f "$SMOKE_DIR/BENCH_fig2_create.json"
LWT_BENCH_DIR="$SMOKE_DIR" LWT_THREADS=1 \
    cargo bench --offline -q -p lwt-bench --bench fig2_create >/dev/null
python3 - results/BENCH_fig2_create.json "$SMOKE_DIR/BENCH_fig2_create.json" <<'PY'
import json, math, os, sys

base_path, fresh_path = sys.argv[1], sys.argv[2]
geo_tol = float(os.environ.get("LWT_SPAWN_SMOKE_TOLERANCE", "1.25"))
per_tol = float(os.environ.get("LWT_SPAWN_SMOKE_SERIES_TOLERANCE", "2.0"))

def medians(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["id"]: b["median_ns"] for b in doc["benches"] if b["median_ns"] > 0}

base, fresh = medians(base_path), medians(fresh_path)
shared = sorted(set(base) & set(fresh))
assert shared, f"no common bench ids between {base_path} and {fresh_path}"

ratios = {bid: fresh[bid] / base[bid] for bid in shared}
geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
worst = max(ratios, key=ratios.get)
print(f"   {len(shared)} series; geomean ratio {geomean:.3f} "
      f"(worst {worst}: {ratios[worst]:.2f}x)")
if geomean > geo_tol:
    sys.exit(f"FAIL: spawn medians regressed {geomean:.2f}x > {geo_tol}x vs baseline")
gross = {bid: r for bid, r in ratios.items() if r > per_tol}
if gross:
    lines = ", ".join(f"{bid}: {r:.2f}x" for bid, r in sorted(gross.items()))
    sys.exit(f"FAIL: series regressed beyond {per_tol}x: {lines}")
print("   ok: spawn path within tolerance of committed baseline")
PY

echo "tier1: green"
