//! Go-model concurrency: a goroutine pipeline with channel
//! synchronization.
//!
//! The paper singles out Go's out-of-order channel communication as its
//! efficient join mechanism (§III-F, Fig. 3). This example builds the
//! classic three-stage pipeline — generator → squarer fan-out →
//! collector — entirely on goroutines and channels.
//!
//! Run with `cargo run --release --example pipeline_channels`.

use lwt::go::{Config, Runtime, WaitGroup};

const ITEMS: u64 = 10_000;
const SQUARERS: usize = 4;

fn main() {
    let rt = Runtime::init(Config {
        num_threads: std::thread::available_parallelism().map_or(4, usize::from),
        ..Config::default()
    });

    let (raw_tx, raw_rx) = rt.channel::<u64>(64);
    let (sq_tx, sq_rx) = rt.channel::<u64>(64);

    // Stage 1: generator.
    rt.go(move || {
        for i in 0..ITEMS {
            raw_tx.send(i).unwrap();
        }
        raw_tx.close();
    });

    // Stage 2: a fan-out of squarers; a WaitGroup closes the stage's
    // output once every worker drains.
    let wg = WaitGroup::new(SQUARERS);
    for _ in 0..SQUARERS {
        let (rx, tx, wg) = (raw_rx.clone(), sq_tx.clone(), wg.clone());
        rt.go(move || {
            while let Ok(v) = rx.recv() {
                tx.send(v * v).unwrap();
            }
            wg.done();
        });
    }
    let closer_tx = sq_tx.clone();
    rt.go(move || {
        wg.wait();
        closer_tx.close();
    });
    drop(sq_tx);

    // Stage 3: collect on the main thread (external receives work too).
    let mut sum: u64 = 0;
    let mut count = 0u64;
    while let Ok(v) = sq_rx.recv() {
        sum += v;
        count += 1;
    }
    assert_eq!(count, ITEMS);
    let expect: u64 = (0..ITEMS).map(|i| i * i).sum();
    assert_eq!(sum, expect);
    println!("pipeline squared {ITEMS} items; sum of squares = {sum}");
    rt.shutdown();
}
