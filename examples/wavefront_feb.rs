//! Dataflow wavefront on Qthreads full/empty bits.
//!
//! The signature Qthreads idiom the paper's §III-D describes: "a large
//! number of ULTs accessing any word in memory … full/empty bits are
//! used … for synchronization among ULTs". Each cell of a grid is
//! computed by its own ULT, which *reads* its north and west neighbors
//! with `readFF` — blocking, dataflow style, until those cells have
//! been *written* with `writeEF`. No barriers, no handles between
//! cells: the FEB table alone sequences the anti-diagonal wavefront.
//!
//! The recurrence is the classic dynamic-programming longest-common-
//! subsequence shape: `cell = max(north, west) + bonus(i, j)`.
//!
//! Run with `cargo run --release --example wavefront_feb [n]`.

use std::time::Instant;

use lwt::qthreads::{Config, Runtime};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);

    let rt = Runtime::init(Config {
        num_shepherds: std::thread::available_parallelism().map_or(4, usize::from),
        ..Config::default()
    });

    // Pseudo-input strings for the LCS-like bonus.
    let bonus = move |i: usize, j: usize| u64::from((i * 7 + 3) % 11 == (j * 5 + 2) % 11);
    let addr = move |i: usize, j: usize| 0x1000_0000 + i * n + j;

    let t0 = Instant::now();
    let feb = rt.feb();
    // Seed the fringe (row 0 and column 0; write each cell exactly
    // once — writeEF on a full cell would wait forever).
    for k in 0..n {
        feb.write_ef(addr(0, k), bonus(0, k), || std::thread::yield_now());
    }
    for k in 1..n {
        feb.write_ef(addr(k, 0), bonus(k, 0), || std::thread::yield_now());
    }
    let handles: Vec<_> = (1..n)
        .flat_map(|i| (1..n).map(move |j| (i, j)))
        .map(|(i, j)| {
            let rt2 = rt.clone();
            rt.fork_rr(move || {
                let feb = rt2.feb();
                let yield_relax = || lwt::qthreads::yield_now();
                // Dataflow reads: block until the neighbors exist.
                let north = feb.read_ff(addr(i - 1, j), yield_relax);
                let west = feb.read_ff(addr(i, j - 1), yield_relax);
                let value = north.max(west) + bonus(i, j);
                feb.write_ef(addr(i, j), value, yield_relax);
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let result = rt.feb().read_ff(addr(n - 1, n - 1), || std::thread::yield_now());
    let dt = t0.elapsed();

    // Sequential verification.
    let mut grid = vec![0u64; n * n];
    for k in 0..n {
        grid[k] = bonus(0, k);
        grid[k * n] = bonus(k, 0);
    }
    for i in 1..n {
        for j in 1..n {
            grid[i * n + j] = grid[(i - 1) * n + j].max(grid[i * n + j - 1]) + bonus(i, j);
        }
    }
    assert_eq!(result, grid[n * n - 1]);
    println!(
        "{n}×{n} FEB wavefront: corner value {result}, {} dataflow ULTs in {dt:?}",
        (n - 1) * (n - 1),
    );

    rt.shutdown();
}
