//! Quickstart: the paper's Listing 4 pseudo-code, run on every backend
//! through the unified API.
//!
//! ```text
//! initialization_function();
//! for i in 0..N { ULT_creation_function(example); }
//! yield_function();
//! for i in 0..N { join_function(); }
//! finalize_function();
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lwt::{BackendKind, Glt};

const N: usize = 100;

fn main() {
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(4).build();

        let greetings = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let g = greetings.clone();
                glt.ult_create(move || {
                    // "Hello world" of the paper's Listing 4.
                    g.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();

        glt.yield_now();

        for h in handles {
            h.join();
        }
        assert_eq!(greetings.load(Ordering::Relaxed), N);
        println!("{kind:<18} ran {N} ULTs through the generic API");

        glt.finalize().expect("clean drain");
    }
}
