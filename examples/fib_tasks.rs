//! Recursive task parallelism: parallel Fibonacci on MassiveThreads.
//!
//! MassiveThreads is "a recursion-oriented LWT solution that follows
//! the work-first scheduling policy" (paper §III-C) — this example runs
//! the canonical recursive fib under both creation policies and
//! reports timings, illustrating why the paper's Fig. 6 shows
//! work-first winning recursive decomposition.
//!
//! Run with `cargo run --release --example fib_tasks [n]`.

use std::time::Instant;

use lwt::massive::{Config, Policy, Runtime};

fn fib(rt: &Runtime, n: u64, cutoff: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n <= cutoff {
        // Sequential tail: standard granularity control.
        return fib_seq(n);
    }
    let rt2 = rt.clone();
    let left = rt.spawn(move || fib(&rt2, n - 1, cutoff));
    let right = fib(rt, n - 2, cutoff);
    left.join() + right
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(26);
    let cutoff = 12;
    let expect = fib_seq(n);

    for policy in [Policy::WorkFirst, Policy::HelpFirst] {
        let rt = Runtime::init(Config {
            num_workers: std::thread::available_parallelism().map_or(4, usize::from),
            policy,
            ..Config::default()
        });
        let t0 = Instant::now();
        let got = rt.run(move |rt| fib(rt, n, cutoff));
        let dt = t0.elapsed();
        assert_eq!(got, expect);
        println!("fib({n}) = {got:10}  {policy:?}: {dt:?}");
        rt.shutdown();
    }
}
