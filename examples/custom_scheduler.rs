//! Argobots' signature flexibility: a custom scheduler, pushed onto a
//! running execution stream's scheduler stack, then popped again.
//!
//! "Argobots allows stackable schedulers, enabling dynamic changes to
//! the scheduling policy" (paper §III-E) — the only library in the
//! paper's Table I with that feature. This example installs a
//! priority-biased scheduler that drains pool 0 in LIFO order for a
//! fixed budget of work units, then reports `Done` and hands control
//! back to the default FIFO scheduler.
//!
//! Run with `cargo run --release --example custom_scheduler`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lwt::argobots::{Config, Pick, PoolPolicy, Runtime, SchedContext, Scheduler};

/// LIFO scheduler with a unit budget; `Done` pops it off the stack.
struct LifoBudget {
    stash: Vec<lwt::argobots::WorkUnit>,
    budget: usize,
    executed: Arc<AtomicUsize>,
}

impl Scheduler for LifoBudget {
    fn pick(&mut self, ctx: &SchedContext) -> Pick {
        if self.budget == 0 {
            return Pick::Done;
        }
        while let Some(u) = ctx.pop(0) {
            self.stash.push(u);
        }
        match self.stash.pop() {
            Some(u) => {
                self.budget -= 1;
                self.executed.fetch_add(1, Ordering::Relaxed);
                Pick::Run(u)
            }
            None => Pick::Idle,
        }
    }

    fn unload(&mut self, ctx: &SchedContext) {
        // Hand undispatched units back so the default scheduler (now
        // back on top of the stack) can run them.
        for u in self.stash.drain(..) {
            ctx.push(0, u);
        }
    }
}

fn main() {
    let rt = Runtime::init(Config {
        num_streams: 1,
        pool_policy: PoolPolicy::PrivatePerStream,
        ..Config::default()
    });

    let by_custom = Arc::new(AtomicUsize::new(0));
    rt.push_scheduler(
        0,
        Box::new(LifoBudget {
            stash: Vec::new(),
            budget: 25,
            executed: by_custom.clone(),
        }),
    );

    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..100)
        .map(|i| {
            let done = done.clone();
            rt.ult_create(move || {
                done.fetch_add(1, Ordering::Relaxed);
                i
            })
        })
        .collect();
    let sum: usize = handles.into_iter().map(|h| h.join()).sum();

    assert_eq!(sum, 4950);
    assert_eq!(done.load(Ordering::Relaxed), 100);
    println!(
        "100 ULTs completed; {} were picked by the stacked LIFO scheduler, \
         the rest by the default FIFO scheduler after it popped itself",
        by_custom.load(Ordering::Relaxed),
    );
    rt.shutdown();
}
