//! The paper's endgame, §X: OpenMP-style directives running over the
//! *common LWT API*, so one program body executes unchanged on every
//! lightweight-threading model (what the authors later shipped as
//! GLT/GLTO).
//!
//! This example runs the same three "directives" — a parallel for, a
//! reduction, and a task group — over all five backends through
//! [`lwt::core::Pm`], printing per-backend timings.
//!
//! Run with `cargo run --release --example glto_style`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lwt::core::{BackendKind, Pm};

const N: usize = 100_000;

fn main() {
    println!("{:<18} {:>12} {:>12} {:>12}", "backend", "for", "reduce", "tasks");
    for kind in BackendKind::ALL {
        let pm = Pm::init(kind, std::thread::available_parallelism().map_or(4, usize::from));

        // #pragma omp parallel for
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let t0 = Instant::now();
        pm.parallel_for(0..N, 4096, move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let t_for = t0.elapsed();
        assert_eq!(hits.load(Ordering::Relaxed), N);

        // #pragma omp parallel for reduction(+:sum)
        let t0 = Instant::now();
        let m = N.min(65_536);
        let sum = pm.parallel_reduce(1..m + 1, 4096, 0u64, |i| i as u64, |a, b| a + b);
        let t_red = t0.elapsed();
        let m = m as u64;
        assert_eq!(sum, m * (m + 1) / 2);

        // #pragma omp taskgroup
        let done = Arc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        let d2 = done.clone();
        pm.scope(move |s| {
            for _ in 0..256 {
                let d = d2.clone();
                s.tasklet(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let t_tasks = t0.elapsed();
        assert_eq!(done.load(Ordering::Relaxed), 256);

        println!(
            "{:<18} {:>10.1?} {:>10.1?} {:>10.1?}",
            kind.name(),
            t_for,
            t_red,
            t_tasks
        );
        pm.finalize().expect("clean drain");
    }
}
