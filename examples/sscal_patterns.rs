//! The paper's evaluation in miniature: run all four parallel code
//! patterns (for-loop, task single region, task parallel region,
//! nested for, nested tasks) over every series, printing a small
//! timing table.
//!
//! This drives exactly the machinery behind Figs. 4–8; the figure
//! binaries in `lwt-microbench` emit the full CSV sweeps.
//!
//! Run with `cargo run --release --example sscal_patterns`.

use lwt::microbench::runners::{measure, Experiment, Series};
use lwt::microbench::{as_us, env_usize, reps, thread_sweep};

fn main() {
    let threads = *thread_sweep().last().unwrap_or(&2);
    let n = env_usize("LWT_N", 256);
    let reps = reps().min(10);

    let experiments = [
        ("for-loop", Experiment::ForLoop { n }),
        ("task-single", Experiment::TaskSingle { n }),
        ("task-parallel", Experiment::TaskParallel { n }),
        ("nested-for", Experiment::NestedFor { n: 16 }),
        (
            "nested-task",
            Experiment::NestedTask {
                parents: 32,
                children: 4,
            },
        ),
    ];

    println!("threads={threads} n={n} reps={reps}");
    print!("{:<20}", "series \\ pattern");
    for (name, _) in &experiments {
        print!("{name:>15}");
    }
    println!();
    for series in Series::ALL {
        print!("{:<20}", series.label());
        for &(_, exp) in &experiments {
            let stats = measure(series, exp, threads, reps);
            print!("{:>13.1}us", as_us(stats.mean));
        }
        println!();
    }
}
