//! Divide-and-conquer nested task parallelism: N-queens on Argobots.
//!
//! "Sometimes, a parallel code may be separated into several
//! independent tasks, such as in divide-and-conquer algorithms. In
//! these cases, task parallelism is commonly exploited" (paper
//! §VII-D). The first rank expands into parent tasks; each parent
//! explores its subtree with nested ULT spawns, demonstrating the
//! nested-task pattern of Fig. 8 on a real workload — with tasklets
//! used for the stackless leaf counting.
//!
//! Run with `cargo run --release --example nqueens [n]`.

use std::time::Instant;

use lwt::argobots::{Config, PoolPolicy, Runtime};

/// Count solutions with `cols`/diagonal bitmasks (sequential kernel).
fn solve_seq(n: u32, row: u32, cols: u32, diag1: u32, diag2: u32) -> u64 {
    if row == n {
        return 1;
    }
    let mut free = !(cols | diag1 | diag2) & ((1 << n) - 1);
    let mut count = 0;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        count += solve_seq(
            n,
            row + 1,
            cols | bit,
            (diag1 | bit) << 1,
            (diag2 | bit) >> 1,
        );
    }
    count
}

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    assert!((1..=16).contains(&n), "supported board sizes: 1..=16");

    let rt = Runtime::init(Config {
        num_streams: std::thread::available_parallelism().map_or(4, usize::from),
        pool_policy: PoolPolicy::PrivatePerStream,
        ..Config::default()
    });

    let t0 = Instant::now();
    // Parent tasks: one ULT per first-rank placement…
    let parents: Vec<_> = (0..n)
        .map(|col| {
            let rt2 = rt.clone();
            rt.ult_create(move || {
                let bit = 1u32 << col;
                // …each expanding the second rank into tasklets
                // (stackless leaves — they only compute).
                let mut free = !(bit | bit << 1 | bit >> 1) & ((1 << n) - 1);
                let mut children = Vec::new();
                while free != 0 {
                    let b2 = free & free.wrapping_neg();
                    free ^= b2;
                    children.push(rt2.tasklet_create(move || {
                        solve_seq(
                            n,
                            2,
                            bit | b2,
                            ((bit << 1) | b2) << 1,
                            ((bit >> 1) | b2) >> 1,
                        )
                    }));
                }
                children.into_iter().map(|c| c.join()).sum::<u64>()
            })
        })
        .collect();
    let total: u64 = parents.into_iter().map(|p| p.join()).sum();
    let dt = t0.elapsed();

    let expect = solve_seq(n, 0, 0, 0, 0);
    assert_eq!(total, expect);
    println!("{n}-queens: {total} solutions in {dt:?}");
    rt.shutdown();
}
