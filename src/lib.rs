//! # lwt — lightweight threading runtimes for HPC
//!
//! A from-scratch Rust reproduction of *"A Review of Lightweight Thread
//! Approaches for High Performance Computing"* (Castelló et al.,
//! CLUSTER 2016): five lightweight-thread runtime models, an
//! OpenMP-like OS-thread baseline, the paper's unified common API, and
//! its complete microbenchmark suite.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Contents |
//! |---|---|---|
//! | [`fiber`] | `lwt-fiber` | stacks + x86_64 context switch |
//! | [`sync`] | `lwt-sync` | spinlock, barriers, FEBs, channels, latches |
//! | [`sched`] | `lwt-sched` | shared/private/stealable/Chase–Lev queues |
//! | [`argobots`] | `lwt-argobots` | execution streams, ULTs + tasklets, stackable schedulers, `yield_to` |
//! | [`qthreads`] | `lwt-qthreads` | shepherds/workers, full/empty-bit joins |
//! | [`massive`] | `lwt-massive` | work-first/help-first workers, random stealing |
//! | [`converse`] | `lwt-converse` | processors, Messages, return-mode barrier |
//! | [`go`] | `lwt-go` | global-queue goroutines + channels |
//! | [`openmp`] | `lwt-openmp` | gcc/icc-flavor OpenMP-like baseline |
//! | [`core`] | `lwt-core` | the unified API ([`Glt`]) + Tables I/II |
//! | [`net`] | `lwt-net` | epoll reactor, TCP/HTTP serving on the GLT API |
//! | [`microbench`] | `lwt-microbench` | the paper's microbenchmarks, Figs. 1–8 |
//!
//! ## Quickstart
//!
//! ```
//! use lwt::{BackendKind, Glt};
//!
//! let glt = Glt::builder(BackendKind::Argobots).workers(2).build();
//! let handles: Vec<_> = (0..8).map(|i| glt.ult_create(move || i * i)).collect();
//! let sum: usize = handles.into_iter().map(|h| h.join()).sum();
//! assert_eq!(sum, 140);
//! glt.finalize().expect("clean drain");
//! ```

pub use lwt_argobots as argobots;
pub use lwt_chaos as chaos;
pub use lwt_converse as converse;
pub use lwt_core as core;
pub use lwt_fiber as fiber;
pub use lwt_go as go;
pub use lwt_massive as massive;
pub use lwt_metrics as metrics;
pub use lwt_microbench as microbench;
pub use lwt_net as net;
pub use lwt_openmp as openmp;
pub use lwt_qthreads as qthreads;
pub use lwt_sched as sched;
pub use lwt_sync as sync;
pub use lwt_ultcore as ultcore;

pub use lwt_core::{
    AsyncQueuePolicy, BackendKind, BlockingPoolError, DrainError, Glt, GltBuilder, GltConfig,
    GltHandle, JoinError, PlacementError, SchedPolicy, SpawnError, Straggler,
};
