//! # lwt-go — a Go-model lightweight-thread runtime
//!
//! From-scratch Rust implementation of the goroutine model as the paper
//! characterizes it (§III-F): "all threads share a **global queue**
//! where goroutines are stored. A scheduler is responsible to assign
//! them to idle threads. This global, unique queue needs a
//! synchronization mechanism that may impact performance when an
//! elevated number of threads are used."
//!
//! Deliberate fidelity choices (each one shows up in the paper's
//! curves):
//!
//! * **Per-worker lock-free run queues with a shared injector.** The
//!   original seed modelled the paper's "global, unique queue"
//!   description with one mutex-protected queue; the spawn/join
//!   fast-path redesign moved every runtime onto
//!   [`lwt_sched::ReadyQueue`] (Chase-Lev deque + MPSC inbox + work
//!   stealing), which is also how the *real* Go scheduler has worked
//!   since 1.1 (per-P runqueues + global injector). The
//!   synchronization cost the paper attributes to Go's shared queue
//!   is still observable — as `queue_contention` events on the
//!   injector instead of lock waits.
//! * **No user-visible yield** — the paper's Table I marks Go as the
//!   only LWT library without one ("not even offering the common yield
//!   function"). Goroutines still *implicitly* yield inside blocking
//!   channel operations, exactly as in Go.
//! * **Out-of-order channel synchronization** ([`Sender`]/[`Receiver`])
//!   — the completion-notification mechanism the paper credits for
//!   Go's efficient join (Fig. 3): the master receives one message per
//!   goroutine in whatever order they finish.
//! * **Thread count chosen at run time** ([`Config::num_threads`], ≙
//!   `GOMAXPROCS`).
//!
//! A [`WaitGroup`] is provided as the idiomatic bulk join.
//!
//! ## Example
//!
//! ```
//! use lwt_go::{Config, Runtime};
//!
//! let rt = Runtime::init(Config { num_threads: 2, ..Config::default() });
//! let (tx, rx) = rt.channel::<u32>(8);
//! for i in 0..8 {
//!     let tx = tx.clone();
//!     rt.go(move || tx.send(i).unwrap());
//! }
//! let mut sum = 0;
//! for _ in 0..8 {
//!     sum += rx.recv().unwrap();
//! }
//! assert_eq!(sum, 28);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use lwt_fiber::StackSize;
use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;
use lwt_sched::{near_first, ParkGroup, ReadyQueue};
use lwt_sync::{Channel, CountLatch, RecvError, SendError, SpinLock};
use lwt_ultcore::{
    current_worker, enter_worker, in_ult, join_within, run_unit, wait_until, DrainError, PollTask,
    ReadyUnit, Requeue, Straggler, TaskResched, UltCore, ABANDON_GRACE,
};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of OS threads executing goroutines (`GOMAXPROCS`).
    pub num_threads: usize,
    /// Goroutine stack size. Go starts goroutines on small growable
    /// stacks; ours are fixed, defaulting to the workspace default.
    pub stack_size: StackSize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            num_threads: std::thread::available_parallelism().map_or(4, usize::from),
            stack_size: StackSize::DEFAULT,
        }
    }
}

struct RtInner {
    /// One ready queue per scheduler thread; external spawns are
    /// injected round-robin, idle workers steal from each other.
    /// Goroutines and stackless future tasks share the queues
    /// ([`ReadyUnit`]).
    queues: Vec<ReadyQueue<ReadyUnit>>,
    /// Idle-worker parking (wake-one); every push site notifies.
    park: ParkGroup,
    next: AtomicUsize,
    stack_size: StackSize,
    threads: SpinLock<Vec<Option<std::thread::JoinHandle<()>>>>,
    stop: AtomicBool,
    /// Bounded-drain escape hatch: set when a `shutdown_within`
    /// deadline expires so workers exit even with queued (wedged)
    /// goroutines still rotating through their queues.
    abandon: AtomicBool,
    shut: AtomicBool,
}

/// The Go-model runtime. Cheap to clone.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

impl Runtime {
    /// Start the scheduler threads.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_threads` is zero.
    #[must_use]
    pub fn init(config: Config) -> Self {
        assert!(config.num_threads > 0, "need at least one thread");
        let inner = Arc::new(RtInner {
            queues: (0..config.num_threads).map(|_| ReadyQueue::new()).collect(),
            park: ParkGroup::new(config.num_threads),
            next: AtomicUsize::new(0),
            stack_size: config.stack_size,
            threads: SpinLock::new(Vec::new()),
            stop: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
            shut: AtomicBool::new(false),
        });
        let rt = Runtime { inner };
        let mut threads = rt.inner.threads.lock();
        for t in 0..config.num_threads {
            let inner = rt.inner.clone();
            COUNTERS.os_threads_spawned.inc();
            threads.push(Some(
                std::thread::Builder::new()
                    .name(format!("go-m{t}"))
                    .spawn(move || worker_main(&inner, t))
                    .expect("spawn go scheduler thread"),
            ));
        }
        drop(threads);
        rt
    }

    /// [`Runtime::init`] with defaults.
    #[must_use]
    pub fn init_default() -> Self {
        Self::init(Config::default())
    }

    /// Number of scheduler threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.inner.threads.lock().len()
    }

    /// Launch a goroutine (`go f()`). No handle is returned — Go has no
    /// join; synchronize through channels or a [`WaitGroup`].
    pub fn go<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let ult = UltCore::new(self.inner.stack_size, f);
        emit(EventKind::UltSpawn, 0);
        let n = self.inner.queues.len();
        // A spawn from a scheduler thread lands on that worker's own
        // deque (ReadyQueue::push routes by caller identity); external
        // spawns are injected round-robin across the workers' inboxes.
        let target = match current_worker() {
            Some(w) if w < n => w,
            _ => self.inner.next.fetch_add(1, Ordering::Relaxed) % n,
        };
        self.inner.queues[target].push(ult.into());
        // Push first, then wake at most one sleeper (see ParkGroup
        // docs for why this order is what prevents lost wakes).
        self.inner.park.notify_near(target);
    }

    /// Enqueue a stackless future task, picking the target queue like
    /// [`Runtime::go`] (caller's own worker, else round-robin).
    pub fn post_task(&self, task: Arc<dyn PollTask>) {
        let n = self.inner.queues.len();
        let target = match current_worker() {
            Some(w) if w < n => w,
            _ => self.inner.next.fetch_add(1, Ordering::Relaxed) % n,
        };
        self.inner.queues[target].push(ReadyUnit::Task(task));
        self.inner.park.notify_near(target);
    }

    /// Enqueue a stackless future task on worker `worker`'s queue.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn post_task_to(&self, worker: usize, task: Arc<dyn PollTask>) {
        self.inner.queues[worker].push(ReadyUnit::Task(task));
        self.inner.park.notify_near(worker);
    }

    /// A cloneable hook that [`Runtime::post_task`]s into this runtime:
    /// the reschedule target of every waker built over these queues.
    /// Holds the runtime's shared state alive, so late wakes (a
    /// blocking-pool completion after the master dropped the runtime
    /// handle) still have somewhere to enqueue.
    #[must_use]
    pub fn task_poster(&self) -> TaskResched {
        let rt = Runtime {
            inner: self.inner.clone(),
        };
        Arc::new(move |t: Arc<dyn PollTask>| rt.post_task(t))
    }

    /// [`Runtime::task_poster`] pinned to one worker's queue.
    ///
    /// # Panics
    ///
    /// The returned hook panics if `worker` is out of range.
    #[must_use]
    pub fn task_poster_to(&self, worker: usize) -> TaskResched {
        let rt = Runtime {
            inner: self.inner.clone(),
        };
        Arc::new(move |t: Arc<dyn PollTask>| rt.post_task_to(worker, t))
    }

    /// Create a buffered channel (`make(chan T, cap)`); capacity 0 is
    /// rounded up to 1 (see [`lwt_sync::Channel::bounded`]).
    #[must_use]
    pub fn channel<T>(&self, cap: usize) -> (Sender<T>, Receiver<T>) {
        let ch = Arc::new(Channel::bounded(cap));
        (Sender { ch: ch.clone() }, Receiver { ch })
    }

    /// Create an unbuffered-in-spirit unbounded channel (for cases
    /// where Go code would size the channel to the workload).
    #[must_use]
    pub fn channel_unbounded<T>(&self) -> (Sender<T>, Receiver<T>) {
        let ch = Arc::new(Channel::unbounded());
        (Sender { ch: ch.clone() }, Receiver { ch })
    }

    /// Stop scheduler threads and join them. Idempotent.
    ///
    /// Goroutines still queued (and never awaited) may not run.
    /// Unbounded: a goroutine that never finishes (yield-looping on a
    /// lost channel message) makes this wait forever — use
    /// [`Runtime::shutdown_within`] to degrade gracefully instead.
    pub fn shutdown(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.stop.store(true, Ordering::Release);
        // A fully parked pool must notice the flag now, not after a
        // backstop timeout.
        self.inner.park.unpark_all();
        let mut threads = self.inner.threads.lock();
        for t in threads.iter_mut() {
            if let Some(t) = t.take() {
                t.join().expect("go scheduler thread panicked");
            }
        }
    }

    /// [`Runtime::shutdown`] with a drain deadline: wait up to
    /// `deadline` for the scheduler threads to finish their queues,
    /// then order them to abandon whatever is left and report the
    /// stragglers. The workers are joined either way — on `Err`
    /// nothing is still running, but the listed goroutines never
    /// completed. Idempotent (later calls return `Ok`).
    ///
    /// # Errors
    ///
    /// [`DrainError`] when the deadline expired with goroutines still
    /// queued or running.
    pub fn shutdown_within(&self, deadline: std::time::Duration) -> Result<(), DrainError> {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.inner.stop.store(true, Ordering::Release);
        // Wake every sleeper *before* the drain deadline starts: a
        // fully parked pool drains instantly instead of eating the
        // deadline in 20–200 ms backstop increments.
        self.inner.park.unpark_all();
        let handles: Vec<_> = {
            let mut threads = self.inner.threads.lock();
            threads.iter_mut().filter_map(Option::take).collect()
        };
        let timed_out = !join_within(&handles, deadline);
        if timed_out {
            self.inner.abandon.store(true, Ordering::Release);
            self.inner.park.unpark_all();
            // Grace for workers idling between units to notice the flag.
            join_within(&handles, ABANDON_GRACE);
        }
        for t in handles {
            if t.is_finished() {
                t.join().expect("go scheduler thread panicked");
            } else {
                // Wedged inside a unit: detach rather than hang (never
                // kill); the thread's Arcs keep its shared state alive.
                drop(t);
            }
        }
        if timed_out {
            let stragglers = self
                .inner
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(worker, q)| Straggler {
                    worker,
                    pending: q.len(),
                    what: "goroutine ready queue",
                })
                .collect();
            Err(DrainError {
                waited: deadline,
                stragglers,
            })
        } else {
            Ok(())
        }
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.park.unpark_all();
        for t in self.threads.lock().iter_mut() {
            if let Some(t) = t.take() {
                let _ = t.join();
            }
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("go::Runtime")
            .field("threads", &self.num_threads())
            .field(
                "queued",
                &self.inner.queues.iter().map(ReadyQueue::len).sum::<usize>(),
            )
            .finish()
    }
}

fn worker_main(inner: &Arc<RtInner>, id: usize) {
    let requeue: Arc<dyn Requeue> = {
        let q = inner.clone();
        Arc::new(move |w: usize, u: Arc<UltCore>| {
            q.queues[w].push(u.into());
            q.park.notify_near(w);
        })
    };
    let _guard = enter_worker(id, requeue);
    inner.queues[id].bind();
    let n = inner.queues.len();
    let mut backoff = lwt_sync::Backoff::new();
    let heartbeat = lwt_chaos::register_worker("go", id);
    // Pre-park emptiness estimate: own queue in full, victims' deques
    // only (their inboxes are single-consumer — unreachable to us).
    let pending = |inner: &RtInner| {
        inner.queues[id].len()
            + near_first(id, n)
                .map(|v| inner.queues[v].stealable_len())
                .sum::<usize>()
    };
    loop {
        heartbeat.beat();
        if inner.abandon.load(Ordering::Acquire) {
            break;
        }
        // Bounded sweep: local deque + inbox, then every victim once,
        // nearest first. No unbounded retry anywhere on this path.
        let unit = inner.queues[id].pop().or_else(|| {
            lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Steal);
            for v in near_first(id, n) {
                COUNTERS.steal_attempts.inc();
                if let Some(u) = inner.queues[v].steal() {
                    COUNTERS.steal_hits.inc();
                    emit(EventKind::StealHit, v as u64);
                    return Some(u);
                }
            }
            None
        });
        match unit {
            Some(u) => {
                if lwt_chaos::should_inject(lwt_chaos::FaultSite::YieldPoint) {
                    std::thread::yield_now();
                }
                backoff.reset();
                run_unit(&u);
            }
            None => {
                if inner.stop.load(Ordering::Acquire) {
                    break;
                }
                lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Idle);
                // Dry sweep: give the I/O reactor (if one is running)
                // a zero-timeout poll before burning backoff rounds —
                // readiness wakes repost through this runtime's own
                // queues, so a non-zero return means work may exist.
                if lwt_sched::io_poll() > 0 {
                    backoff.reset();
                    continue;
                }
                backoff.spin();
                if backoff.is_saturated() {
                    // The sweep proved the pool dry: sleep instead of
                    // burning the core (the pre-parking idle loop ate
                    // 100% CPU per idle worker here).
                    let _ = inner.park.park(id, Some(&heartbeat), || pending(inner));
                }
            }
        }
    }
}

/// The implicit reschedule performed inside blocking channel
/// operations: goroutines rotate through the global queue; external
/// threads yield to the kernel. Not exposed — Go offers no user yield.
fn go_relax() -> impl FnMut() {
    let inside = in_ult();
    let mut escalate = lwt_sync::AdaptiveRelax::new();
    move || {
        if inside {
            lwt_ultcore::yield_now();
        }
        escalate.relax();
    }
}

/// Sending half of a channel.
pub struct Sender<T> {
    ch: Arc<Channel<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            ch: self.ch.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Send, blocking (by implicit reschedule) while the buffer is
    /// full.
    ///
    /// # Errors
    ///
    /// [`SendError`] when the channel is closed.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.ch.send(value, go_relax())
    }

    /// Non-blocking send attempt (`select` with `default`).
    ///
    /// # Errors
    ///
    /// See [`lwt_sync::Channel::try_send`].
    pub fn try_send(&self, value: T) -> Result<(), lwt_sync::TrySendError<T>> {
        self.ch.try_send(value)
    }

    /// Close the channel (`close(ch)`).
    pub fn close(&self) {
        self.ch.close();
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "go::Sender(len={})", self.ch.len())
    }
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    ch: Arc<Channel<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            ch: self.ch.clone(),
        }
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking (by implicit reschedule) while empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is closed and drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.ch.recv(go_relax())
    }

    /// Non-blocking receive attempt.
    ///
    /// # Errors
    ///
    /// See [`lwt_sync::Channel::try_recv`].
    pub fn try_recv(&self) -> Result<T, lwt_sync::TryRecvError> {
        self.ch.try_recv()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "go::Receiver(len={})", self.ch.len())
    }
}

/// `sync.WaitGroup`: bulk completion tracking for goroutines.
///
/// ```
/// use lwt_go::{Config, Runtime, WaitGroup};
/// let rt = Runtime::init(Config { num_threads: 2, ..Config::default() });
/// let wg = WaitGroup::new(4);
/// for _ in 0..4 {
///     let wg = wg.clone();
///     rt.go(move || wg.done());
/// }
/// wg.wait();
/// rt.shutdown();
/// ```
#[derive(Clone, Debug)]
pub struct WaitGroup {
    latch: Arc<CountLatch>,
}

impl WaitGroup {
    /// A wait group expecting `count` completions.
    #[must_use]
    pub fn new(count: usize) -> Self {
        WaitGroup {
            latch: Arc::new(CountLatch::new(count)),
        }
    }

    /// Add `n` more expected completions (`wg.Add(n)`).
    pub fn add(&self, n: usize) {
        self.latch.add(n);
    }

    /// Record one completion (`wg.Done()`).
    pub fn done(&self) {
        self.latch.count_down();
    }

    /// Block until all completions arrive (`wg.Wait()`); reschedules
    /// implicitly when called from a goroutine.
    pub fn wait(&self) {
        wait_until(|| self.latch.is_released());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn rt(n: usize) -> Runtime {
        Runtime::init(Config {
            num_threads: n,
            ..Config::default()
        })
    }

    #[test]
    fn goroutines_run() {
        let rt = rt(2);
        let wg = WaitGroup::new(100);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let (wg, hits) = (wg.clone(), hits.clone());
            rt.go(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                wg.done();
            });
        }
        wg.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        rt.shutdown();
    }

    #[test]
    fn channel_join_is_out_of_order_capable() {
        let rt = rt(2);
        let (tx, rx) = rt.channel::<usize>(64);
        for i in 0..64 {
            let tx = tx.clone();
            rt.go(move || tx.send(i).unwrap());
        }
        let mut seen = vec![false; 64];
        for _ in 0..64 {
            seen[rx.recv().unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        rt.shutdown();
    }

    #[test]
    fn bounded_channel_backpressure_reschedules() {
        let rt = rt(1);
        let (tx, rx) = rt.channel::<u32>(1);
        // Producer goroutine outpaces the buffer; its sends must
        // implicitly reschedule instead of deadlocking the single
        // scheduler thread.
        let txc = tx.clone();
        rt.go(move || {
            for i in 0..100 {
                txc.send(i).unwrap();
            }
            txc.close();
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        rt.shutdown();
    }

    #[test]
    fn goroutine_to_goroutine_pipeline() {
        let rt = rt(2);
        let (tx1, rx1) = rt.channel::<u64>(4);
        let (tx2, rx2) = rt.channel::<u64>(4);
        rt.go(move || {
            for i in 0..50 {
                tx1.send(i).unwrap();
            }
            tx1.close();
        });
        rt.go(move || {
            while let Ok(v) = rx1.recv() {
                tx2.send(v * 2).unwrap();
            }
            tx2.close();
        });
        let mut sum = 0;
        while let Ok(v) = rx2.recv() {
            sum += v;
        }
        assert_eq!(sum, 2 * (0..50).sum::<u64>());
        rt.shutdown();
    }

    #[test]
    fn nested_go_spawns() {
        let rt = rt(2);
        let wg = WaitGroup::new(10);
        let rt2 = rt.clone();
        let wg2 = wg.clone();
        rt.go(move || {
            for _ in 0..10 {
                let wg = wg2.clone();
                rt2.go(move || wg.done());
            }
        });
        wg.wait();
        rt.shutdown();
    }

    #[test]
    fn waitgroup_add_extends() {
        let rt = rt(1);
        let wg = WaitGroup::new(1);
        wg.add(1);
        let (a, b) = (wg.clone(), wg.clone());
        rt.go(move || a.done());
        rt.go(move || b.done());
        wg.wait();
        rt.shutdown();
    }

    #[test]
    fn close_wakes_receivers() {
        let rt = rt(1);
        let (tx, rx) = rt.channel::<u8>(1);
        rt.go(move || tx.close());
        assert_eq!(rx.recv(), Err(RecvError));
        rt.shutdown();
    }

    #[test]
    fn shutdown_idempotent_and_drop_safe() {
        let rt = rt(2);
        let wg = WaitGroup::new(1);
        let w = wg.clone();
        rt.go(move || w.done());
        wg.wait();
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }
}

/// Result of a two-way [`select2`].
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// A message from the first channel.
    Left(A),
    /// A message from the second channel.
    Right(B),
}

/// A two-way `select { case <-a: …; case <-b: … }`: blocks (with the
/// goroutine's implicit reschedule) until either channel yields a
/// message, preferring whichever is ready first; alternates the polling
/// order to avoid starving one arm.
///
/// # Errors
///
/// [`RecvError`] once *both* channels are closed and drained.
pub fn select2<A, B>(a: &Receiver<A>, b: &Receiver<B>) -> Result<Either<A, B>, RecvError> {
    let mut relax = go_relax();
    let mut flip = false;
    loop {
        let (mut a_closed, mut b_closed) = (false, false);
        if flip {
            match b.try_recv() {
                Ok(v) => return Ok(Either::Right(v)),
                Err(lwt_sync::TryRecvError::Closed) => b_closed = true,
                Err(lwt_sync::TryRecvError::Empty) => {}
            }
            match a.try_recv() {
                Ok(v) => return Ok(Either::Left(v)),
                Err(lwt_sync::TryRecvError::Closed) => a_closed = true,
                Err(lwt_sync::TryRecvError::Empty) => {}
            }
        } else {
            match a.try_recv() {
                Ok(v) => return Ok(Either::Left(v)),
                Err(lwt_sync::TryRecvError::Closed) => a_closed = true,
                Err(lwt_sync::TryRecvError::Empty) => {}
            }
            match b.try_recv() {
                Ok(v) => return Ok(Either::Right(v)),
                Err(lwt_sync::TryRecvError::Closed) => b_closed = true,
                Err(lwt_sync::TryRecvError::Empty) => {}
            }
        }
        if a_closed && b_closed {
            return Err(RecvError);
        }
        flip = !flip;
        relax();
    }
}

#[cfg(test)]
mod select_tests {
    use super::*;

    #[test]
    fn select_takes_whichever_is_ready() {
        let rt = Runtime::init(Config {
            num_threads: 2,
            ..Config::default()
        });
        let (tx_a, rx_a) = rt.channel::<u32>(4);
        let (tx_b, rx_b) = rt.channel::<&'static str>(4);
        rt.go(move || tx_a.send(7).unwrap());
        match select2(&rx_a, &rx_b).unwrap() {
            Either::Left(v) => assert_eq!(v, 7),
            Either::Right(_) => panic!("b never sent"),
        }
        rt.go(move || tx_b.send("hi").unwrap());
        match select2(&rx_a, &rx_b).unwrap() {
            Either::Right(v) => assert_eq!(v, "hi"),
            Either::Left(_) => panic!("a is empty"),
        }
        rt.shutdown();
    }

    #[test]
    fn select_drains_both_arms_without_starvation() {
        let rt = Runtime::init(Config {
            num_threads: 2,
            ..Config::default()
        });
        let (tx_a, rx_a) = rt.channel::<u32>(64);
        let (tx_b, rx_b) = rt.channel::<u32>(64);
        rt.go(move || {
            for i in 0..50 {
                tx_a.send(i).unwrap();
            }
            tx_a.close();
        });
        rt.go(move || {
            for i in 50..100 {
                tx_b.send(i).unwrap();
            }
            tx_b.close();
        });
        let mut got = Vec::new();
        while let Ok(msg) = select2(&rx_a, &rx_b) {
            got.push(match msg {
                Either::Left(v) | Either::Right(v) => v,
            });
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        rt.shutdown();
    }

    #[test]
    fn select_reports_closed_when_both_done() {
        let rt = Runtime::init(Config {
            num_threads: 1,
            ..Config::default()
        });
        let (tx_a, rx_a) = rt.channel::<u8>(1);
        let (tx_b, rx_b) = rt.channel::<u8>(1);
        tx_a.close();
        tx_b.close();
        assert_eq!(select2(&rx_a, &rx_b), Err(RecvError));
        rt.shutdown();
    }
}
