//! # lwt-argobots — an Argobots-model lightweight-thread runtime
//!
//! From-scratch Rust implementation of the programming model the paper
//! describes for Argobots (Seo et al.), "the likely most flexible and
//! recent solution … a mechanism-oriented LWT library that allows
//! programmers to create their own PMs":
//!
//! * **Execution Streams** ([`Runtime::stream_create`]) — the
//!   OS-thread-backed execution resources. Unlike every other runtime in
//!   this workspace they can be created *dynamically at run time*, not
//!   only at initialization (paper Table I, "Group Control").
//! * **Two work-unit types** — stackful, yieldable **ULTs**
//!   ([`Runtime::ult_create`]) and stackless, atomically-executed
//!   **Tasklets** ([`Runtime::tasklet_create`]). The paper's Figs. 2, 5
//!   and 6 show tasklets beating ULTs by ~2× at creation; the
//!   `ablation_workunit` bench reproduces that comparison.
//! * **Configurable pools** — one private pool per stream (the
//!   configuration the paper's evaluation always selects for Argobots,
//!   with round-robin dispatch from the creator) or a single shared
//!   pool ([`PoolPolicy`]).
//! * **Pluggable, stackable schedulers** ([`Scheduler`],
//!   [`Runtime::push_scheduler`]) — custom instances per stream, pushed
//!   and popped at run time.
//! * **`yield_to`** ([`yield_to`]) — direct ULT→ULT transfer that
//!   "avoids a call to the scheduler, giving directly the control to
//!   another ULT" — unique to Argobots in the paper's Table I.
//!
//! Joins follow the Argobots recipe the paper credits for its flat join
//! curve (Fig. 3): the joiner polls the work-unit *status word* and the
//! structure is freed with the handle (`ABT_thread_free` ≙ join +
//! drop).
//!
//! ## Example
//!
//! ```
//! use lwt_argobots::{Config, PoolPolicy, Runtime};
//!
//! let rt = Runtime::init(Config {
//!     num_streams: 2,
//!     pool_policy: PoolPolicy::PrivatePerStream,
//!     ..Config::default()
//! });
//! let h: Vec<_> = (0..8)
//!     .map(|i| rt.ult_create(move || i * 2))
//!     .collect();
//! let sum: usize = h.into_iter().map(|h| h.join()).sum();
//! assert_eq!(sum, 56);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]

mod pool;
mod sync;
mod runtime;
mod sched;
mod stream;
mod unit;

pub use pool::{Pool, PoolPolicy};
pub use runtime::{Config, Runtime};
pub use sched::{BasicScheduler, Pick, SchedContext, Scheduler, WorkUnit};
pub use stream::{current_stream, in_ult, yield_now, yield_to};
pub use sync::{AbtBarrier, AbtCond, AbtFuture, AbtMutex, AbtMutexGuard, Eventual};
pub use unit::{TaskletHandle, UltHandle, UnitState};

pub use lwt_ultcore::JoinError;
