//! Pluggable, stackable schedulers.
//!
//! Argobots "allows stackable schedulers, enabling dynamic changes to
//! the scheduling policy" (paper §III-E) — the only library in Table I
//! with that feature. Each stream runs a stack of [`Scheduler`]s; the
//! top one picks work units until it reports [`Pick::Done`], at which
//! point it is popped and the previous scheduler resumes control.

use std::sync::Arc;

use crate::pool::PoolShared;
use crate::unit::Unit;

/// An opaque claimed-for-dispatch work unit, as seen by schedulers.
pub struct WorkUnit(pub(crate) Unit);

impl std::fmt::Debug for WorkUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.0 {
            Unit::Ult(_) => "WorkUnit(ULT)",
            Unit::Tasklet(_) => "WorkUnit(Tasklet)",
            Unit::Task(_) => "WorkUnit(Task)",
        })
    }
}

/// What a scheduler decided on one invocation.
#[derive(Debug)]
pub enum Pick {
    /// Execute this unit now.
    Run(WorkUnit),
    /// Nothing to do right now.
    Idle,
    /// This scheduler is finished; pop it from the stack.
    Done,
}

/// The pools a scheduler may draw from, in stream-local order (the
/// stream's own pool first under the private policy).
pub struct SchedContext {
    pub(crate) pools: Vec<Arc<PoolShared>>,
}

impl SchedContext {
    /// Number of accessible pools.
    #[must_use]
    pub fn num_pools(&self) -> usize {
        self.pools.len()
    }

    /// Pop the next unit hint from pool `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn pop(&self, idx: usize) -> Option<WorkUnit> {
        self.pools[idx].pop().map(WorkUnit)
    }

    /// Queued-hint count of pool `idx` (racy).
    #[must_use]
    pub fn pool_len(&self, idx: usize) -> usize {
        self.pools[idx].len()
    }

    /// Return a unit hint to pool `idx` (used by schedulers unloading
    /// undispatched work, e.g. when they report [`Pick::Done`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn push(&self, idx: usize, unit: WorkUnit) {
        self.pools[idx].push(unit.0);
    }
}

impl std::fmt::Debug for SchedContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedContext")
            .field("pools", &self.pools.len())
            .finish()
    }
}

/// A scheduling policy for one execution stream.
///
/// Implementations are driven by the stream's main loop: `pick` is
/// called repeatedly; whatever it returns is executed, idled on, or —
/// for [`Pick::Done`] — causes the scheduler to be popped off the
/// stream's scheduler stack.
pub trait Scheduler: Send + 'static {
    /// Choose the next action for this stream.
    fn pick(&mut self, ctx: &SchedContext) -> Pick;

    /// Called when this scheduler is popped off the stream's scheduler
    /// stack (after it returns [`Pick::Done`]): return any privately
    /// held, undispatched units to the pools so no work is lost.
    fn unload(&mut self, ctx: &SchedContext) {
        let _ = ctx;
    }
}

/// The default scheduler: drain accessible pools FIFO, own pool first.
///
/// Matches the basic FIFO scheduler Argobots attaches to each pool by
/// default.
#[derive(Debug, Default)]
pub struct BasicScheduler {
    cursor: usize,
}

impl BasicScheduler {
    /// A fresh basic scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BasicScheduler {
    fn pick(&mut self, ctx: &SchedContext) -> Pick {
        let n = ctx.num_pools();
        for off in 0..n {
            let idx = (self.cursor + off) % n;
            if let Some(u) = ctx.pop(idx) {
                // Keep draining the pool we found work in.
                self.cursor = idx;
                return Pick::Run(u);
            }
        }
        Pick::Idle
    }
}
