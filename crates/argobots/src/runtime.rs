//! Runtime lifecycle and work-unit creation APIs.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use lwt_fiber::{cache, init_context, StackSize};
use lwt_metrics::registry::{emit, timestamp_if_tracing, COUNTERS};
use lwt_metrics::EventKind;
use lwt_sched::ParkGroup;
use lwt_sync::SpinLock;
use lwt_ultcore::{join_within, DrainError, PollTask, Straggler, TaskResched, ABANDON_GRACE};

use crate::pool::{Pool, PoolPolicy, PoolShared};
use crate::sched::Scheduler;
use crate::stream::{es_main, ult_entry, StreamShared};
use crate::unit::{
    Entry, ResultCell, TaskletHandle, TaskletInner, UltHandle, UltInner, Unit, READY,
};

/// Runtime configuration (`ABT_init` parameters).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of execution streams created at init (more can be added
    /// dynamically with [`Runtime::stream_create`]).
    pub num_streams: usize,
    /// Pool topology.
    pub pool_policy: PoolPolicy,
    /// Stack size for ULTs (tasklets have none).
    pub stack_size: StackSize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            num_streams: std::thread::available_parallelism().map_or(4, usize::from),
            pool_policy: PoolPolicy::default(),
            stack_size: StackSize::DEFAULT,
        }
    }
}

struct StreamEntry {
    shared: Arc<StreamShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

struct RtInner {
    policy: PoolPolicy,
    stack_size: StackSize,
    /// All pools; under `PrivatePerStream`, index i belongs to stream i.
    pools: SpinLock<Vec<Arc<PoolShared>>>,
    streams: SpinLock<Vec<StreamEntry>>,
    /// One park slot per stream. Sized with headroom at init so a few
    /// dynamically created streams can still sleep; streams beyond the
    /// capacity degrade to bounded naps (see `ParkGroup::park`).
    park: Arc<ParkGroup>,
    rr: AtomicUsize,
    shut: AtomicBool,
}

/// The Argobots-model runtime. Cheap to clone; all clones share the
/// same streams and pools.
///
/// The calling ("primary") thread is *external*: it creates and joins
/// work units but does not execute them — matching how the paper's
/// microbenchmarks drive the libraries from a master thread.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

impl Runtime {
    /// Initialize the runtime: spawn the execution streams and their
    /// pools per `config` (`ABT_init`).
    ///
    /// # Panics
    ///
    /// Panics if `config.num_streams` is zero.
    #[must_use]
    pub fn init(config: Config) -> Self {
        assert!(config.num_streams > 0, "need at least one stream");
        let inner = Arc::new(RtInner {
            policy: config.pool_policy,
            stack_size: config.stack_size,
            pools: SpinLock::new(Vec::new()),
            streams: SpinLock::new(Vec::new()),
            park: Arc::new(ParkGroup::new(config.num_streams + 8)),
            rr: AtomicUsize::new(0),
            shut: AtomicBool::new(false),
        });
        let rt = Runtime { inner };
        if config.pool_policy == PoolPolicy::SharedSingle {
            let pool = Arc::new(PoolShared::new_shared());
            // Any stream pops the shared pool, so a push wakes whichever
            // sleeper the scanning wake-one picks.
            pool.set_waker(rt.inner.park.clone(), None);
            rt.inner.pools.lock().push(pool);
        }
        for _ in 0..config.num_streams {
            rt.stream_create();
        }
        rt
    }

    /// [`Runtime::init`] with defaults.
    #[must_use]
    pub fn init_default() -> Self {
        Self::init(Config::default())
    }

    /// Dynamically add an execution stream (`ABT_xstream_create`) —
    /// the capability that distinguishes Argobots' "Group Control" in
    /// the paper's Table I. Returns the new stream's id.
    pub fn stream_create(&self) -> usize {
        let pool = match self.inner.policy {
            PoolPolicy::PrivatePerStream => {
                let p = Arc::new(PoolShared::new());
                self.inner.pools.lock().push(p.clone());
                p
            }
            PoolPolicy::SharedSingle => self.inner.pools.lock()[0].clone(),
        };
        let mut streams = self.inner.streams.lock();
        let id = streams.len();
        if self.inner.policy == PoolPolicy::PrivatePerStream {
            // MPSC: only stream `id` ever pops this pool, so pushes wake
            // that stream specifically (a scanning wake-one could spend
            // its single wake on a stream that cannot pop it). A push
            // racing ahead of this install merely skips the wake — the
            // stream thread below has not started, let alone parked.
            pool.set_waker(self.inner.park.clone(), Some(id));
        }
        let shared = Arc::new(StreamShared {
            id,
            stop: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
            pools: vec![pool],
            park: self.inner.park.clone(),
            mailbox: SpinLock::new(Vec::new()),
        });
        let s2 = shared.clone();
        COUNTERS.os_threads_spawned.inc();
        let thread = std::thread::Builder::new()
            .name(format!("abt-es-{id}"))
            .spawn(move || es_main(&s2))
            .expect("spawn execution stream");
        streams.push(StreamEntry {
            shared,
            thread: Some(thread),
        });
        id
    }

    /// Number of live execution streams.
    #[must_use]
    pub fn num_streams(&self) -> usize {
        self.inner.streams.lock().len()
    }

    /// Read-only views of all pools.
    #[must_use]
    pub fn pools(&self) -> Vec<Pool> {
        self.inner
            .pools
            .lock()
            .iter()
            .map(|p| Pool { shared: p.clone() })
            .collect()
    }

    /// Stack a custom scheduler on stream `stream`
    /// (`ABT_sched_create` + set; the stream pops back to its previous
    /// scheduler when this one reports [`crate::Pick::Done`]).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn push_scheduler(&self, stream: usize, sched: Box<dyn Scheduler>) {
        let streams = self.inner.streams.lock();
        streams[stream].shared.mailbox.lock().push(sched);
    }

    /// Pick the pool new work is dispatched to, round-robin under the
    /// private policy (the paper's master-thread dispatch).
    fn next_pool(&self) -> Arc<PoolShared> {
        let pools = self.inner.pools.lock();
        match self.inner.policy {
            PoolPolicy::SharedSingle => pools[0].clone(),
            PoolPolicy::PrivatePerStream => {
                let i = self.inner.rr.fetch_add(1, Ordering::Relaxed) % pools.len();
                pools[i].clone()
            }
        }
    }

    fn pool_of_stream(&self, stream: usize) -> Arc<PoolShared> {
        match self.inner.policy {
            PoolPolicy::SharedSingle => self.inner.pools.lock()[0].clone(),
            PoolPolicy::PrivatePerStream => self.inner.pools.lock()[stream].clone(),
        }
    }

    /// Create a ULT (`ABT_thread_create`), dispatched round-robin under
    /// the private pool policy.
    pub fn ult_create<T, F>(&self, f: F) -> UltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.ult_create_in(self.next_pool(), f)
    }

    /// Create a ULT in the pool of a specific stream
    /// (`ABT_thread_create` with an explicit target pool).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn ult_create_to<T, F>(&self, stream: usize, f: F) -> UltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.ult_create_in(self.pool_of_stream(stream), f)
    }

    fn ult_create_in<T, F>(&self, pool: Arc<PoolShared>, f: F) -> UltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let result = Arc::new(ResultCell(UnsafeCell::new(None)));
        let slot = result.clone();
        let entry: Entry = Box::new(move || {
            let value = f();
            // SAFETY: sole writer; readers wait for TERMINATED.
            unsafe { *slot.0.get() = Some(value) };
        });
        COUNTERS.ults_created.inc();
        emit(EventKind::UltSpawn, 0);
        let stack = cache::acquire(self.inner.stack_size);
        let inner = Arc::new(UltInner {
            state: AtomicU8::new(READY),
            ctx: UnsafeCell::new(lwt_fiber::RawContext::null()),
            stack: UnsafeCell::new(None),
            entry: UnsafeCell::new(Some(entry)),
            home: UnsafeCell::new(Some(pool.clone())),
            panic: UnsafeCell::new(None),
            spawn_ns: std::sync::atomic::AtomicU64::new(timestamp_if_tracing()),
            span: lwt_metrics::span::on_spawn(),
        });
        // SAFETY: `ult_entry` never returns; the data pointer stays
        // valid because the pool hint + handle hold the Arc; the stack
        // moves *into* the inner below without changing its heap
        // allocation.
        let ctx = unsafe {
            init_context(
                &stack,
                ult_entry,
                Arc::as_ptr(&inner).cast_mut().cast::<u8>(),
            )
        };
        // SAFETY: not yet shared with any consumer (push comes last).
        unsafe {
            *inner.ctx.get() = ctx;
            *inner.stack.get() = Some(stack);
        }
        pool.push(Unit::Ult(inner.clone()));
        UltHandle { inner, result }
    }

    /// Enqueue a stackless poll task, dispatched like a tasklet:
    /// round-robin over pools under the private policy, the single
    /// pool otherwise. Wakes re-enter through the same path, so a
    /// task may migrate between streams across polls (pools are the
    /// placement unit, exactly as for `ABT_task_create`).
    pub fn post_task(&self, task: Arc<dyn PollTask>) {
        self.next_pool().push(Unit::Task(task));
    }

    /// Enqueue a stackless poll task into the pool of a specific
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn post_task_to(&self, stream: usize, task: Arc<dyn PollTask>) {
        self.pool_of_stream(stream).push(Unit::Task(task));
    }

    /// A reschedule hook posting via [`Runtime::post_task`]; holds the
    /// runtime alive so late wakes (after user drop) still land.
    #[must_use]
    pub fn task_poster(&self) -> TaskResched {
        let rt = self.clone();
        Arc::new(move |t| rt.post_task(t))
    }

    /// A reschedule hook pinning every (re)schedule to `stream`'s pool.
    #[must_use]
    pub fn task_poster_to(&self, stream: usize) -> TaskResched {
        let rt = self.clone();
        Arc::new(move |t| rt.post_task_to(stream, t))
    }

    /// Create a tasklet (`ABT_task_create`): a stackless work unit that
    /// runs atomically on the executing stream's own stack. Tasklets
    /// cannot yield — this is what makes them ~2× cheaper than ULTs in
    /// the paper's Figs. 2/5/6.
    pub fn tasklet_create<T, F>(&self, f: F) -> TaskletHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.tasklet_create_in(self.next_pool(), f)
    }

    /// Create a tasklet in the pool of a specific stream.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn tasklet_create_to<T, F>(&self, stream: usize, f: F) -> TaskletHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.tasklet_create_in(self.pool_of_stream(stream), f)
    }

    fn tasklet_create_in<T, F>(&self, pool: Arc<PoolShared>, f: F) -> TaskletHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let result = Arc::new(ResultCell(UnsafeCell::new(None)));
        let slot = result.clone();
        let entry: Entry = Box::new(move || {
            let value = f();
            // SAFETY: sole writer; readers wait for TERMINATED.
            unsafe { *slot.0.get() = Some(value) };
        });
        COUNTERS.tasklets_created.inc();
        // arg = 1 distinguishes tasklet spawns from ULT spawns.
        emit(EventKind::UltSpawn, 1);
        let inner = Arc::new(TaskletInner {
            state: AtomicU8::new(READY),
            entry: UnsafeCell::new(Some(entry)),
            panic: UnsafeCell::new(None),
            spawn_ns: std::sync::atomic::AtomicU64::new(timestamp_if_tracing()),
            span: lwt_metrics::span::on_spawn(),
        });
        pool.push(Unit::Tasklet(inner.clone()));
        TaskletHandle { inner, result }
    }

    /// Stop every stream and join their OS threads (`ABT_finalize`).
    /// Idempotent; also invoked when the last clone drops.
    ///
    /// Queued-but-unjoined work units may or may not have run; join
    /// handles before shutting down for deterministic completion.
    /// Waits unboundedly; see [`Runtime::shutdown_within`] for a drain
    /// with a deadline.
    pub fn shutdown(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        let mut streams = self.inner.streams.lock();
        for s in streams.iter() {
            s.shared.stop.store(true, Ordering::Release);
        }
        // A fully parked pool of streams must notice the flags now, not
        // after a backstop timeout.
        self.inner.park.unpark_all();
        for s in streams.iter_mut() {
            if let Some(t) = s.thread.take() {
                t.join().expect("execution stream panicked");
            }
        }
    }

    /// [`Runtime::shutdown`] with a drain deadline: streams get
    /// `deadline` to go idle; past it they are told to abandon their
    /// pools (no thread is ever killed) and the residue is reported.
    ///
    /// # Errors
    ///
    /// [`DrainError`] listing per-pool unit-hint residue when the
    /// deadline expired before every stream went idle.
    pub fn shutdown_within(&self, deadline: std::time::Duration) -> Result<(), DrainError> {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let (shareds, handles): (Vec<_>, Vec<_>) = {
            let mut streams = self.inner.streams.lock();
            for s in streams.iter() {
                s.shared.stop.store(true, Ordering::Release);
            }
            streams
                .iter_mut()
                .filter_map(|s| s.thread.take().map(|t| (s.shared.clone(), t)))
                .unzip()
        };
        // Wake every sleeper *before* the drain deadline starts: a
        // fully parked pool drains instantly instead of eating the
        // deadline in 20–200 ms backstop increments.
        self.inner.park.unpark_all();
        let timed_out = !join_within(&handles, deadline);
        if timed_out {
            for s in &shareds {
                s.abandon.store(true, Ordering::Release);
            }
            self.inner.park.unpark_all();
            // Grace for streams parked between units to notice the flag.
            join_within(&handles, ABANDON_GRACE);
        }
        for t in handles {
            if t.is_finished() {
                t.join().expect("execution stream panicked");
            } else {
                // Wedged inside a unit: detach rather than hang (never
                // kill); the thread's Arcs keep its shared state alive.
                drop(t);
            }
        }
        if timed_out {
            let stragglers = self
                .inner
                .pools
                .lock()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.len() > 0)
                .map(|(worker, p)| Straggler {
                    worker,
                    pending: p.len(),
                    what: "stream pool",
                })
                .collect();
            Err(DrainError {
                waited: deadline,
                stragglers,
            })
        } else {
            Ok(())
        }
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        // Runtime::shutdown may not have been called; streams must not
        // outlive the pools they reference.
        let mut streams = self.streams.lock();
        for s in streams.iter() {
            s.shared.stop.store(true, Ordering::Release);
        }
        self.park.unpark_all();
        for s in streams.iter_mut() {
            if let Some(t) = s.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("argobots::Runtime")
            .field("streams", &self.num_streams())
            .field("policy", &self.inner.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{current_stream, in_ult, yield_now, yield_to};
    use std::sync::atomic::AtomicUsize;

    fn rt(n: usize, policy: PoolPolicy) -> Runtime {
        Runtime::init(Config {
            num_streams: n,
            pool_policy: policy,
            stack_size: StackSize(32 * 1024),
        })
    }

    #[test]
    fn ult_returns_value() {
        let rt = rt(2, PoolPolicy::PrivatePerStream);
        let h = rt.ult_create(|| 6 * 7);
        assert_eq!(h.join(), 42);
        rt.shutdown();
    }

    #[test]
    fn tasklet_returns_value() {
        let rt = rt(2, PoolPolicy::SharedSingle);
        let h = rt.tasklet_create(|| String::from("atomic"));
        assert_eq!(h.join(), "atomic");
        rt.shutdown();
    }

    #[test]
    fn many_ults_all_run_private_pools() {
        let rt = rt(3, PoolPolicy::PrivatePerStream);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|_| {
                let c = counter.clone();
                rt.ult_create(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        rt.shutdown();
    }

    #[test]
    fn many_tasklets_all_run_shared_pool() {
        let rt = rt(3, PoolPolicy::SharedSingle);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|_| {
                let c = counter.clone();
                rt.tasklet_create(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        rt.shutdown();
    }

    #[test]
    fn ults_can_yield() {
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        let h = rt.ult_create(|| {
            let mut acc = 0;
            for i in 0..5 {
                acc += i;
                yield_now();
            }
            acc
        });
        assert_eq!(h.join(), 10);
        rt.shutdown();
    }

    #[test]
    fn yields_interleave_on_one_stream() {
        // Two ULTs on a single stream must alternate across yields —
        // proves yield really suspends rather than running to completion.
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        let log = Arc::new(SpinLock::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let a = rt.ult_create(move || {
            for i in 0..3 {
                l1.lock().push(('a', i));
                yield_now();
            }
        });
        let b = rt.ult_create(move || {
            for i in 0..3 {
                l2.lock().push(('b', i));
                yield_now();
            }
        });
        a.join();
        b.join();
        let log = log.lock().clone();
        // Strict alternation: same-ULT entries are never adjacent.
        for w in log.windows(2) {
            assert_ne!(w[0].0, w[1].0, "yield did not interleave: {log:?}");
        }
        rt.shutdown();
    }

    #[test]
    fn yield_to_transfers_directly() {
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        let order = Arc::new(SpinLock::new(Vec::new()));
        let o2 = order.clone();
        let rt2 = rt.clone();
        // The source spawns the target while itself running, so the
        // target is guaranteed still READY; yield_to then claims it and
        // switches into it without a scheduler pick.
        let src = rt.ult_create(move || {
            let o1 = o2.clone();
            let target = rt2.ult_create(move || {
                o1.lock().push("target");
            });
            o2.lock().push("src-before");
            yield_to(&target);
            o2.lock().push("src-after");
            target.join();
        });
        src.join();
        assert_eq!(
            order.lock().clone(),
            vec!["src-before", "target", "src-after"]
        );
        rt.shutdown();
    }

    #[test]
    fn nested_spawn_from_ult() {
        let rt = rt(2, PoolPolicy::PrivatePerStream);
        let rt2 = rt.clone();
        let h = rt.ult_create(move || {
            let children: Vec<_> = (0..10).map(|i| rt2.ult_create(move || i)).collect();
            children.into_iter().map(|c| c.join()).sum::<i32>()
        });
        assert_eq!(h.join(), 45);
        rt.shutdown();
    }

    #[test]
    fn dynamic_stream_creation() {
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        assert_eq!(rt.num_streams(), 1);
        let id = rt.stream_create();
        assert_eq!(id, 1);
        assert_eq!(rt.num_streams(), 2);
        // Work dispatched to the new stream runs.
        let h = rt.ult_create_to(1, current_stream);
        assert_eq!(h.join(), Some(1));
        rt.shutdown();
    }

    #[test]
    fn targeted_dispatch_lands_on_stream() {
        let rt = rt(3, PoolPolicy::PrivatePerStream);
        for s in 0..3 {
            let h = rt.ult_create_to(s, current_stream);
            assert_eq!(h.join(), Some(s));
        }
        rt.shutdown();
    }

    #[test]
    fn in_ult_and_stream_id_report() {
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        assert!(!in_ult());
        assert_eq!(current_stream(), None);
        let h = rt.ult_create(|| in_ult());
        assert!(h.join());
        rt.shutdown();
    }

    #[test]
    fn panic_in_ult_propagates_at_join() {
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        let h = rt.ult_create(|| panic!("ult boom"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()))
            .expect_err("join must re-raise");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"ult boom"));
        rt.shutdown();
    }

    #[test]
    fn panic_in_tasklet_propagates_at_join() {
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        let h = rt.tasklet_create(|| panic!("tasklet boom"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()))
            .expect_err("join must re-raise");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"tasklet boom"));
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let rt = rt(2, PoolPolicy::PrivatePerStream);
        rt.ult_create(|| 1).join();
        rt.shutdown();
        rt.shutdown();
        drop(rt);
        // And pure-drop without explicit shutdown:
        let rt2 = self::tests::rt(1, PoolPolicy::SharedSingle);
        rt2.ult_create(|| ()).join();
        drop(rt2);
    }

    #[test]
    fn custom_scheduler_runs_lifo() {
        struct Lifo {
            stash: Vec<crate::sched::WorkUnit>,
        }
        impl Scheduler for Lifo {
            fn pick(&mut self, ctx: &crate::sched::SchedContext) -> crate::sched::Pick {
                // Drain everything available, then serve newest-first.
                while let Some(u) = ctx.pop(0) {
                    self.stash.push(u);
                }
                match self.stash.pop() {
                    Some(u) => crate::sched::Pick::Run(u),
                    None => crate::sched::Pick::Idle,
                }
            }
        }
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        rt.push_scheduler(0, Box::new(Lifo { stash: Vec::new() }));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..50)
            .map(|_| {
                let c = counter.clone();
                rt.ult_create(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        rt.shutdown();
    }

    #[test]
    fn stacked_scheduler_pops_on_done() {
        // A scheduler that runs a fixed number of units then reports
        // Done; the stream must fall back to the base scheduler.
        struct Limited {
            budget: usize,
        }
        impl Scheduler for Limited {
            fn pick(&mut self, ctx: &crate::sched::SchedContext) -> crate::sched::Pick {
                if self.budget == 0 {
                    return crate::sched::Pick::Done;
                }
                match ctx.pop(0) {
                    Some(u) => {
                        self.budget -= 1;
                        crate::sched::Pick::Run(u)
                    }
                    None => crate::sched::Pick::Idle,
                }
            }
        }
        let rt = rt(1, PoolPolicy::PrivatePerStream);
        rt.push_scheduler(0, Box::new(Limited { budget: 3 }));
        let handles: Vec<_> = (0..20).map(|i| rt.ult_create(move || i)).collect();
        let sum: i32 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 190);
        rt.shutdown();
    }
}
