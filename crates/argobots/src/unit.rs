//! Work units: ULTs (stackful) and Tasklets (stackless).

use std::any::Any;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};
use std::sync::Arc;

use lwt_fiber::{CachedStack, RawContext};
use lwt_metrics::registry::SPAWN_LATENCY;
use lwt_ultcore::{JoinError, PollTask};

use crate::pool::PoolShared;

/// Observable lifecycle of a work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitState {
    /// Queued in a pool, claimable by a stream (or `yield_to`).
    Ready,
    /// Executing (or suspended mid-execution awaiting re-queue).
    Running,
    /// Completed; joiners may proceed and the structure may be freed.
    Terminated,
}

pub(crate) const READY: u8 = 0;
pub(crate) const RUNNING: u8 = 1;
pub(crate) const TERMINATED: u8 = 2;

fn state_from_u8(v: u8) -> UnitState {
    match v {
        READY => UnitState::Ready,
        RUNNING => UnitState::Running,
        _ => UnitState::Terminated,
    }
}

/// Type-erased entry closure.
pub(crate) type Entry = Box<dyn FnOnce() + Send + 'static>;

/// Feed the spawn-to-first-run histogram when a unit is first
/// dispatched. `spawn_ns` is zero when tracing was off at creation or
/// the stamp was already consumed — that fast path is one relaxed
/// load.
#[inline]
pub(crate) fn record_spawn_latency(spawn_ns: &AtomicU64) {
    if spawn_ns.load(Ordering::Relaxed) != 0 {
        let t0 = spawn_ns.swap(0, Ordering::Relaxed);
        if t0 != 0 {
            SPAWN_LATENCY.record(lwt_metrics::clock::now_ns().saturating_sub(t0));
        }
    }
}

/// Shared state of a ULT.
pub(crate) struct UltInner {
    pub(crate) state: AtomicU8,
    /// Suspended context; valid whenever the ULT is not running.
    pub(crate) ctx: UnsafeCell<RawContext>,
    /// Owned stack, recycled through the per-worker stack cache when
    /// the last Arc drops (join + handle drop ≙ `ABT_thread_free`).
    pub(crate) stack: UnsafeCell<Option<CachedStack>>,
    /// Entry closure, taken exactly once at first execution.
    pub(crate) entry: UnsafeCell<Option<Entry>>,
    /// Pool this ULT returns to when it yields.
    pub(crate) home: UnsafeCell<Option<Arc<PoolShared>>>,
    /// Panic payload captured from the entry closure, re-raised at join.
    pub(crate) panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
    /// Creation timestamp for the spawn-to-first-run histogram; zero
    /// when tracing is off or already consumed.
    pub(crate) spawn_ns: AtomicU64,
    /// Causal trace span id (0 when tracing was off at creation).
    /// Written once before the Arc is shared; plain field, no atomic.
    pub(crate) span: u64,
}

// SAFETY: interior fields follow the claim protocol — `ctx`, `entry`
// and `panic` are only touched by the thread that owns the unit's
// RUNNING claim (or before first enqueue); `home` is written once at
// creation; `state` transitions publish with Release/Acquire.
unsafe impl Send for UltInner {}
// SAFETY: see above.
unsafe impl Sync for UltInner {}

impl UltInner {
    pub(crate) fn state(&self) -> UnitState {
        state_from_u8(self.state.load(Ordering::Acquire))
    }

    /// Claim READY → RUNNING; grants exclusive execution rights.
    pub(crate) fn claim(&self) -> bool {
        self.state
            .compare_exchange(READY, RUNNING, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    pub(crate) fn is_terminated(&self) -> bool {
        self.state.load(Ordering::Acquire) == TERMINATED
    }
}

/// Shared state of a tasklet: no stack, no context — just a closure
/// executed atomically on the scheduler's own stack.
pub(crate) struct TaskletInner {
    pub(crate) state: AtomicU8,
    pub(crate) entry: UnsafeCell<Option<Entry>>,
    pub(crate) panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
    /// See [`UltInner::spawn_ns`].
    pub(crate) spawn_ns: AtomicU64,
    /// See [`UltInner::span`].
    pub(crate) span: u64,
}

// SAFETY: same claim protocol as UltInner, minus the context fields.
unsafe impl Send for TaskletInner {}
// SAFETY: see above.
unsafe impl Sync for TaskletInner {}

impl TaskletInner {
    pub(crate) fn state(&self) -> UnitState {
        state_from_u8(self.state.load(Ordering::Acquire))
    }

    pub(crate) fn claim(&self) -> bool {
        self.state
            .compare_exchange(READY, RUNNING, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    pub(crate) fn is_terminated(&self) -> bool {
        self.state.load(Ordering::Acquire) == TERMINATED
    }
}

/// A queued work unit (pool entry). Entries are *hints*: execution
/// rights come from the claim CAS, so a stale entry for an already
/// claimed unit is skipped harmlessly.
#[derive(Clone)]
pub(crate) enum Unit {
    Ult(Arc<UltInner>),
    Tasklet(Arc<TaskletInner>),
    /// Stackless poll task (`Glt::spawn_async` bridge). Like a tasklet
    /// it runs atomically on the stream's own stack; unlike one it may
    /// be re-queued many times (one entry per scheduled poll), with
    /// staleness handled by the task's own state machine.
    Task(Arc<dyn PollTask>),
}

/// Slot the spawned closure writes its result into; synchronized by the
/// TERMINATED transition of the owning unit.
pub(crate) struct ResultCell<T>(pub(crate) UnsafeCell<Option<T>>);

// SAFETY: exactly one writer (the unit, before TERMINATED) and readers
// only after observing TERMINATED with Acquire.
unsafe impl<T: Send> Send for ResultCell<T> {}
// SAFETY: see above.
unsafe impl<T: Send> Sync for ResultCell<T> {}

/// Handle to a spawned ULT; join to obtain the closure's result.
///
/// Dropping the handle after (or without) joining releases the ULT
/// structure — together, `join` + drop correspond to
/// `ABT_thread_free`.
pub struct UltHandle<T> {
    pub(crate) inner: Arc<UltInner>,
    pub(crate) result: Arc<ResultCell<T>>,
}

impl<T> UltHandle<T> {
    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> UnitState {
        self.inner.state()
    }

    /// Wait for completion and take the result, surfacing a panic that
    /// escaped the ULT's closure as a [`JoinError`] instead of
    /// re-raising it.
    ///
    /// Inside a ULT this yields the caller (keeping the stream busy);
    /// from an external thread it spin-yields, matching how the paper's
    /// microbenchmarks join from the master thread.
    ///
    /// # Errors
    ///
    /// [`JoinError`] carrying the panic payload.
    pub fn try_join(self) -> Result<T, JoinError> {
        crate::stream::wait_until(|| self.inner.is_terminated());
        lwt_metrics::span::on_join(self.inner.span);
        // SAFETY: TERMINATED observed with Acquire; the unit will never
        // touch `panic`/result again; we own the handle.
        unsafe {
            if let Some(p) = (*self.inner.panic.get()).take() {
                return Err(JoinError::new(p));
            }
            Ok((*self.result.0.get())
                .take()
                .expect("ULT result already taken"))
        }
    }

    /// Wait for completion and take the result.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that escaped the ULT's closure, and panics if
    /// the result was already taken.
    pub fn join(self) -> T {
        self.try_join().unwrap_or_else(|e| e.resume())
    }

    /// Non-consuming completion test.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.inner.is_terminated()
    }
}

impl<T> std::fmt::Debug for UltHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UltHandle")
            .field("state", &self.state())
            .finish()
    }
}

/// Handle to a spawned tasklet.
pub struct TaskletHandle<T> {
    pub(crate) inner: Arc<TaskletInner>,
    pub(crate) result: Arc<ResultCell<T>>,
}

impl<T> TaskletHandle<T> {
    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> UnitState {
        self.inner.state()
    }

    /// Wait for completion and take the result, surfacing an escaped
    /// panic as a [`JoinError`] (see [`UltHandle::try_join`] for the
    /// waiting discipline).
    ///
    /// # Errors
    ///
    /// [`JoinError`] carrying the panic payload.
    pub fn try_join(self) -> Result<T, JoinError> {
        crate::stream::wait_until(|| self.inner.is_terminated());
        lwt_metrics::span::on_join(self.inner.span);
        // SAFETY: as in UltHandle::try_join.
        unsafe {
            if let Some(p) = (*self.inner.panic.get()).take() {
                return Err(JoinError::new(p));
            }
            Ok((*self.result.0.get())
                .take()
                .expect("tasklet result already taken"))
        }
    }

    /// Wait for completion and take the result.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that escaped the tasklet's closure.
    pub fn join(self) -> T {
        self.try_join().unwrap_or_else(|e| e.resume())
    }

    /// Non-consuming completion test.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.inner.is_terminated()
    }
}

impl<T> std::fmt::Debug for TaskletHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskletHandle")
            .field("state", &self.state())
            .finish()
    }
}
