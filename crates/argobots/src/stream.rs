//! Execution streams: the scheduler loop, the post-switch protocol, and
//! the in-ULT primitives (`yield_now`, `yield_to`).
//!
//! ## The post-switch protocol
//!
//! A suspending ULT cannot publish "I am resumable" *before* its
//! context is saved (a racing stream could resume a stale context), and
//! cannot publish it *after* (it no longer runs). The runtime therefore
//! hands the publication to whichever code gains control after the
//! switch: the suspender records a [`Post`] action in the stream-local
//! [`EsCtx`], and the scheduler loop (after its `switch` returns) or
//! the resumed ULT (first thing after *its* `switch` returns, or at
//! entry for a fresh ULT) executes it. The same mechanism lets a
//! finishing ULT be marked `TERMINATED` only after its dying stack has
//! been switched away from — closing the stack-free race described in
//! `DESIGN.md` §7.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lwt_fiber::{switch, switch_final, RawContext};
use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::{span, timeline, EventKind};
use lwt_sched::{ParkGroup, ParkResult};
use lwt_sync::{Backoff, SpinLock};

use crate::pool::PoolShared;
use crate::sched::{BasicScheduler, Pick, SchedContext, Scheduler};
use crate::unit::{record_spawn_latency, Unit, UltHandle, UltInner, READY, RUNNING, TERMINATED};

/// Deferred action executed by whoever gains control after a switch.
pub(crate) enum Post {
    None,
    /// Mark READY and push back into its home pool (a yield).
    Requeue(Arc<UltInner>),
    /// Mark TERMINATED (the ULT finished; its stack is now quiescent).
    Terminated(Arc<UltInner>),
}

/// Stream-local execution context, owned by the stream's OS thread and
/// reached from ULTs through the `ES` thread-local.
pub(crate) struct EsCtx {
    pub(crate) sched_ctx: RawContext,
    pub(crate) current: Option<Arc<UltInner>>,
    pub(crate) post: Post,
    pub(crate) stream_id: usize,
}

thread_local! {
    static ES: Cell<*mut EsCtx> = const { Cell::new(std::ptr::null_mut()) };
}

/// Read the stream TLS through an opaque call — see
/// `lwt_ultcore::worker_ptr` for why this must be `#[inline(never)]`:
/// a ULT resumed on another stream must re-read the thread-local, and
/// inlined reads get CSE'd across the switch in release builds.
#[inline(never)]
fn es_ptr() -> *mut EsCtx {
    ES.with(Cell::get)
}

/// Shared state of one execution stream.
pub(crate) struct StreamShared {
    pub(crate) id: usize,
    pub(crate) stop: AtomicBool,
    /// Degradation switch: when the [`crate::Runtime::shutdown_within`]
    /// drain deadline expires, the stream breaks out of its loop even
    /// with units still pooled (between units — never mid-ULT).
    pub(crate) abandon: AtomicBool,
    /// Pools this stream drains, own pool first. Fixed at creation.
    pub(crate) pools: Vec<Arc<PoolShared>>,
    /// Runtime-wide park group; slot `id` is this stream's parker.
    pub(crate) park: Arc<ParkGroup>,
    /// Schedulers pushed by `Runtime::push_scheduler`, adopted by the
    /// stream loop (stacked on top of the current one).
    pub(crate) mailbox: SpinLock<Vec<Box<dyn Scheduler>>>,
}

/// The stream main loop, run on a dedicated OS thread.
pub(crate) fn es_main(shared: &StreamShared) {
    let es = Box::into_raw(Box::new(EsCtx {
        sched_ctx: RawContext::null(),
        current: None,
        post: Post::None,
        stream_id: shared.id,
    }));
    ES.with(|c| c.set(es));
    emit(EventKind::EsStart, shared.id as u64);
    timeline::enter(timeline::WorkerState::Dispatch);

    let ctx = SchedContext {
        pools: shared.pools.clone(),
    };
    let mut scheds: Vec<Box<dyn Scheduler>> = vec![Box::new(BasicScheduler::new())];
    let heartbeat = lwt_chaos::register_worker("argobots", shared.id);
    let mut backoff = Backoff::new();
    loop {
        heartbeat.beat();
        if shared.abandon.load(Ordering::Acquire) {
            break;
        }
        {
            let mut mb = shared.mailbox.lock();
            while let Some(s) = mb.pop() {
                scheds.push(s);
            }
        }
        let pick = scheds
            .last_mut()
            .expect("scheduler stack never empties")
            .pick(&ctx);
        match pick {
            Pick::Run(unit) => {
                backoff.reset();
                if lwt_chaos::should_inject(lwt_chaos::FaultSite::YieldPoint) {
                    std::thread::yield_now();
                }
                // SAFETY: `es` is live for the whole loop; no aliasing
                // &mut exists while execute runs (ULTs reach it only
                // via the same raw pointer).
                unsafe { execute(es, unit.0) };
            }
            Pick::Idle => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                timeline::enter(timeline::WorkerState::Idle);
                // Reactor idle hook: collect I/O readiness (wakes
                // repost through this runtime) before backing off.
                if lwt_sched::io_poll() > 0 {
                    backoff.reset();
                    continue;
                }
                backoff.spin();
                if backoff.is_saturated() {
                    // The scheduler proved its pools dry: park instead of
                    // burning the core. Pushes into any of this stream's
                    // pools fire the pool's wake hook; stop/abandon
                    // arrive as `unpark_all` tokens from the shutdown
                    // paths, so the backstop timeout is defense in depth
                    // only. (Streams beyond the park group's capacity —
                    // heavy `stream_create` use — degrade to a bounded
                    // nap inside `park`.)
                    let res = shared.park.park(shared.id, Some(&heartbeat), || {
                        shared.pools.iter().map(|p| p.len()).sum()
                    });
                    if matches!(res, ParkResult::FoundWork | ParkResult::Woken) {
                        backoff.reset();
                    }
                }
            }
            Pick::Done => {
                if scheds.len() > 1 {
                    let mut done = scheds.pop().expect("non-empty stack");
                    done.unload(&ctx);
                } else if shared.stop.load(Ordering::Acquire) {
                    break;
                } else {
                    // The base scheduler reported Done spuriously; treat
                    // as idle rather than leaving the stream dead.
                    std::thread::yield_now();
                }
            }
        }
    }

    emit(EventKind::EsStop, shared.id as u64);
    timeline::retire();
    ES.with(|c| c.set(std::ptr::null_mut()));
    // SAFETY: `es` came from Box::into_raw above; no ULT still runs on
    // this stream (the loop exits only when idle).
    drop(unsafe { Box::from_raw(es) });
}

/// Execute one claimed-or-stale unit hint.
///
/// # Safety
///
/// `es` must be this thread's live `EsCtx` with no outstanding `&mut`.
unsafe fn execute(es: *mut EsCtx, unit: Unit) {
    match unit {
        Unit::Task(t) => {
            // The task's state machine is its claim CAS (begin_poll
            // fails on a stale hint) and run() does its own timeline,
            // span, and metrics bookkeeping.
            t.run();
        }
        Unit::Tasklet(t) => {
            if !t.claim() {
                return; // stale hint
            }
            record_spawn_latency(&t.spawn_ns);
            timeline::enter(timeline::WorkerState::Busy);
            if t.span != 0 {
                span::set_current(t.span);
            }
            emit(EventKind::TaskletExec, 0);
            // SAFETY: the claim grants exclusive access to `entry`.
            let f = unsafe { (*t.entry.get()).take().expect("tasklet entry missing") };
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                // SAFETY: still exclusive until TERMINATED is published.
                unsafe { *t.panic.get() = Some(p) };
            }
            span::on_complete(t.span);
            if t.span != 0 {
                span::set_current(span::NO_SPAN);
            }
            timeline::enter(timeline::WorkerState::Dispatch);
            t.state.store(TERMINATED, Ordering::Release);
        }
        Unit::Ult(u) => {
            if !u.claim() {
                return; // stale hint
            }
            record_spawn_latency(&u.spawn_ns);
            timeline::enter(timeline::WorkerState::Busy);
            if u.span != 0 {
                span::set_current(u.span);
            }
            emit(EventKind::UltRun, 0);
            // SAFETY: the claim grants exclusive execution; `ctx` holds
            // the ULT's suspended (or bootstrap) context.
            unsafe {
                (*es).current = Some(u.clone());
                let target = *u.ctx.get();
                switch(&mut (*es).sched_ctx, target);
                process_post(es);
            }
            timeline::enter(timeline::WorkerState::Dispatch);
            // A yield_to chain may have left some other ULT's span
            // current on this thread; clear it so scheduler-side events
            // don't get mis-attributed.
            if lwt_metrics::tracing_enabled() {
                span::set_current(span::NO_SPAN);
            }
        }
    }
}

/// Run the deferred action left behind by the side that switched away.
///
/// # Safety
///
/// `es` must be this thread's live `EsCtx`.
pub(crate) unsafe fn process_post(es: *mut EsCtx) {
    // SAFETY: exclusive by contract.
    let post = std::mem::replace(unsafe { &mut (*es).post }, Post::None);
    match post {
        Post::None => {}
        Post::Requeue(u) => {
            // SAFETY: `home` is written once at creation.
            let home = unsafe { (*u.home.get()).clone().expect("ULT has no home pool") };
            // READY must be visible before the hint, or a racing popper
            // would fail the claim and drop the only wakeup.
            u.state.store(READY, Ordering::Release);
            home.push(Unit::Ult(u));
        }
        Post::Terminated(u) => {
            u.state.store(TERMINATED, Ordering::Release);
        }
    }
}

/// Entry point of every ULT (runs on the ULT's own stack).
pub(crate) unsafe extern "sysv64" fn ult_entry(data: *mut u8) -> ! {
    let es = es_ptr();
    debug_assert!(!es.is_null());
    // Complete a yield_to handoff that targeted this fresh ULT.
    // SAFETY: es is this worker's live context.
    unsafe { process_post(es) };

    // SAFETY: `data` is the UltInner kept alive by the Arc in
    // es.current for the whole execution.
    let inner = unsafe { &*data.cast::<UltInner>() };
    // SAFETY: the RUNNING claim grants exclusive access to `entry`.
    let f = unsafe { (*inner.entry.get()).take().expect("ULT entry missing") };
    if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
        // SAFETY: still the exclusive owner until TERMINATED.
        unsafe { *inner.panic.get() = Some(p) };
    }
    span::on_complete(inner.span);

    // Re-fetch: the ULT may have migrated to another stream via yields.
    let es = es_ptr();
    // SAFETY: es is the live context of whichever stream resumed us.
    unsafe {
        let me = (*es).current.take().expect("finishing ULT not current");
        (*es).post = Post::Terminated(me);
        let sched = (*es).sched_ctx;
        switch_final(sched)
    }
}

/// Yield the calling ULT back to its stream's scheduler
/// (`ABT_thread_yield`).
///
/// # Panics
///
/// Panics when called outside a ULT.
pub fn yield_now() {
    let es = es_ptr();
    assert!(
        !es.is_null() && unsafe { (*es).current.is_some() },
        "lwt_argobots::yield_now() outside a ULT"
    );
    COUNTERS.yields.inc();
    emit(EventKind::Yield, 0);
    // SAFETY: es live; `me` stays alive through the Arc moved into
    // `post` plus the pool hint; my ctx slot outlives the suspension.
    unsafe {
        let me = (*es).current.take().expect("yielding ULT not current");
        let my_ctx: *mut RawContext = me.ctx.get();
        (*es).post = Post::Requeue(me);
        let sched = (*es).sched_ctx;
        switch(&mut *my_ctx, sched);
        // Resumed (possibly on another stream): finish the resumer's
        // handoff.
        let es = es_ptr();
        process_post(es);
    }
}

/// Transfer control directly to `target`, bypassing the scheduler
/// (`ABT_thread_yield_to`) — the calling ULT is re-queued as if it had
/// yielded.
///
/// Falls back to [`yield_now`] when `target` is currently running on
/// some stream, and is a no-op when it already terminated.
///
/// # Panics
///
/// Panics when called outside a ULT.
pub fn yield_to<T>(target: &UltHandle<T>) {
    let es = es_ptr();
    assert!(
        !es.is_null() && unsafe { (*es).current.is_some() },
        "lwt_argobots::yield_to() outside a ULT"
    );
    match target.inner.state.load(Ordering::Acquire) {
        TERMINATED => return,
        RUNNING => return yield_now(),
        _ => {}
    }
    if !target.inner.claim() {
        // Lost the claim race; degrade to a plain yield.
        return yield_now();
    }
    COUNTERS.yields.inc();
    emit(EventKind::Yield, 0);
    record_spawn_latency(&target.inner.spawn_ns);
    if target.inner.span != 0 {
        span::set_current(target.inner.span);
    }
    emit(EventKind::UltRun, 0);
    // SAFETY: same protocol as yield_now, except control lands in the
    // claimed target instead of the scheduler; the target's resume path
    // (or entry) performs our requeue.
    unsafe {
        let me = (*es).current.take().expect("yielding ULT not current");
        let my_ctx: *mut RawContext = me.ctx.get();
        (*es).post = Post::Requeue(me);
        (*es).current = Some(target.inner.clone());
        let tctx = *target.inner.ctx.get();
        switch(&mut *my_ctx, tctx);
        let es = es_ptr();
        process_post(es);
    }
}

/// Whether the caller is running inside a ULT on some stream.
#[must_use]
pub fn in_ult() -> bool {
    let es = es_ptr();
    // SAFETY: es, when non-null, is the live EsCtx of this thread.
    !es.is_null() && unsafe { (*es).current.is_some() }
}

/// The id of the stream executing the caller, if any.
#[must_use]
pub fn current_stream() -> Option<usize> {
    let es = es_ptr();
    if es.is_null() {
        None
    } else {
        // SAFETY: live EsCtx of this thread.
        Some(unsafe { (*es).stream_id })
    }
}

/// Wait for `cond`, yielding the ULT when inside one and spin-yielding
/// the OS thread otherwise — the join discipline of `ABT_thread_free`.
pub(crate) fn wait_until(cond: impl Fn() -> bool) {
    if cond() {
        return;
    }
    let _watch = lwt_chaos::block_enter(
        lwt_chaos::BlockKind::Join,
        std::ptr::from_ref(&cond) as u64,
    );
    if in_ult() {
        // Yield so the stream runs other units; escalate to napping if
        // the wait drags on (see lwt_sync::AdaptiveRelax for why pure
        // yield loops starve oversubscribed hosts).
        let mut relax = lwt_sync::AdaptiveRelax::new();
        while !cond() {
            yield_now();
            if cond() {
                break;
            }
            relax.relax();
        }
    } else {
        let mut relax = lwt_sync::AdaptiveRelax::new();
        while !cond() {
            relax.relax();
        }
    }
}
