//! ULT-aware synchronization objects (`ABT_mutex`, `ABT_cond`,
//! `ABT_barrier`, `ABT_eventual`, `ABT_future`).
//!
//! Unlike OS primitives, blocking here never blocks the execution
//! stream: waiting ULTs yield, so the stream keeps executing other work
//! units — the property that lets Argobots programs hold locks across
//! fine-grained tasks without wedging their streams.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use lwt_sync::SpinLock;

use crate::stream::wait_until;

/// A ULT-aware mutual-exclusion lock (`ABT_mutex`).
///
/// Acquisition spins briefly, then yields the calling ULT (or naps an
/// external thread), keeping the stream productive.
///
/// ```
/// use lwt_argobots::{AbtMutex, Config, Runtime};
/// # let rt = Runtime::init(Config { num_streams: 2, ..Default::default() });
/// let m = std::sync::Arc::new(AbtMutex::new(0u64));
/// let handles: Vec<_> = (0..8).map(|_| {
///     let m = m.clone();
///     rt.ult_create(move || *m.lock() += 1)
/// }).collect();
/// for h in handles { h.join(); }
/// assert_eq!(*m.lock(), 8);
/// # rt.shutdown();
/// ```
pub struct AbtMutex<T: ?Sized> {
    locked: AtomicBool,
    value: std::cell::UnsafeCell<T>,
}

// SAFETY: mutual exclusion provided by the `locked` flag.
unsafe impl<T: ?Sized + Send> Send for AbtMutex<T> {}
// SAFETY: see above.
unsafe impl<T: ?Sized + Send> Sync for AbtMutex<T> {}

impl<T> AbtMutex<T> {
    /// An unlocked mutex holding `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        AbtMutex {
            locked: AtomicBool::new(false),
            value: std::cell::UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> AbtMutex<T> {
    /// Acquire the lock, yielding the ULT while contended.
    pub fn lock(&self) -> AbtMutexGuard<'_, T> {
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            wait_until(|| !self.locked.load(Ordering::Relaxed));
        }
    }

    /// Try to acquire the lock without waiting.
    pub fn try_lock(&self) -> Option<AbtMutexGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(AbtMutexGuard { mutex: self })
        } else {
            None
        }
    }
}

impl<T: Default> Default for AbtMutex<T> {
    fn default() -> Self {
        AbtMutex::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for AbtMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AbtMutex({})",
            if self.locked.load(Ordering::Relaxed) {
                "locked"
            } else {
                "unlocked"
            }
        )
    }
}

/// RAII guard for [`AbtMutex`].
pub struct AbtMutexGuard<'a, T: ?Sized> {
    mutex: &'a AbtMutex<T>,
}

impl<T: ?Sized> std::ops::Deref for AbtMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for AbtMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T: ?Sized> Drop for AbtMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.locked.store(false, Ordering::Release);
    }
}

/// A ULT-aware condition variable (`ABT_cond`), ticket-based.
///
/// `signal`/`broadcast` should be called with the associated
/// [`AbtMutex`] held (the usual condition-variable discipline) for
/// predictable wakeup pairing; waiters tolerate spurious wakeups.
#[derive(Debug, Default)]
pub struct AbtCond {
    tickets: AtomicUsize,
    granted: AtomicUsize,
}

impl AbtCond {
    /// A condition variable with no pending waiters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically release `guard` and wait for a signal, then
    /// re-acquire the mutex.
    pub fn wait<'a, T: ?Sized>(
        &self,
        guard: AbtMutexGuard<'a, T>,
    ) -> AbtMutexGuard<'a, T> {
        let mutex = guard.mutex;
        let ticket = self.tickets.fetch_add(1, Ordering::AcqRel);
        drop(guard);
        wait_until(|| self.granted.load(Ordering::Acquire) > ticket);
        mutex.lock()
    }

    /// Wake one waiter, if any.
    pub fn signal(&self) {
        let mut granted = self.granted.load(Ordering::Relaxed);
        loop {
            if granted >= self.tickets.load(Ordering::Acquire) {
                return; // nobody waiting
            }
            match self.granted.compare_exchange(
                granted,
                granted + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(g) => granted = g,
            }
        }
    }

    /// Wake every current waiter.
    pub fn broadcast(&self) {
        let tickets = self.tickets.load(Ordering::Acquire);
        let mut granted = self.granted.load(Ordering::Relaxed);
        while granted < tickets {
            match self.granted.compare_exchange(
                granted,
                tickets,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(g) => granted = g,
            }
        }
    }
}

/// A ULT-aware barrier (`ABT_barrier`): like
/// [`lwt_sync::SenseBarrier`] but waiting ULTs yield their stream.
#[derive(Debug)]
pub struct AbtBarrier {
    inner: lwt_sync::SenseBarrier,
}

impl AbtBarrier {
    /// A barrier for `participants` ULTs.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    #[must_use]
    pub fn new(participants: usize) -> Self {
        AbtBarrier {
            inner: lwt_sync::SenseBarrier::new(participants),
        }
    }

    /// Wait for all participants; returns `true` for one leader per
    /// episode.
    ///
    /// All participants must be able to run concurrently or via yields
    /// — with private pools, do not place more participants on one
    /// stream than its scheduler can interleave (they yield, so any
    /// number works; they just serialize).
    pub fn wait(&self) -> bool {
        // SenseBarrier's relax is a plain closure; route it through the
        // ULT-aware waiting discipline by polling with wait_until-style
        // escalation.
        let mut escalate = lwt_sync::AdaptiveRelax::new();
        self.inner.wait(move || {
            if crate::stream::in_ult() {
                crate::stream::yield_now();
            }
            escalate.relax();
        })
    }
}

/// A one-shot, multi-reader value slot (`ABT_eventual`).
///
/// One producer sets the value; any number of ULTs wait and read.
pub struct Eventual<T> {
    ready: AtomicBool,
    value: SpinLock<Option<T>>,
}

impl<T> Eventual<T> {
    /// An empty eventual.
    #[must_use]
    pub fn new() -> Self {
        Eventual {
            ready: AtomicBool::new(false),
            value: SpinLock::new(None),
        }
    }

    /// Set the value (`ABT_eventual_set`).
    ///
    /// # Panics
    ///
    /// Panics if already set (one-shot, like its C counterpart until
    /// reset).
    pub fn set(&self, value: T) {
        let mut slot = self.value.lock();
        assert!(slot.is_none(), "Eventual::set called twice without reset");
        *slot = Some(value);
        drop(slot);
        self.ready.store(true, Ordering::Release);
    }

    /// Whether the value is available (`ABT_eventual_test`).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Wait (ULT-aware) until set (`ABT_eventual_wait`).
    pub fn wait(&self) {
        wait_until(|| self.is_ready());
    }

    /// Wait and clone the value out.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.wait();
        self.value
            .lock()
            .as_ref()
            .expect("eventual ready without value")
            .clone()
    }

    /// Clear the slot for reuse (`ABT_eventual_reset`).
    pub fn reset(&self) {
        self.ready.store(false, Ordering::Release);
        *self.value.lock() = None;
    }
}

impl<T> Default for Eventual<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for Eventual<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Eventual({})",
            if self.is_ready() { "ready" } else { "empty" }
        )
    }
}

/// An n-contribution future (`ABT_future`): becomes ready once
/// `expected` values have been contributed; the consumer takes them
/// all.
pub struct AbtFuture<T> {
    expected: usize,
    contributed: AtomicUsize,
    values: SpinLock<Vec<T>>,
}

impl<T: Send> AbtFuture<T> {
    /// A future expecting `expected` contributions.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero.
    #[must_use]
    pub fn new(expected: usize) -> Arc<Self> {
        assert!(expected > 0, "future needs at least one contribution");
        Arc::new(AbtFuture {
            expected,
            contributed: AtomicUsize::new(0),
            values: SpinLock::new(Vec::with_capacity(expected)),
        })
    }

    /// Contribute one value (`ABT_future_set`).
    ///
    /// # Panics
    ///
    /// Panics on more than `expected` contributions.
    pub fn contribute(&self, value: T) {
        self.values.lock().push(value);
        let prev = self.contributed.fetch_add(1, Ordering::AcqRel);
        assert!(prev < self.expected, "AbtFuture over-contributed");
    }

    /// Whether all contributions have arrived.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.contributed.load(Ordering::Acquire) == self.expected
    }

    /// Wait (ULT-aware) until ready (`ABT_future_wait`).
    pub fn wait(&self) {
        wait_until(|| self.is_ready());
    }

    /// Wait, then take the contributed values (single consumer; the
    /// order is contribution order under a single contributor, else
    /// unspecified).
    pub fn take(&self) -> Vec<T> {
        self.wait();
        std::mem::take(&mut *self.values.lock())
    }
}

impl<T> std::fmt::Debug for AbtFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AbtFuture({}/{})",
            self.contributed.load(Ordering::Relaxed),
            self.expected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, PoolPolicy, Runtime};
    use lwt_fiber::StackSize;

    fn rt(n: usize) -> Runtime {
        Runtime::init(Config {
            num_streams: n,
            pool_policy: PoolPolicy::PrivatePerStream,
            stack_size: StackSize(32 * 1024),
        })
    }

    #[test]
    fn mutex_counter_exact_across_ults() {
        let rt = rt(2);
        let m = Arc::new(AbtMutex::new(0usize));
        let handles: Vec<_> = (0..100)
            .map(|_| {
                let m = m.clone();
                rt.ult_create(move || {
                    for _ in 0..10 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(*m.lock(), 1000);
        rt.shutdown();
    }

    #[test]
    fn mutex_try_lock_contention() {
        let m = AbtMutex::new(());
        let g = m.try_lock().unwrap();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        assert_eq!(format!("{m:?}"), "AbtMutex(unlocked)");
    }

    #[test]
    fn mutex_held_across_yields_does_not_wedge_stream() {
        let rt = rt(1);
        let m = Arc::new(AbtMutex::new(0));
        let m2 = m.clone();
        // Holder yields while holding the lock; a second ULT contends.
        let holder = rt.ult_create(move || {
            let mut g = m2.lock();
            for _ in 0..3 {
                crate::stream::yield_now();
            }
            *g += 1;
        });
        let m3 = m.clone();
        let contender = rt.ult_create(move || {
            *m3.lock() += 10;
        });
        holder.join();
        contender.join();
        assert_eq!(*m.lock(), 11);
        rt.shutdown();
    }

    #[test]
    fn cond_producer_consumer() {
        let rt = rt(2);
        let m = Arc::new(AbtMutex::new(Vec::<u32>::new()));
        let cond = Arc::new(AbtCond::new());
        let (mc, cc) = (m.clone(), cond.clone());
        let consumer = rt.ult_create(move || {
            let mut got = Vec::new();
            let mut g = mc.lock();
            while got.len() < 10 {
                while g.is_empty() {
                    g = cc.wait(g);
                }
                got.append(&mut g);
            }
            got
        });
        let (mp, cp) = (m.clone(), cond.clone());
        let producer = rt.ult_create(move || {
            for i in 0..10 {
                {
                    let mut g = mp.lock();
                    g.push(i);
                    cp.signal();
                }
                crate::stream::yield_now();
            }
        });
        producer.join();
        let mut got = consumer.join();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        rt.shutdown();
    }

    #[test]
    fn cond_broadcast_wakes_everyone() {
        let rt = rt(2);
        let m = Arc::new(AbtMutex::new(false));
        let cond = Arc::new(AbtCond::new());
        let waiters: Vec<_> = (0..5)
            .map(|_| {
                let (m, c) = (m.clone(), cond.clone());
                rt.ult_create(move || {
                    let mut g = m.lock();
                    while !*g {
                        g = c.wait(g);
                    }
                })
            })
            .collect();
        // Let the waiters park.
        while cond.tickets.load(Ordering::Relaxed) < 5 {
            std::thread::yield_now();
        }
        {
            let mut g = m.lock();
            *g = true;
            cond.broadcast();
        }
        for w in waiters {
            w.join();
        }
        rt.shutdown();
    }

    #[test]
    fn signal_without_waiters_is_lost() {
        let cond = AbtCond::new();
        cond.signal();
        cond.broadcast();
        assert_eq!(cond.granted.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn barrier_synchronizes_ults() {
        let rt = rt(2);
        let barrier = Arc::new(AbtBarrier::new(4));
        let phase = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (b, p) = (barrier.clone(), phase.clone());
                rt.ult_create(move || {
                    p.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    assert_eq!(p.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        rt.shutdown();
    }

    #[test]
    fn eventual_multi_reader() {
        let rt = rt(2);
        let ev: Arc<Eventual<String>> = Arc::new(Eventual::new());
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let ev = ev.clone();
                rt.ult_create(move || ev.get())
            })
            .collect();
        let ev2 = ev.clone();
        rt.ult_create(move || ev2.set("ready".into())).join();
        for r in readers {
            assert_eq!(r.join(), "ready");
        }
        // Reset allows reuse.
        ev.reset();
        assert!(!ev.is_ready());
        ev.set("again".into());
        assert_eq!(ev.get(), "again");
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "set called twice")]
    fn eventual_double_set_panics() {
        let ev = Eventual::new();
        ev.set(1);
        ev.set(2);
    }

    #[test]
    fn future_collects_contributions() {
        let rt = rt(2);
        let fut = AbtFuture::new(8);
        let contributors: Vec<_> = (0..8)
            .map(|i| {
                let fut = fut.clone();
                rt.ult_create(move || fut.contribute(i * i))
            })
            .collect();
        let mut vals = fut.take();
        for c in contributors {
            c.join();
        }
        vals.sort_unstable();
        assert_eq!(vals, (0..8).map(|i| i * i).collect::<Vec<_>>());
        assert!(fut.is_ready());
        rt.shutdown();
    }
}
