//! Work-unit pools and pool topology policies.

use lwt_sched::SharedQueue;

use crate::unit::Unit;

/// How pools map onto execution streams.
///
/// The paper evaluates both layouts and always selects the private one
/// for Argobots ("Argobots with one private queue for each Execution
/// Stream … were always chosen", §IX-E); the shared layout exists for
/// the `ablation_pools` bench that quantifies why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// One pool per stream; creators dispatch round-robin into the
    /// target stream's pool. Pops never contend across streams.
    #[default]
    PrivatePerStream,
    /// One pool shared by every stream; all pops contend on its lock.
    SharedSingle,
}

/// Internal pool representation: a mutex-protected FIFO of unit hints.
///
/// Even "private" pools need a lock because the *creator* (the main
/// thread, or any ULT on another stream) pushes into them; privacy
/// refers to who *consumes*, mirroring `ABT_POOL_ACCESS_MPSC`.
pub(crate) struct PoolShared {
    queue: SharedQueue<Unit>,
}

impl PoolShared {
    pub(crate) fn new() -> Self {
        PoolShared {
            queue: SharedQueue::new(),
        }
    }

    pub(crate) fn push(&self, unit: Unit) {
        self.queue.push(unit);
    }

    pub(crate) fn pop(&self) -> Option<Unit> {
        self.queue.pop()
    }

    pub(crate) fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Public, read-only view of a pool (diagnostics and custom
/// schedulers).
pub struct Pool {
    pub(crate) shared: std::sync::Arc<PoolShared>,
}

impl Pool {
    /// Number of queued unit hints (racy; stale entries included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the pool currently appears empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("len", &self.len()).finish()
    }
}
