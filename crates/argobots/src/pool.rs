//! Work-unit pools and pool topology policies.

use lwt_sched::{Injector, SharedQueue};

use crate::unit::Unit;

/// How pools map onto execution streams.
///
/// The paper evaluates both layouts and always selects the private one
/// for Argobots ("Argobots with one private queue for each Execution
/// Stream … were always chosen", §IX-E); the shared layout exists for
/// the `ablation_pools` bench that quantifies why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// One pool per stream; creators dispatch round-robin into the
    /// target stream's pool. Pops never contend across streams.
    #[default]
    PrivatePerStream,
    /// One pool shared by every stream; all pops contend on its lock.
    SharedSingle,
}

/// Internal pool representation.
///
/// A *private* pool is a lock-free MPSC [`Injector`]: any creator (the
/// main thread, or any ULT on another stream) may push, but only the
/// owning stream consumes — exactly `ABT_POOL_ACCESS_MPSC`, with no
/// lock on either path. The *shared* pool keeps the mutex-protected
/// FIFO: every stream pops from it, and the lock they contend on is
/// precisely what the `ablation_pools` bench quantifies.
pub(crate) enum PoolShared {
    /// Lock-free MPSC pool for the private-per-stream layout.
    Mpsc(Injector<Unit>),
    /// Mutex-protected MPMC pool for the shared-single layout.
    Shared(SharedQueue<Unit>),
}

impl PoolShared {
    /// Lock-free MPSC pool (private-per-stream layout).
    pub(crate) fn new() -> Self {
        PoolShared::Mpsc(Injector::new())
    }

    /// Lock-based MPMC pool (shared-single layout).
    pub(crate) fn new_shared() -> Self {
        PoolShared::Shared(SharedQueue::new())
    }

    pub(crate) fn push(&self, unit: Unit) {
        match self {
            PoolShared::Mpsc(q) => q.push(unit),
            PoolShared::Shared(q) => q.push(unit),
        }
    }

    pub(crate) fn pop(&self) -> Option<Unit> {
        match self {
            PoolShared::Mpsc(q) => q.pop(),
            PoolShared::Shared(q) => q.pop(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            PoolShared::Mpsc(q) => q.len(),
            PoolShared::Shared(q) => q.len(),
        }
    }
}

/// Public, read-only view of a pool (diagnostics and custom
/// schedulers).
pub struct Pool {
    pub(crate) shared: std::sync::Arc<PoolShared>,
}

impl Pool {
    /// Number of queued unit hints (racy; stale entries included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the pool currently appears empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("len", &self.len()).finish()
    }
}
