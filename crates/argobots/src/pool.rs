//! Work-unit pools and pool topology policies.

use std::sync::{Arc, OnceLock};

use lwt_sched::{Injector, ParkGroup, SharedQueue};

use crate::unit::Unit;

/// How pools map onto execution streams.
///
/// The paper evaluates both layouts and always selects the private one
/// for Argobots ("Argobots with one private queue for each Execution
/// Stream … were always chosen", §IX-E); the shared layout exists for
/// the `ablation_pools` bench that quantifies why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// One pool per stream; creators dispatch round-robin into the
    /// target stream's pool. Pops never contend across streams.
    #[default]
    PrivatePerStream,
    /// One pool shared by every stream; all pops contend on its lock.
    SharedSingle,
}

/// The queue behind a pool.
///
/// A *private* pool is a lock-free MPSC [`Injector`]: any creator (the
/// main thread, or any ULT on another stream) may push, but only the
/// owning stream consumes — exactly `ABT_POOL_ACCESS_MPSC`, with no
/// lock on either path. The *shared* pool keeps the mutex-protected
/// FIFO: every stream pops from it, and the lock they contend on is
/// precisely what the `ablation_pools` bench quantifies.
enum PoolQueue {
    /// Lock-free MPSC pool for the private-per-stream layout.
    Mpsc(Injector<Unit>),
    /// Mutex-protected MPMC pool for the shared-single layout.
    Shared(SharedQueue<Unit>),
}

/// Internal pool representation: the queue plus the wake hook every
/// push fires. Routing the notify through the pool covers *all* push
/// sites at once — creation dispatch, yield requeues, and the
/// post-switch protocol — so no producer can forget to wake a parked
/// consumer.
pub(crate) struct PoolShared {
    queue: PoolQueue,
    /// Installed once at registration: the runtime's park group plus
    /// the owning stream (`None` for the shared pool, where any stream
    /// may consume and the scanning wake-one applies). Pushes before
    /// installation skip the wake — at that point no stream has had a
    /// chance to park.
    waker: OnceLock<(Arc<ParkGroup>, Option<usize>)>,
}

impl PoolShared {
    /// Lock-free MPSC pool (private-per-stream layout).
    pub(crate) fn new() -> Self {
        PoolShared {
            queue: PoolQueue::Mpsc(Injector::new()),
            waker: OnceLock::new(),
        }
    }

    /// Lock-based MPMC pool (shared-single layout).
    pub(crate) fn new_shared() -> Self {
        PoolShared {
            queue: PoolQueue::Shared(SharedQueue::new()),
            waker: OnceLock::new(),
        }
    }

    /// Install the wake hook (idempotent; first install wins).
    /// `owner` is the consuming stream for MPSC pools — only its
    /// parker is worth waking, exactly like a Converse processor
    /// queue — and `None` for the shared pool.
    pub(crate) fn set_waker(&self, park: Arc<ParkGroup>, owner: Option<usize>) {
        let _ = self.waker.set((park, owner));
    }

    pub(crate) fn push(&self, unit: Unit) {
        match &self.queue {
            PoolQueue::Mpsc(q) => q.push(unit),
            PoolQueue::Shared(q) => q.push(unit),
        }
        // Push first, then wake (see ParkGroup docs for why this order
        // prevents lost wakes).
        if let Some((park, owner)) = self.waker.get() {
            match owner {
                Some(stream) => park.notify_worker(*stream),
                None => park.notify(),
            }
        }
    }

    pub(crate) fn pop(&self) -> Option<Unit> {
        match &self.queue {
            PoolQueue::Mpsc(q) => q.pop(),
            PoolQueue::Shared(q) => q.pop(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match &self.queue {
            PoolQueue::Mpsc(q) => q.len(),
            PoolQueue::Shared(q) => q.len(),
        }
    }
}

/// Public, read-only view of a pool (diagnostics and custom
/// schedulers).
pub struct Pool {
    pub(crate) shared: std::sync::Arc<PoolShared>,
}

impl Pool {
    /// Number of queued unit hints (racy; stale entries included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the pool currently appears empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("len", &self.len()).finish()
    }
}
