//! Property tests for the fiber stack cache: any interleaving of
//! acquires, uses and releases over mixed size classes must only ever
//! hand out canary-intact, correctly-sized, correctly-aligned stacks.

use std::sync::Mutex;

use lwt_check::{check, prop_assert, prop_assert_eq, range, vec_of};
use lwt_fiber::{cache, CachedStack, StackSize};

// The cache (and its capacity knob) is process-global; serialize the
// tests in this file so one run's purge can't race another's reuse
// expectations.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Size classes deliberately disjoint from every other test in the
/// workspace, so concurrent test binaries can't cross-pollute bins.
const CLASSES: [StackSize; 3] = [
    StackSize(40 * 1024),
    StackSize(72 * 1024),
    StackSize(136 * 1024),
];

/// Scribble over the usable region of a stack — everything a fiber
/// would dirty — without touching the low-end canary words. Reuse must
/// survive arbitrary prior contents.
fn dirty(stack: &CachedStack) {
    let size = stack.size();
    // The canary occupies a few words at the very bottom; staying in
    // the top half clears it by a wide margin.
    let start = size / 2;
    unsafe {
        let p = stack.base().add(start);
        p.write_bytes(0xA5, size - start);
    }
}

#[test]
fn any_acquire_use_release_interleaving_hands_out_sound_stacks() {
    let _s = serial();
    cache::purge();
    // Encoded op stream: 0..3 ⇒ acquire class i, 3..6 ⇒ acquire class
    // i-3 and dirty it, 6.. ⇒ release the oldest held stack.
    check(
        "stack cache interleavings",
        48,
        vec_of(range(0u8..9), 1..120),
        |ops| {
            let mut held: Vec<(CachedStack, usize)> = Vec::new();
            for &op in ops {
                match op {
                    0..=5 => {
                        let class = (op as usize) % CLASSES.len();
                        let want = CLASSES[class].bytes();
                        let stack = cache::acquire(CLASSES[class]);
                        prop_assert!(
                            stack.canary_intact(),
                            "cache handed out a stack with a torn canary"
                        );
                        prop_assert_eq!(stack.size(), want);
                        prop_assert_eq!(
                            stack.top() as usize % 16,
                            0,
                            "stack top must stay 16-byte aligned for the sysv64 switch"
                        );
                        if op >= 3 {
                            dirty(&stack);
                        }
                        held.push((stack, want));
                    }
                    _ => {
                        if !held.is_empty() {
                            held.remove(0); // drop ⇒ release to cache
                        }
                    }
                }
            }
            // Drain: everything still held must be sound on the way out.
            for (stack, want) in &held {
                prop_assert!(stack.canary_intact());
                prop_assert_eq!(stack.size(), *want);
            }
            Ok(())
        },
    );
    cache::purge();
}

#[test]
fn steady_state_reuse_recycles_rather_than_allocates() {
    let _s = serial();
    cache::purge();
    check(
        "stack cache steady state",
        24,
        range(1usize..24),
        |&live| {
            // Warm up: `live` concurrent stacks of one class.
            let warm: Vec<_> = (0..live).map(|_| cache::acquire(CLASSES[1])).collect();
            let bases: Vec<_> = warm.iter().map(|s| s.base()).collect();
            drop(warm);
            // Steady state at the same concurrency must be served
            // entirely from the free-list: same allocations, reused.
            let again: Vec<_> = (0..live).map(|_| cache::acquire(CLASSES[1])).collect();
            for stack in &again {
                prop_assert!(stack.canary_intact());
                prop_assert!(
                    bases.contains(&stack.base()),
                    "steady-state acquire allocated instead of recycling"
                );
            }
            Ok(())
        },
    );
    cache::purge();
}
