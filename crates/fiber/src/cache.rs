//! Recycled fiber stacks: a per-thread free-list with a global
//! overflow pool.
//!
//! Allocating a fresh 64 KiB [`Stack`] for every ULT is the single
//! largest cost on the spawn path — the real LWT libraries the
//! workspace reproduces (Argobots, Qthreads, MassiveThreads) all keep
//! per-worker stack caches for exactly this reason. This module gives
//! the workspace the same fast path:
//!
//! * [`acquire`] first tries the calling thread's free-list, then the
//!   global overflow pool, and only then allocates. Steady-state spawn
//!   performs **zero heap allocation** for the stack.
//! * [`CachedStack`] (the handle `acquire` returns) sends its stack
//!   back to the cache on drop, wherever that drop happens — a stack
//!   released on a thread that never spawns overflows into the global
//!   pool, where spawning workers pick it up.
//! * Every reused stack has its canary words re-verified before it is
//!   handed out; a torn canary means some earlier fiber overflowed,
//!   and [`acquire`] panics rather than propagate the corruption.
//!
//! Free-lists are keyed by the stack's allocated byte size (the
//! canonical [`StackSize::bytes`] value), so mixed-size workloads
//! never hand a small stack to a request for a big one.
//!
//! ## Sizing
//!
//! The per-thread free-list keeps at most [`capacity`] stacks per
//! size class (default [`DEFAULT_CAPACITY`]); the global pool keeps
//! `capacity() * 8` per size class. Beyond that, released stacks are
//! freed. Override with the `LWT_STACK_CACHE_CAP` environment
//! variable or programmatically with [`set_capacity`]; `0` disables
//! caching entirely (every acquire allocates, every release frees).
//!
//! ## Metrics
//!
//! [`acquire`] increments `stack_cache_hits` / `stack_cache_misses`
//! in [`lwt_metrics::registry::COUNTERS`], so benches and tests can
//! read the steady-state hit rate straight off a snapshot.

use std::cell::RefCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};

use lwt_metrics::registry::COUNTERS;

use crate::sysapi::{Mutex, MutexGuard};

use crate::stack::{Stack, StackSize};

/// Default per-thread free-list capacity, per stack-size class.
pub const DEFAULT_CAPACITY: usize = 64;

/// Global pool holds `capacity() * GLOBAL_FACTOR` stacks per class.
const GLOBAL_FACTOR: usize = 8;

const CAP_UNSET: usize = usize::MAX;
static CAP: AtomicUsize = AtomicUsize::new(CAP_UNSET);

/// Current per-thread capacity per size class. Resolved from
/// `LWT_STACK_CACHE_CAP` on first use; `0` means caching is disabled.
#[must_use]
pub fn capacity() -> usize {
    match CAP.load(Ordering::Relaxed) {
        CAP_UNSET => init_capacity_from_env(),
        cap => cap,
    }
}

#[cold]
fn init_capacity_from_env() -> usize {
    let cap = std::env::var("LWT_STACK_CACHE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_CAPACITY)
        .min(CAP_UNSET - 1);
    // Lose gracefully to a concurrent `set_capacity`.
    let _ = CAP.compare_exchange(CAP_UNSET, cap, Ordering::Relaxed, Ordering::Relaxed);
    CAP.load(Ordering::Relaxed)
}

/// Set the per-thread capacity per size class (overrides
/// `LWT_STACK_CACHE_CAP`). `0` disables caching. Applies to stacks
/// released after the call; already-cached stacks stay cached.
pub fn set_capacity(cap: usize) {
    CAP.store(cap.min(CAP_UNSET - 1), Ordering::Relaxed);
}

/// Size-class bins: `(allocated_bytes, stacks)`. Workloads use one or
/// two stack sizes, so a linear scan beats any map here.
type Bins = Vec<(usize, Vec<Stack>)>;

fn bin_pop(bins: &mut Bins, bytes: usize) -> Option<Stack> {
    bins.iter_mut().find(|(b, _)| *b == bytes)?.1.pop()
}

/// Push into a bin unless it already holds `cap` stacks; returns the
/// stack back on overflow.
fn bin_push(bins: &mut Bins, stack: Stack, cap: usize) -> Option<Stack> {
    let bytes = stack.size();
    match bins.iter_mut().find(|(b, _)| *b == bytes) {
        Some((_, list)) if list.len() >= cap => Some(stack),
        Some((_, list)) => {
            list.push(stack);
            None
        }
        None => {
            bins.push((bytes, vec![stack]));
            None
        }
    }
}

static GLOBAL: Mutex<Bins> = Mutex::new(Vec::new());

fn global_lock() -> MutexGuard<'static, Bins> {
    GLOBAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Local free-lists; the wrapper's `Drop` donates survivors to the
/// global pool when the thread exits, so a short-lived worker's warm
/// stacks outlive it.
struct LocalBins(RefCell<Bins>);

impl Drop for LocalBins {
    fn drop(&mut self) {
        let cap = capacity().saturating_mul(GLOBAL_FACTOR);
        let mut global = global_lock();
        for (_, list) in self.0.borrow_mut().drain(..) {
            for stack in list {
                // Overflow past the global cap frees the stack here.
                let _ = bin_push(&mut global, stack, cap);
            }
        }
    }
}

thread_local! {
    static LOCAL: LocalBins = LocalBins(RefCell::new(Vec::new()));
}

/// A [`Stack`] on loan from the cache. Dereferences to the stack;
/// dropping it returns the stack to the cache (or frees it when the
/// cache is full or disabled).
#[derive(Debug)]
pub struct CachedStack {
    inner: Option<Stack>,
}

impl Deref for CachedStack {
    type Target = Stack;

    fn deref(&self) -> &Stack {
        self.inner.as_ref().expect("stack present until drop")
    }
}

impl Drop for CachedStack {
    fn drop(&mut self) {
        if let Some(stack) = self.inner.take() {
            release(stack);
        }
    }
}

/// Get a stack of (at least) `size`: recycled when the cache has one,
/// freshly allocated otherwise.
///
/// Chaos decision point: `StackCacheMiss` skips the recycle lookup so
/// the acquire degrades to the fresh-allocation path — the exact
/// fallback a cache-exhausted or allocation-starved run takes. Spawns
/// get slower, never fail; the miss is counted like any real one.
///
/// # Panics
///
/// If a recycled stack's canary words were overwritten — a fiber that
/// ran on it previously overflowed, and reusing the allocation would
/// propagate silent corruption.
#[must_use]
pub fn acquire(size: StackSize) -> CachedStack {
    let bytes = size.bytes();
    if capacity() > 0 && !lwt_chaos::should_inject(lwt_chaos::FaultSite::StackCacheMiss) {
        // try_with: acquire during TLS teardown falls through to the
        // global pool instead of panicking.
        let local = LOCAL
            .try_with(|l| bin_pop(&mut l.0.borrow_mut(), bytes))
            .unwrap_or_default();
        if let Some(stack) = local.or_else(|| bin_pop(&mut global_lock(), bytes)) {
            let stack = verified(stack);
            COUNTERS.stack_cache_hits.inc();
            return CachedStack { inner: Some(stack) };
        }
    }
    COUNTERS.stack_cache_misses.inc();
    CachedStack {
        inner: Some(Stack::new(size)),
    }
}

fn verified(stack: Stack) -> Stack {
    if stack.canary_intact() {
        return stack;
    }
    // Don't run Stack's destructor (its own canary assertion would
    // double-panic); the allocation is corrupt, leak it.
    std::mem::forget(stack);
    panic!(
        "lwt-fiber stack cache: recycled stack's canary was \
         overwritten — a fiber previously run on it overflowed"
    );
}

/// Return a stack to the cache: the current thread's free-list first,
/// the global pool second, freed if both are at capacity (or the
/// cache is disabled). Stacks with torn canaries are never cached.
fn release(stack: Stack) {
    let cap = capacity();
    if cap == 0 || !stack.canary_intact() {
        // A torn canary drops through to Stack's destructor, which
        // reports it (debug builds) and frees the allocation.
        return;
    }
    let overflow = LOCAL
        .try_with(|l| bin_push(&mut l.0.borrow_mut(), stack, cap))
        // TLS already torn down: route straight to the global pool.
        .unwrap_or_else(|_| None);
    let Some(stack) = overflow else { return };
    let _ = bin_push(&mut global_lock(), stack, cap.saturating_mul(GLOBAL_FACTOR));
}

/// Free every cached stack (this thread's free-list and the global
/// pool). For tests that need a cold cache.
pub fn purge() {
    let _ = LOCAL.try_with(|l| l.0.borrow_mut().clear());
    global_lock().clear();
}

/// Number of stacks currently cached on this thread (all size
/// classes). Diagnostic.
#[must_use]
pub fn local_len() -> usize {
    LOCAL
        .try_with(|l| l.0.borrow().iter().map(|(_, v)| v.len()).sum())
        .unwrap_or(0)
}

/// Number of stacks currently in the global overflow pool (all size
/// classes). Diagnostic.
#[must_use]
pub fn global_len() -> usize {
    global_lock().iter().map(|(_, v)| v.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cache (and its capacity knob) is process-global; these tests
    // serialize against each other so one test's `set_capacity(0)` or
    // `purge` can't invalidate another's acquire/release expectations.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn acquire_release_round_trips_are_reused() {
        let _s = serial();
        let size = StackSize(512 * 1024); // distinct class, test-only
        let a = acquire(size);
        let base = a.base();
        drop(a);
        let b = acquire(size);
        assert_eq!(b.base(), base, "released stack must be recycled LIFO");
        assert!(b.canary_intact());
    }

    #[test]
    fn sizes_do_not_cross_classes() {
        let _s = serial();
        let small = acquire(StackSize(256 * 1024));
        let small_base = small.base();
        drop(small);
        let big = acquire(StackSize(1024 * 1024));
        assert_ne!(big.base(), small_base);
        assert!(big.size() >= 1024 * 1024);
    }

    #[test]
    fn purge_empties_this_thread_and_global() {
        let _s = serial();
        drop(acquire(StackSize(128 * 1024)));
        assert!(local_len() > 0 || global_len() > 0);
        purge();
        assert_eq!(local_len(), 0);
        assert_eq!(global_len(), 0);
    }

    #[test]
    fn cross_thread_release_lands_in_a_pool() {
        let _s = serial();
        purge();
        let size = StackSize(768 * 1024);
        let stack = acquire(size);
        std::thread::spawn(move || drop(stack)).join().unwrap();
        // The spawned thread's free-list donated to the global pool on
        // exit, so the stack is reachable from here.
        let again = acquire(size);
        assert!(again.canary_intact());
        assert_eq!(again.size(), size.bytes());
    }

    #[test]
    fn disabled_cache_always_allocates() {
        let _s = serial();
        let before = capacity();
        set_capacity(0);
        let size = StackSize(384 * 1024);
        drop(acquire(size));
        assert_eq!(local_len(), 0, "disabled cache must not retain stacks");
        set_capacity(before);
    }
}
