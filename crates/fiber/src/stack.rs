//! Heap-allocated fiber stacks.
//!
//! Each stack is a single aligned allocation. The top (highest address)
//! is 16-byte aligned as the System-V ABI requires; the bottom carries a
//! canary pattern so overflow — which cannot trap without guard pages —
//! is at least *detectable* after the fact via [`Stack::canary_intact`]
//! and is checked in debug builds when the stack is dropped.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// Stack alignment. 16 bytes satisfies the System-V ABI; we use a full
/// cache line to keep unrelated stacks from false-sharing their edges.
const STACK_ALIGN: usize = 64;

/// Number of canary words written at the low end of every stack.
const CANARY_WORDS: usize = 4;

/// Pattern for canary words. Chosen to be an improbable stack value and
/// an invalid (non-canonical) pointer on x86_64.
const CANARY: u64 = 0xDEAD_BEEF_CAFE_F1BE;

/// Requested size of a fiber stack, in bytes.
///
/// The default (64 KiB) matches the default ULT stack size of the C LWT
/// libraries the paper evaluates (Qthreads and Argobots both default to
/// tens of KiB). Sizes are rounded up to the alignment quantum.
///
/// Stack overflow on a fiber stack is undefined behaviour: there are no
/// guard pages (see crate docs). Keep deep recursion on OS threads or
/// request a larger size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StackSize(pub usize);

impl StackSize {
    /// Smallest permitted stack: room for the bootstrap frame, the
    /// canary and a little real work.
    pub const MIN: StackSize = StackSize(4 * 1024);

    /// The workspace-wide default fiber stack size (64 KiB).
    pub const DEFAULT: StackSize = StackSize(64 * 1024);

    /// Size in bytes after clamping to [`StackSize::MIN`] and rounding
    /// up to the alignment quantum.
    #[must_use]
    pub fn bytes(self) -> usize {
        let clamped = self.0.max(Self::MIN.0);
        (clamped + STACK_ALIGN - 1) & !(STACK_ALIGN - 1)
    }
}

impl Default for StackSize {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl From<usize> for StackSize {
    fn from(bytes: usize) -> Self {
        StackSize(bytes)
    }
}

/// An owned fiber stack.
///
/// The allocation is released on drop. Dropping a stack whose fiber is
/// still suspended on it is a logic error in the runtime above; this
/// type cannot detect that, but the canary check catches low-end
/// overwrites.
pub struct Stack {
    base: NonNull<u8>,
    layout: Layout,
}

// SAFETY: a Stack is a plain allocation; ownership may move between
// threads (ULT migration), and shared references only expose reads of
// immutable metadata plus the canary words, which are written once at
// construction.
unsafe impl Send for Stack {}
// SAFETY: see above — &Stack only permits reads.
unsafe impl Sync for Stack {}

impl Stack {
    /// Allocate a stack of (at least) the requested size.
    ///
    /// # Panics
    ///
    /// Panics via [`handle_alloc_error`] if the allocator fails.
    #[must_use]
    pub fn new(size: StackSize) -> Self {
        let bytes = size.bytes();
        let layout = Layout::from_size_align(bytes, STACK_ALIGN).expect("valid stack layout");
        // SAFETY: layout has non-zero size (MIN is 4 KiB).
        let raw = unsafe { alloc(layout) };
        let Some(base) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        let stack = Stack { base, layout };
        // SAFETY: base..base+bytes is our fresh allocation; the canary
        // words fit because bytes >= MIN >> CANARY_WORDS * 8.
        unsafe {
            let words = stack.base.as_ptr().cast::<u64>();
            for i in 0..CANARY_WORDS {
                words.add(i).write(CANARY);
            }
        }
        stack
    }

    /// Highest usable address of the stack; 16-byte aligned.
    ///
    /// This is one-past-the-end of the allocation: valid for pointer
    /// arithmetic, never for a direct dereference.
    #[must_use]
    pub fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end pointer of the allocation.
        unsafe { self.base.as_ptr().add(self.layout.size()) }
    }

    /// Lowest address of the stack allocation.
    #[must_use]
    pub fn base(&self) -> *mut u8 {
        self.base.as_ptr()
    }

    /// Usable size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.layout.size()
    }

    /// Whether the low-end canary pattern is still intact.
    ///
    /// A `false` return means some execution on this stack grew past its
    /// low end — i.e. a (possibly silent) stack overflow occurred.
    #[must_use]
    pub fn canary_intact(&self) -> bool {
        // SAFETY: the canary words are inside our allocation.
        unsafe {
            let words = self.base.as_ptr().cast::<u64>();
            (0..CANARY_WORDS).all(|i| words.add(i).read() == CANARY)
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        debug_assert!(
            self.canary_intact(),
            "fiber stack canary destroyed: a fiber overflowed its {}-byte stack",
            self.layout.size()
        );
        // SAFETY: base/layout come from the matching `alloc` in `new`.
        unsafe { dealloc(self.base.as_ptr(), self.layout) };
    }
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field("base", &self.base)
            .field("size", &self.layout.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_64k() {
        assert_eq!(StackSize::default().bytes(), 64 * 1024);
    }

    #[test]
    fn sizes_round_up_and_clamp() {
        assert_eq!(StackSize(0).bytes(), StackSize::MIN.bytes());
        assert_eq!(StackSize(1).bytes(), StackSize::MIN.bytes());
        let odd = StackSize(64 * 1024 + 1);
        assert_eq!(odd.bytes() % STACK_ALIGN, 0);
        assert!(odd.bytes() > 64 * 1024);
    }

    #[test]
    fn top_is_aligned_and_above_base() {
        let s = Stack::new(StackSize::default());
        assert_eq!(s.top() as usize % 16, 0);
        assert_eq!(s.top() as usize - s.base() as usize, s.size());
    }

    #[test]
    fn canary_detects_overwrite() {
        let s = Stack::new(StackSize::MIN);
        assert!(s.canary_intact());
        // SAFETY: writing inside our own allocation.
        unsafe { s.base().cast::<u64>().write(0) };
        assert!(!s.canary_intact());
        // Restore so the debug_assert in Drop stays quiet.
        // SAFETY: as above.
        unsafe { s.base().cast::<u64>().write(CANARY) };
    }

    #[test]
    fn stacks_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Stack>();
    }
}
