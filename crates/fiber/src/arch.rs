//! x86_64 System-V context switch.
//!
//! A suspended context is identified by its stack pointer. The stack at
//! that pointer holds a fixed-layout frame, lowest address first:
//!
//! ```text
//! rsp + 0x00   mxcsr (u32)            SSE control/status word
//! rsp + 0x04   x87 control word (u16) + 2 bytes padding
//! rsp + 0x08   r15
//! rsp + 0x10   r14
//! rsp + 0x18   r13
//! rsp + 0x20   r12
//! rsp + 0x28   rbx
//! rsp + 0x30   rbp
//! rsp + 0x38   return address (resume point)
//! ```
//!
//! Only callee-saved state is stored: the switch is a normal `sysv64`
//! call from the compiler's point of view, so caller-saved registers are
//! already dead at the call site. `mxcsr` and the x87 control word are
//! callee-saved per the psABI and must travel with the context — a fiber
//! that changes the rounding mode must not leak it into its scheduler.

use core::arch::naked_asm;

/// Size in bytes of the saved-context frame described in the module docs.
pub(crate) const FRAME_SIZE: usize = 0x40;

/// Byte offset of the resume (return) address within the frame.
pub(crate) const FRAME_RET_OFFSET: usize = 0x38;

/// Byte offset of the `r12` slot (carries the trampoline data pointer).
pub(crate) const FRAME_R12_OFFSET: usize = 0x20;

/// Byte offset of the `r13` slot (carries the entry-function pointer).
pub(crate) const FRAME_R13_OFFSET: usize = 0x18;

/// Default `mxcsr` value for a fresh context: all exceptions masked,
/// round-to-nearest — the value Linux hands a fresh thread.
pub(crate) const FRESH_MXCSR: u32 = 0x1F80;

/// Default x87 control word for a fresh context (64-bit precision, all
/// exceptions masked) — the value Linux hands a fresh thread.
pub(crate) const FRESH_FPUCW: u16 = 0x037F;

/// Save the current context and jump to another one.
///
/// `save` receives the stack pointer under which the current context's
/// frame was written; `target` must point at a frame with the layout
/// above (either written by a previous `raw_switch` or synthesized by
/// [`crate::ctx::init_context`]).
///
/// # Safety
///
/// `target` must be a valid suspended-context stack pointer whose stack
/// is live and not executing on any other OS thread. `save` must be
/// valid for a write.
#[unsafe(naked)]
pub(crate) unsafe extern "sysv64" fn raw_switch(save: *mut *mut u8, target: *mut u8) {
    // rdi = save, rsi = target.
    naked_asm!(
        // Build the frame on the current stack.
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        // Publish the suspended context and adopt the target stack.
        "mov [rdi], rsp",
        "mov rsp, rsi",
        // Restore the target frame.
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// Jump to another context without saving the current one.
///
/// Used when a fiber finishes: its stack is about to be reclaimed, so
/// there is nothing worth saving. Never returns.
///
/// # Safety
///
/// Same requirements on `target` as [`raw_switch`]; additionally the
/// caller's own stack must never be resumed again.
#[unsafe(naked)]
pub(crate) unsafe extern "sysv64" fn raw_switch_final(target: *mut u8) -> ! {
    // rdi = target.
    naked_asm!(
        "mov rsp, rdi",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First instructions executed on a fresh fiber stack.
///
/// [`crate::ctx::init_context`] synthesizes a frame whose return address
/// points here and whose `r12`/`r13` slots hold the user data pointer and
/// the entry function. On entry `rsp` is congruent to 0 mod 16 (the
/// bootstrap frame is laid out to arrange this), which is exactly the
/// ABI-required alignment *at a call site* — so the `call` below gives
/// the entry function a correctly aligned frame.
#[unsafe(naked)]
pub(crate) unsafe extern "sysv64" fn fiber_trampoline() {
    naked_asm!(
        "mov rdi, r12",
        "call r13",
        // The entry function is `-> !`; reaching this point is a bug.
        "ud2",
    )
}
