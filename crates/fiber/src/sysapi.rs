//! System-primitive facade (the loom pattern).
//!
//! The stack cache's global overflow pool ([`crate::cache`]) takes its
//! `Mutex` from this module. Under a normal build the aliases resolve
//! to `std::sync` and compile away; under `RUSTFLAGS="--cfg lwt_model"`
//! they resolve to the `lwt-model` shims, so the real local-pool →
//! global-pool handoff (including the TLS-destructor donation path)
//! runs inside the deterministic model checker
//! (`crates/model/tests/`).

#[cfg(not(lwt_model))]
pub(crate) use std::sync::{Mutex, MutexGuard};

#[cfg(lwt_model)]
pub(crate) use lwt_model::sync::{Mutex, MutexGuard};
