//! # lwt-fiber — user-level execution contexts for lightweight threads
//!
//! This crate is the lowest substrate of the `lwt` workspace: it provides
//! the raw machinery every lightweight-thread (LWT) runtime in the
//! workspace is built on — heap-allocated stacks, a System-V x86_64
//! context switch written with stable `naked_asm!`, and a small safe
//! coroutine wrapper ([`Fiber`]) used directly by tests and simple
//! clients.
//!
//! The design mirrors what C LWT libraries (Argobots, Qthreads,
//! MassiveThreads, Converse Threads) do underneath: a *context* is
//! nothing but a saved stack pointer; switching contexts saves the
//! callee-saved register file plus the FP control words onto the current
//! stack, stores the resulting `rsp` into a caller-provided slot, and
//! restores the same frame layout from the target `rsp`.
//!
//! ## Layering
//!
//! * [`stack::Stack`] — an aligned heap allocation with a canary word at
//!   the low end (there are no guard pages: the workspace is `no-libc`,
//!   so `mmap`/`mprotect` are unavailable; see `DESIGN.md` §7).
//! * [`cache`] — recycled-stack free-lists ([`cache::acquire`] /
//!   [`CachedStack`]) so steady-state ULT spawn never touches the heap
//!   allocator; tunable with `LWT_STACK_CACHE_CAP`.
//! * [`ctx`] — [`ctx::RawContext`], [`ctx::switch`],
//!   [`ctx::switch_final`], and [`ctx::init_context`] for bootstrapping
//!   a new context that enters a trampoline.
//! * [`Fiber`] — a safe asymmetric coroutine (resume / [`yield_now`])
//!   for clients that do not need a full scheduler.
//!
//! Runtimes (the `lwt-argobots`, `lwt-qthreads`, … crates) use the raw
//! [`ctx`] layer directly because they need symmetric ULT→ULT switches
//! (`yield_to`, work-first creation) that an asymmetric coroutine API
//! cannot express.
//!
//! ## Platform support
//!
//! x86_64 only, matching the evaluation platform of the reproduced paper
//! (dual Xeon E5-2699 v3). Other targets fail to compile with an
//! explicit error rather than miscompiling.
//!
//! ## Example
//!
//! ```
//! use lwt_fiber::{Fiber, yield_now, StackSize};
//!
//! let mut fib = Fiber::new(StackSize::default(), || {
//!     for _ in 0..3 {
//!         yield_now();
//!     }
//! });
//! let mut resumes = 0;
//! while !fib.is_finished() {
//!     fib.resume();
//!     resumes += 1;
//! }
//! assert_eq!(resumes, 4); // 3 yields + final completion
//! ```

#![warn(missing_docs)]

#[cfg(not(target_arch = "x86_64"))]
compile_error!(
    "lwt-fiber implements its context switch for x86_64 only (the \
     platform of the reproduced paper); port src/arch.rs to add another \
     architecture"
);

mod arch;
pub mod cache;
pub mod ctx;
mod fiber;
pub mod stack;
mod sysapi;

pub use cache::CachedStack;
pub use ctx::{init_context, switch, switch_final, RawContext};
pub use fiber::{in_fiber, yield_now, Fiber, FiberState};
pub use stack::{Stack, StackSize};
