//! Raw symmetric context switching.
//!
//! This is the layer the runtime crates build on. A [`RawContext`] is a
//! saved stack pointer; [`switch`] suspends the current execution into a
//! caller-provided slot and resumes the target; [`switch_final`] resumes
//! the target without saving (for fiber exit); [`init_context`]
//! synthesizes the very first frame of a fresh fiber so that the first
//! switch into it lands in the entry function.
//!
//! The API is deliberately symmetric: ULT → scheduler, scheduler → ULT,
//! and ULT → ULT (`yield_to`, work-first spawn) are all the same
//! operation, exactly as in Converse Threads' `CthResume` or Argobots'
//! `ABT_thread_yield_to`.

use crate::arch;
use crate::stack::Stack;

/// A suspended execution context: an opaque stack pointer under which a
/// register frame was saved (or synthesized).
///
/// `RawContext` is `Copy` on purpose — it is a *capability to resume*,
/// and runtimes store it inside their own work-unit structures with
/// whatever synchronization they need. Resuming the same context twice,
/// or resuming a context whose stack has been freed, is undefined
/// behaviour; the runtime layers above enforce the at-most-once
/// discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawContext(pub(crate) *mut u8);

// SAFETY: a RawContext is a pointer-sized token. Sending it between OS
// threads is exactly ULT migration; the *runtime* must guarantee the
// stack is not concurrently executed, which is the same contract as
// resuming on a single thread.
unsafe impl Send for RawContext {}

impl RawContext {
    /// A null context, usable as an "empty slot" sentinel.
    #[must_use]
    pub const fn null() -> Self {
        RawContext(std::ptr::null_mut())
    }

    /// Whether this is the null sentinel.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0.is_null()
    }
}

impl Default for RawContext {
    fn default() -> Self {
        Self::null()
    }
}

/// Entry function signature for a fresh context.
///
/// Receives the `data` pointer given to [`init_context`] and must never
/// return: it ends by calling [`switch_final`] (or [`switch`]) into
/// another context.
pub type EntryFn = unsafe extern "sysv64" fn(*mut u8) -> !;

/// Synthesize the initial context of a new fiber on `stack`.
///
/// The first [`switch`] into the returned context executes
/// `entry(data)` on the fiber stack. A zero return-address terminator is
/// planted above the bootstrap frame so unwinders and backtraces stop
/// cleanly.
///
/// # Safety
///
/// * `stack` must outlive every execution of the context.
/// * `entry` must never return (it must switch away instead).
/// * `data` must be valid for whatever `entry` does with it.
#[must_use]
pub unsafe fn init_context(stack: &Stack, entry: EntryFn, data: *mut u8) -> RawContext {
    let top = stack.top();
    debug_assert_eq!(top as usize % 16, 0, "stack top must be 16-aligned");

    // Layout, from the top of the stack downward:
    //   top - 0x10: 0                  backtrace terminator
    //   top - 0x18: trampoline         `ret` target of the first switch
    //   top - 0x20 .. top - 0x48:      rbp rbx r12 r13 r14 r15
    //   top - 0x50: mxcsr | fpucw<<32  FP control words
    // yielding an initial rsp of top - 0x50. After the first switch's
    // `ret` into the trampoline, rsp == top - 0x10 ≡ 0 (mod 16): the
    // ABI-required alignment at a call site, so the trampoline's bare
    // `call` hands the entry function a correctly aligned frame.
    let frame = top.sub(0x10 + arch::FRAME_SIZE);

    let write_u64 = |off: usize, v: u64| {
        // SAFETY (closure-local): frame..top is inside the stack
        // allocation; offsets below stay within FRAME_SIZE + 0x10.
        unsafe { frame.add(off).cast::<u64>().write(v) };
    };

    write_u64(
        0,
        u64::from(arch::FRESH_MXCSR) | (u64::from(arch::FRESH_FPUCW) << 32),
    );
    write_u64(0x08, 0); // r15
    write_u64(0x10, 0); // r14
    write_u64(arch::FRAME_R13_OFFSET, entry as usize as u64);
    write_u64(arch::FRAME_R12_OFFSET, data as u64);
    write_u64(0x28, 0); // rbx
    write_u64(0x30, 0); // rbp
    write_u64(arch::FRAME_RET_OFFSET, arch::fiber_trampoline as *const () as usize as u64);
    write_u64(arch::FRAME_SIZE, 0); // backtrace terminator

    RawContext(frame)
}

/// Suspend the current execution into `save` and resume `target`.
///
/// When some other context later switches back, this call returns
/// normally. This single primitive expresses every transfer the LWT
/// runtimes need.
///
/// # Safety
///
/// * `target` must be a valid, suspended, not-concurrently-executing
///   context (from [`init_context`] or a previous [`switch`]), resumed
///   at most once.
/// * The current stack must remain allocated until the saved context is
///   resumed or abandoned.
#[inline]
pub unsafe fn switch(save: &mut RawContext, target: RawContext) {
    debug_assert!(!target.is_null(), "switch to null context");
    // SAFETY: forwarded contract.
    unsafe { arch::raw_switch(&mut save.0, target.0) }
}

/// Resume `target`, abandoning the current context forever.
///
/// The current stack may be freed by other code as soon as the target
/// observes whatever completion protocol the runtime uses — but note the
/// hazard documented in `DESIGN.md`: the *running* fiber must not be the
/// one to publish "my stack is free" before this call, because it still
/// executes a few instructions on that stack. Runtimes publish
/// completion from the scheduler context after regaining control.
///
/// # Safety
///
/// Same as [`switch`] for `target`; additionally nothing may ever
/// resume the abandoned context.
#[inline]
pub unsafe fn switch_final(target: RawContext) -> ! {
    debug_assert!(!target.is_null(), "switch_final to null context");
    // SAFETY: forwarded contract.
    unsafe { arch::raw_switch_final(target.0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackSize;
    use std::cell::Cell;

    thread_local! {
        // Pointer to the slot where the "other side" context is saved.
        static MAIN_SLOT: Cell<*mut RawContext> = const { Cell::new(std::ptr::null_mut()) };
        static FIBER_SLOT: Cell<*mut RawContext> = const { Cell::new(std::ptr::null_mut()) };
        static COUNTER: Cell<u64> = const { Cell::new(0) };
    }

    fn main_ctx() -> RawContext {
        // SAFETY (test protocol): MAIN_SLOT points at the caller's live
        // RawContext, which `raw_switch` populated before transferring
        // control to the fiber.
        unsafe { *MAIN_SLOT.with(Cell::get) }
    }

    unsafe extern "sysv64" fn one_shot(data: *mut u8) -> ! {
        COUNTER.with(|c| c.set(data as u64));
        // SAFETY: resumes the suspended main context exactly once.
        unsafe { switch_final(main_ctx()) }
    }

    #[test]
    fn bootstrap_enters_entry_with_data() {
        let stack = Stack::new(StackSize::default());
        COUNTER.with(|c| c.set(0));
        // SAFETY: one_shot never returns; data is an integer token.
        let ctx = unsafe { init_context(&stack, one_shot, 0x42 as *mut u8) };
        let mut main = RawContext::null();
        MAIN_SLOT.with(|s| s.set(&mut main));
        // SAFETY: ctx is a fresh bootstrap context; the fiber resumes
        // `main` via switch_final.
        unsafe { switch(&mut main, ctx) };
        assert_eq!(COUNTER.with(Cell::get), 0x42);
        assert!(stack.canary_intact());
    }

    unsafe extern "sysv64" fn yielder(data: *mut u8) -> ! {
        let n = data as usize;
        let mut me = RawContext::null();
        FIBER_SLOT.with(|s| s.set(&mut me));
        for _ in 0..n {
            COUNTER.with(|c| c.set(c.get() + 1));
            // SAFETY: main is suspended in its matching switch; `me`
            // lives on this (live) fiber stack until resumed.
            unsafe { switch(&mut me, main_ctx()) };
        }
        // SAFETY: final exit to the suspended main context.
        unsafe { switch_final(main_ctx()) }
    }

    #[test]
    fn repeated_round_trips() {
        const N: u64 = 5;
        let stack = Stack::new(StackSize::default());
        COUNTER.with(|c| c.set(0));
        // SAFETY: yielder never returns.
        let ctx = unsafe { init_context(&stack, yielder, N as usize as *mut u8) };
        let mut main = RawContext::null();
        MAIN_SLOT.with(|s| s.set(&mut main));
        // SAFETY: fresh context; yielder suspends back into `main`.
        unsafe { switch(&mut main, ctx) };
        for i in 1..=N {
            assert_eq!(COUNTER.with(Cell::get), i);
            // SAFETY: FIBER_SLOT points at the fiber's saved context,
            // populated by its switch back to us.
            let fiber = unsafe { *FIBER_SLOT.with(Cell::get) };
            // SAFETY: the fiber is suspended; resuming it at most once.
            unsafe { switch(&mut main, fiber) };
        }
        assert_eq!(COUNTER.with(Cell::get), N);
        assert!(stack.canary_intact());
    }

    unsafe extern "sysv64" fn deep_recursion(data: *mut u8) -> ! {
        fn go(depth: usize) -> u64 {
            // Touch enough locals per frame to exercise the stack.
            let buf = [depth as u64; 8];
            if depth == 0 {
                buf.iter().sum()
            } else {
                go(depth - 1) + buf[0]
            }
        }
        COUNTER.with(|c| c.set(go(data as usize)));
        // SAFETY: resumes the suspended main context.
        unsafe { switch_final(main_ctx()) }
    }

    #[test]
    fn fiber_stack_supports_real_call_frames() {
        let stack = Stack::new(StackSize(256 * 1024));
        COUNTER.with(|c| c.set(0));
        // SAFETY: deep_recursion never returns.
        let ctx = unsafe { init_context(&stack, deep_recursion, 200 as *mut u8) };
        let mut main = RawContext::null();
        MAIN_SLOT.with(|s| s.set(&mut main));
        // SAFETY: fresh context.
        unsafe { switch(&mut main, ctx) };
        // sum over go(200): depths 200..=0 contribute; just check nonzero
        // deterministic value computed on the fiber stack.
        assert_eq!(COUNTER.with(Cell::get), {
            fn go(depth: usize) -> u64 {
                let buf = [depth as u64; 8];
                if depth == 0 {
                    buf.iter().sum()
                } else {
                    go(depth - 1) + buf[0]
                }
            }
            go(200)
        });
        assert!(stack.canary_intact());
    }

    unsafe extern "sysv64" fn float_worker(data: *mut u8) -> ! {
        // Exercise SSE math on the fiber stack; the result must survive
        // the round trips through the control-word save/restore.
        let mut acc = 1.0f64;
        let mut me = RawContext::null();
        FIBER_SLOT.with(|s| s.set(&mut me));
        for i in 1..=(data as usize) {
            acc = acc.mul_add(1.5, i as f64).sqrt();
            COUNTER.with(|c| c.set(acc.to_bits()));
            // SAFETY: standard test protocol, see `yielder`.
            unsafe { switch(&mut me, main_ctx()) };
        }
        // SAFETY: final exit.
        unsafe { switch_final(main_ctx()) }
    }

    #[test]
    fn fp_state_survives_switches() {
        let stack = Stack::new(StackSize::default());
        // SAFETY: float_worker never returns.
        let ctx = unsafe { init_context(&stack, float_worker, 4 as *mut u8) };
        let mut main = RawContext::null();
        MAIN_SLOT.with(|s| s.set(&mut main));
        // Reference computation on the main stack.
        let mut expect = 1.0f64;
        // SAFETY: fresh context.
        unsafe { switch(&mut main, ctx) };
        for i in 1..=4u64 {
            expect = expect.mul_add(1.5, i as f64).sqrt();
            assert_eq!(COUNTER.with(Cell::get), expect.to_bits());
            // SAFETY: fiber suspended in its switch.
            let fiber = unsafe { *FIBER_SLOT.with(Cell::get) };
            // SAFETY: resumed at most once.
            unsafe { switch(&mut main, fiber) };
        }
    }

    #[test]
    fn contexts_migrate_between_os_threads() {
        // Create the fiber context on this thread, run it on another —
        // the essence of ULT migration / work stealing.
        let stack = Stack::new(StackSize::default());
        COUNTER.with(|c| c.set(0));
        // SAFETY: one_shot never returns.
        let ctx = unsafe { init_context(&stack, one_shot, 9 as *mut u8) };
        let handle = std::thread::spawn(move || {
            let mut main = RawContext::null();
            MAIN_SLOT.with(|s| s.set(&mut main));
            // SAFETY: the context was created on another thread but its
            // stack is owned by the moved-in `stack`; nothing else runs it.
            unsafe { switch(&mut main, ctx) };
            let v = COUNTER.with(Cell::get);
            assert!(stack.canary_intact());
            v
        });
        assert_eq!(handle.join().unwrap(), 9);
    }

    #[test]
    fn null_context_basics() {
        assert!(RawContext::null().is_null());
        assert_eq!(RawContext::default(), RawContext::null());
        let stack = Stack::new(StackSize::MIN);
        // SAFETY: context is never switched to in this test.
        let ctx = unsafe { init_context(&stack, one_shot, std::ptr::null_mut()) };
        assert!(!ctx.is_null());
    }
}
