//! A safe asymmetric coroutine on top of the raw context layer.
//!
//! [`Fiber`] is the "hello world" of the crate: resume it from an OS
//! thread (or from another fiber), and inside it call [`yield_now`] to
//! suspend back to the resumer. The LWT runtimes in this workspace use
//! the raw [`crate::ctx`] API instead, because they schedule many ULTs
//! across workers; `Fiber` exists for tests, examples, and light uses.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::ctx::{init_context, switch, switch_final, RawContext};
use crate::stack::{Stack, StackSize};

/// Lifecycle of a [`Fiber`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiberState {
    /// Created, never resumed.
    New,
    /// Suspended inside [`yield_now`], resumable.
    Suspended,
    /// Ran to completion (or panicked); resuming again panics.
    Finished,
}

/// Shared state between a fiber and its resumer. Lives in a `Box` owned
/// by the [`Fiber`] handle; the running fiber holds a raw pointer to it.
struct Payload {
    entry: Option<Box<dyn FnOnce() + Send + 'static>>,
    /// Resumer's suspended context while the fiber runs.
    parent: RawContext,
    /// Fiber's suspended context while the resumer runs.
    fiber_ctx: RawContext,
    finished: bool,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

thread_local! {
    /// Payload of the fiber currently running on this OS thread, if any.
    /// A stack of fibers (fiber resuming fiber) is handled by saving and
    /// restoring the previous value around each resume.
    static CURRENT: Cell<*mut Payload> = const { Cell::new(std::ptr::null_mut()) };
}

/// An asymmetric, unit-valued coroutine with its own stack.
///
/// ```
/// use lwt_fiber::{Fiber, yield_now};
///
/// let mut f = Fiber::with_default_stack(|| {
///     yield_now();
/// });
/// f.resume(); // runs until the yield
/// assert!(!f.is_finished());
/// f.resume(); // runs to completion
/// assert!(f.is_finished());
/// ```
pub struct Fiber {
    stack: Stack,
    payload: Box<Payload>,
    state: FiberState,
}

// SAFETY: the entry closure is `Send`; the stack and payload are owned;
// a suspended fiber may be resumed from any OS thread (ULT migration),
// which is the whole point of the design.
unsafe impl Send for Fiber {}

impl Fiber {
    /// Create a fiber that will run `f` when first resumed.
    #[must_use]
    pub fn new<F>(stack_size: StackSize, f: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        let stack = Stack::new(stack_size);
        let payload = Box::new(Payload {
            entry: Some(Box::new(f)),
            parent: RawContext::null(),
            fiber_ctx: RawContext::null(),
            finished: false,
            panic: None,
        });
        let mut fiber = Fiber {
            stack,
            payload,
            state: FiberState::New,
        };
        // SAFETY: `fiber_entry` never returns; the data pointer targets
        // the boxed payload, which lives as long as the Fiber and is not
        // moved out of its box.
        let ctx = unsafe {
            init_context(
                &fiber.stack,
                fiber_entry,
                (&mut *fiber.payload as *mut Payload).cast(),
            )
        };
        fiber.payload.fiber_ctx = ctx;
        fiber
    }

    /// [`Fiber::new`] with [`StackSize::DEFAULT`].
    #[must_use]
    pub fn with_default_stack<F>(f: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        Self::new(StackSize::DEFAULT, f)
    }

    /// Run the fiber until it yields or finishes.
    ///
    /// # Panics
    ///
    /// Panics if the fiber already finished, and re-raises any panic
    /// that escaped the fiber's entry closure.
    pub fn resume(&mut self) {
        assert!(
            self.state != FiberState::Finished,
            "resumed a finished fiber"
        );
        let payload: *mut Payload = &mut *self.payload;
        let prev = CURRENT.with(|c| c.replace(payload));
        let target = self.payload.fiber_ctx;
        // SAFETY: `target` is either the bootstrap context (New) or the
        // context saved by the fiber's last yield (Suspended); the fiber
        // resumes `parent` before we regain control here.
        unsafe { switch(&mut self.payload.parent, target) };
        CURRENT.with(|c| c.set(prev));
        if self.payload.finished {
            self.state = FiberState::Finished;
            if let Some(p) = self.payload.panic.take() {
                resume_unwind(p);
            }
        } else {
            self.state = FiberState::Suspended;
        }
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> FiberState {
        self.state
    }

    /// Whether the fiber ran to completion.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.state == FiberState::Finished
    }

    /// Whether the stack's overflow canary is still intact.
    #[must_use]
    pub fn stack_canary_intact(&self) -> bool {
        self.stack.canary_intact()
    }
}

impl Drop for Fiber {
    fn drop(&mut self) {
        // Dropping a suspended fiber abandons its stack: destructors of
        // values live on that stack do NOT run (they are unreachable
        // without resuming). The stack memory itself is freed. This
        // matches the behaviour of the C LWT libraries' `*_cancel`.
        if self.state == FiberState::Suspended {
            debug_assert!(
                self.stack.canary_intact(),
                "dropping a suspended fiber with an overflowed stack"
            );
        }
    }
}

impl std::fmt::Debug for Fiber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fiber")
            .field("state", &self.state)
            .field("stack", &self.stack)
            .finish()
    }
}

/// Suspend the currently running fiber, returning control to whoever
/// resumed it.
///
/// # Panics
///
/// Panics when called from code that is not running inside a [`Fiber`]
/// (the LWT runtimes have their own yield primitives and do not use
/// this one).
pub fn yield_now() {
    let payload = CURRENT.with(Cell::get);
    assert!(
        !payload.is_null(),
        "lwt_fiber::yield_now() called outside a fiber"
    );
    // SAFETY: `payload` points at the Box<Payload> owned by the Fiber
    // currently being resumed on this thread; the resumer is suspended
    // in `resume`, so no aliasing access occurs until we switch back.
    unsafe {
        let p = &mut *payload;
        let parent = p.parent;
        switch(&mut p.fiber_ctx, parent);
    }
}

/// Whether the caller is executing inside a [`Fiber`].
#[must_use]
pub fn in_fiber() -> bool {
    !CURRENT.with(Cell::get).is_null()
}

/// Entry thunk executed as the first frames of every [`Fiber`] stack.
unsafe extern "sysv64" fn fiber_entry(data: *mut u8) -> ! {
    // SAFETY: `data` is the payload pointer installed by `Fiber::new`.
    let payload = unsafe { &mut *data.cast::<Payload>() };
    let entry = payload.entry.take().expect("fiber entry already taken");
    let result = catch_unwind(AssertUnwindSafe(entry));
    if let Err(p) = result {
        payload.panic = Some(p);
    }
    payload.finished = true;
    let parent = payload.parent;
    // SAFETY: the resumer is suspended in `Fiber::resume` on this same
    // OS thread; it will observe `finished` only after this switch
    // completes, so the dying stack is never freed while in use.
    unsafe { switch_final(parent) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_to_completion_without_yield() {
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        let mut f = Fiber::with_default_stack(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(f.state(), FiberState::New);
        f.resume();
        assert!(f.is_finished());
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn yields_round_trip() {
        let steps = Arc::new(AtomicUsize::new(0));
        let s = steps.clone();
        let mut f = Fiber::with_default_stack(move || {
            for _ in 0..10 {
                s.fetch_add(1, Ordering::Relaxed);
                yield_now();
            }
        });
        for i in 1..=10 {
            f.resume();
            assert_eq!(steps.load(Ordering::Relaxed), i);
            assert_eq!(f.state(), FiberState::Suspended);
        }
        f.resume();
        assert!(f.is_finished());
    }

    #[test]
    #[should_panic(expected = "resumed a finished fiber")]
    fn resume_after_finish_panics() {
        let mut f = Fiber::with_default_stack(|| {});
        f.resume();
        f.resume();
    }

    #[test]
    fn panic_in_fiber_propagates_to_resumer() {
        let mut f = Fiber::with_default_stack(|| panic!("boom in fiber"));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| f.resume()))
            .expect_err("panic should propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in fiber");
        assert!(f.is_finished());
    }

    #[test]
    fn nested_fibers() {
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let o = order.clone();
        let mut outer = Fiber::with_default_stack(move || {
            o.lock().unwrap().push("outer-start");
            let o2 = o.clone();
            let mut inner = Fiber::with_default_stack(move || {
                o2.lock().unwrap().push("inner");
                yield_now();
                o2.lock().unwrap().push("inner-again");
            });
            inner.resume();
            o.lock().unwrap().push("outer-mid");
            yield_now();
            inner.resume();
            o.lock().unwrap().push("outer-end");
        });
        outer.resume();
        outer.resume();
        assert!(outer.is_finished());
        assert_eq!(
            *order.lock().unwrap(),
            vec!["outer-start", "inner", "outer-mid", "inner-again", "outer-end"]
        );
    }

    #[test]
    fn suspended_fiber_moves_across_threads() {
        let steps = Arc::new(AtomicUsize::new(0));
        let s = steps.clone();
        let mut f = Fiber::with_default_stack(move || {
            s.fetch_add(1, Ordering::Relaxed);
            yield_now();
            s.fetch_add(1, Ordering::Relaxed);
        });
        f.resume();
        assert_eq!(steps.load(Ordering::Relaxed), 1);
        let steps2 = steps.clone();
        std::thread::spawn(move || {
            f.resume();
            assert!(f.is_finished());
            assert_eq!(steps2.load(Ordering::Relaxed), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn dropping_suspended_fiber_is_safe_but_skips_destructors() {
        struct NoisyDrop(Arc<AtomicUsize>);
        impl Drop for NoisyDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d = drops.clone();
        let mut f = Fiber::with_default_stack(move || {
            let _keep = NoisyDrop(d);
            yield_now();
        });
        f.resume();
        drop(f);
        // The value lived on the abandoned fiber stack: not dropped.
        assert_eq!(drops.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn in_fiber_reports_correctly() {
        assert!(!in_fiber());
        let mut f = Fiber::with_default_stack(|| {
            assert!(in_fiber());
        });
        f.resume();
        assert!(!in_fiber());
    }

    #[test]
    #[should_panic(expected = "outside a fiber")]
    fn yield_outside_fiber_panics() {
        yield_now();
    }

    #[test]
    fn many_fibers_interleaved() {
        const N: usize = 64;
        let counter = Arc::new(AtomicUsize::new(0));
        let mut fibers: Vec<Fiber> = (0..N)
            .map(|_| {
                let c = counter.clone();
                Fiber::new(StackSize(16 * 1024), move || {
                    for _ in 0..4 {
                        c.fetch_add(1, Ordering::Relaxed);
                        yield_now();
                    }
                })
            })
            .collect();
        let mut live = N;
        while live > 0 {
            for f in &mut fibers {
                if !f.is_finished() {
                    f.resume();
                    if f.is_finished() {
                        live -= 1;
                    }
                }
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), N * 4);
        assert!(fibers.iter().all(Fiber::stack_canary_intact));
    }
}
