//! # lwt-converse — a Converse-Threads-model lightweight-thread runtime
//!
//! From-scratch Rust implementation of the programming model the paper
//! describes for Converse Threads (Kalé et al.), the substrate of
//! Charm++ and one of the oldest LWT designs:
//!
//! * **Processors** — OS threads, each with its own work-unit queue.
//!   The queue is a lock-free MPSC injector ([`lwt_sched::Injector`]):
//!   any number of senders, one consumer — exactly the shape the
//!   insertion rule below prescribes, with no lock on the pop path.
//! * **Two work-unit types**: stackful **ULTs** (`CthThread`,
//!   [`Runtime::spawn_ult`]) and stackless **Messages** (
//!   [`Runtime::send`]) that "are executed atomically" and serve as the
//!   inter-processor communication *and* synchronization mechanism.
//! * **The insertion rule** the paper highlights: "each thread has its
//!   own work unit queue but **only messages can be inserted, before
//!   their execution, into other thread's queues**". Accordingly,
//!   [`Runtime::send`]/[`Runtime::send_rr`] (messages) accept any
//!   caller, while [`Runtime::spawn_ult`] is only callable *from a
//!   processor* and lands on that processor's own queue.
//! * **Barrier-based join** ([`Runtime::barrier`]) in the Converse
//!   *return mode*: the master dispatches messages round-robin and then
//!   waits for global quiescence at a barrier all processors
//!   participate in — the mechanism behind Converse's linearly-growing
//!   join time in the paper's Fig. 3.
//!
//! ## Example
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use lwt_converse::{Config, Runtime};
//!
//! let rt = Runtime::init(Config { num_processors: 2, ..Config::default() });
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..10 {
//!     let hits = hits.clone();
//!     rt.send_rr(move || {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! rt.barrier(); // return-mode join
//! assert_eq!(hits.load(Ordering::Relaxed), 10);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]

mod chare;

pub use chare::Chare;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use lwt_fiber::StackSize;
use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;
use lwt_sched::{Injector, ParkGroup, RoundRobin};
use lwt_sync::{SenseBarrier, SpinLock};
use lwt_ultcore::{
    enter_worker, join_within, run_ult, wait_until, DrainError, PollTask, Requeue, ResultCell,
    Straggler, TaskResched, UltCore, ABANDON_GRACE,
};

pub use lwt_ultcore::{current_worker as current_processor, in_ult, yield_now, JoinError};

/// Park the calling ULT until [`UltHandle::awaken`] (`CthSuspend`).
///
/// # Panics
///
/// Panics when called outside a ULT (messages cannot suspend).
pub fn suspend() {
    lwt_ultcore::suspend();
}

/// Runtime configuration (`ConverseInit`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of processors (`+p` in Converse command lines).
    pub num_processors: usize,
    /// ULT stack size (`CthCreate`'s stack argument; Converse defaults
    /// to 64 KiB on Linux, the workspace default).
    pub stack_size: StackSize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            num_processors: std::thread::available_parallelism().map_or(4, usize::from),
            stack_size: StackSize::DEFAULT,
        }
    }
}

/// A queued work unit on a processor.
enum ConvUnit {
    /// Stackless, atomically executed message (`CmiSyncSend`).
    Message(Box<dyn FnOnce() + Send + 'static>),
    /// Stackful ULT (`CthThread`).
    Ult(Arc<UltCore>),
    /// Stackless poll task (`Glt::spawn_async` bridge). Executes
    /// message-like — atomically, no suspension — which is exactly a
    /// `Future`'s poll contract, so it obeys the insertion rule the
    /// same way messages do: any caller may enqueue one anywhere.
    Task(Arc<dyn PollTask>),
}

struct Proc {
    /// MPSC: any thread may send, only the owning processor pops.
    queue: Injector<ConvUnit>,
}

struct RtInner {
    procs: Vec<Arc<Proc>>,
    /// Idle-processor parking. Converse queues are single-consumer, so
    /// wakes are strictly targeted ([`ParkGroup::notify_worker`]):
    /// waking anyone but the queue's owner cannot help.
    park: ParkGroup,
    stack_size: StackSize,
    /// Work units created but not yet fully executed; the quiescence
    /// condition for barrier entry.
    outstanding: AtomicUsize,
    /// Barrier epochs requested by the master vs completed.
    barrier_requested: AtomicUsize,
    barrier_completed: AtomicUsize,
    barrier: SenseBarrier,
    threads: SpinLock<Vec<Option<std::thread::JoinHandle<()>>>>,
    rr: RoundRobin,
    stop: AtomicBool,
    shut: AtomicBool,
    /// Degradation switch: set by [`Runtime::shutdown_within`] when the
    /// drain deadline expires; processors break out of their loop even
    /// with work still queued.
    abandon: AtomicBool,
}

/// The Converse-model runtime. Cheap to clone.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

/// Handle to a ULT created with [`Runtime::spawn_ult`].
pub struct UltHandle<T> {
    ult: Arc<UltCore>,
    result: Arc<ResultCell<T>>,
    /// The owning processor — Converse ULTs never migrate, so awaken
    /// re-queues there.
    proc: usize,
    rt: Runtime,
}

impl<T> UltHandle<T> {
    /// Wait for completion (yielding when inside a ULT) and take the
    /// result, surfacing an escaped panic as a [`JoinError`] instead of
    /// re-raising it.
    ///
    /// Must be called from a ULT or an external thread — **never from
    /// a message**: messages execute atomically on their processor's
    /// scheduler stack, so blocking in one wedges the processor (the
    /// same rule as in C Converse). Prefer [`Runtime::barrier`] for
    /// message-fanout joins.
    ///
    /// # Errors
    ///
    /// [`JoinError`] carrying the panic payload.
    pub fn try_join(self) -> Result<T, JoinError> {
        wait_until(|| self.ult.is_terminated());
        lwt_metrics::span::on_join(self.ult.span_id());
        if let Some(p) = self.ult.take_panic() {
            return Err(JoinError::new(p));
        }
        // SAFETY: TERMINATED observed; sole joiner.
        Ok(unsafe { self.result.take() }.expect("converse ULT result missing"))
    }

    /// Wait for completion and take the result.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that escaped the ULT's closure.
    pub fn join(self) -> T {
        self.try_join().unwrap_or_else(|e| e.resume())
    }

    /// Non-consuming completion test.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.ult.is_terminated()
    }

    /// Resume a [`suspend`]ed ULT on its own processor (`CthAwaken`).
    /// Returns `false` when the ULT is not suspended.
    pub fn awaken(&self) -> bool {
        let inner = self.rt.inner.clone();
        let proc = self.proc;
        lwt_ultcore::awaken(&self.ult, move |u| {
            inner.procs[proc].queue.push(ConvUnit::Ult(u));
            inner.park.notify_worker(proc);
        })
    }
}

impl<T> std::fmt::Debug for UltHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("converse::UltHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl Runtime {
    /// Start the processors (`ConverseInit`).
    ///
    /// # Panics
    ///
    /// Panics if `config.num_processors` is zero.
    #[must_use]
    pub fn init(config: Config) -> Self {
        assert!(config.num_processors > 0, "need at least one processor");
        let procs: Vec<Arc<Proc>> = (0..config.num_processors)
            .map(|_| {
                Arc::new(Proc {
                    queue: Injector::new(),
                })
            })
            .collect();
        let inner = Arc::new(RtInner {
            park: ParkGroup::new(procs.len()),
            procs,
            stack_size: config.stack_size,
            outstanding: AtomicUsize::new(0),
            barrier_requested: AtomicUsize::new(0),
            barrier_completed: AtomicUsize::new(0),
            // Processors + the external master.
            barrier: SenseBarrier::new(config.num_processors + 1),
            threads: SpinLock::new(Vec::new()),
            rr: RoundRobin::new(config.num_processors),
            stop: AtomicBool::new(false),
            shut: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
        });
        let rt = Runtime { inner };
        let mut threads = rt.inner.threads.lock();
        for p in 0..config.num_processors {
            let inner = rt.inner.clone();
            COUNTERS.os_threads_spawned.inc();
            threads.push(Some(
                std::thread::Builder::new()
                    .name(format!("cvt-p{p}"))
                    .spawn(move || proc_main(&inner, p))
                    .expect("spawn converse processor"),
            ));
        }
        drop(threads);
        rt
    }

    /// [`Runtime::init`] with defaults.
    #[must_use]
    pub fn init_default() -> Self {
        Self::init(Config::default())
    }

    /// Number of processors.
    #[must_use]
    pub fn num_processors(&self) -> usize {
        self.inner.procs.len()
    }

    /// Send a message to a specific processor's queue (`CmiSyncSend`).
    /// Messages run atomically: no yield, no suspension.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn send<F>(&self, proc: usize, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.inner.outstanding.fetch_add(1, Ordering::AcqRel);
        self.inner.procs[proc].queue.push(ConvUnit::Message(Box::new(f)));
        // Push first, then wake the owner if it is parked (see
        // ParkGroup docs for why this order prevents lost wakes).
        self.inner.park.notify_worker(proc);
    }

    /// Send a message with round-robin processor selection — the
    /// master-thread dispatch the paper's microbenchmarks use.
    pub fn send_rr<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.send(self.inner.rr.next(), f);
    }

    /// Enqueue a stackless poll task: the calling processor's own
    /// queue when called from one, otherwise round-robin like a master
    /// dispatch. Each scheduled poll counts as outstanding work, so a
    /// [`Runtime::barrier`] waits for already-queued polls (but not for
    /// tasks parked on an external wake — those are not queued work).
    pub fn post_task(&self, task: Arc<dyn PollTask>) {
        match current_processor() {
            Some(p) if p < self.inner.procs.len() => self.post_task_to(p, task),
            _ => self.post_task_to(self.inner.rr.next(), task),
        }
    }

    /// Enqueue a stackless poll task onto a specific processor's queue.
    /// Tasks are message-like (stackless, executed atomically), so any
    /// caller may target any processor — the paper's insertion rule
    /// restricts only stackful ULTs.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn post_task_to(&self, proc: usize, task: Arc<dyn PollTask>) {
        self.inner.outstanding.fetch_add(1, Ordering::AcqRel);
        self.inner.procs[proc].queue.push(ConvUnit::Task(task));
        self.inner.park.notify_worker(proc);
    }

    /// A reschedule hook posting via [`Runtime::post_task`]; holds the
    /// runtime alive so late wakes (after user drop) still land.
    #[must_use]
    pub fn task_poster(&self) -> TaskResched {
        let rt = self.clone();
        Arc::new(move |t| rt.post_task(t))
    }

    /// A reschedule hook pinning every (re)schedule to processor
    /// `proc`.
    #[must_use]
    pub fn task_poster_to(&self, proc: usize) -> TaskResched {
        let rt = self.clone();
        Arc::new(move |t| rt.post_task_to(proc, t))
    }

    /// Create a ULT on the *calling* processor's queue (`CthCreate`).
    ///
    /// # Panics
    ///
    /// Panics when called from outside a processor — per the paper,
    /// "only messages can be inserted … into other thread's queues",
    /// so external threads must use [`Runtime::send`].
    pub fn spawn_ult<T, F>(&self, f: F) -> UltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_ult_spanned(lwt_metrics::span::on_spawn(), f)
    }

    /// [`Runtime::spawn_ult`] adopting an already-allocated causal span
    /// instead of recording a fresh spawn edge — for two-stage spawns
    /// where the causal parent lives on the thread that *sent* the
    /// bootstrap message, not the processor executing it (the unified
    /// API's `GLT_ult_create` path). Pass `0` to run span-less.
    ///
    /// # Panics
    ///
    /// Panics when called from outside a processor, like
    /// [`Runtime::spawn_ult`].
    pub fn spawn_ult_spanned<T, F>(&self, span: u64, f: F) -> UltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let proc = current_processor().expect(
            "CthCreate outside a processor: only messages may enter another \
             processor's queue",
        );
        let result = ResultCell::new();
        let slot = result.clone();
        let ult = UltCore::with_span(self.inner.stack_size, span, move || {
            let value = f();
            // SAFETY: sole writer, before TERMINATED.
            unsafe { slot.put(value) };
        });
        self.inner.outstanding.fetch_add(1, Ordering::AcqRel);
        emit(EventKind::UltSpawn, proc as u64);
        self.inner.procs[proc].queue.push(ConvUnit::Ult(ult.clone()));
        self.inner.park.notify_worker(proc);
        UltHandle {
            ult,
            result,
            proc,
            rt: self.clone(),
        }
    }

    /// Return-mode join: wait until every queued work unit (including
    /// transitively created ones) has executed, synchronizing with all
    /// processors at a barrier.
    ///
    /// The barrier episode costs O(processors) — the linear join the
    /// paper measures for Converse Threads in Fig. 3.
    pub fn barrier(&self) {
        self.inner.barrier_requested.fetch_add(1, Ordering::AcqRel);
        // Every processor owes the episode a visit — parked ones
        // included. Wake them all; backstop timeouts are defense in
        // depth, not how barriers are supposed to make progress.
        self.inner.park.unpark_all();
        let mut relax = lwt_sync::AdaptiveRelax::new();
        if self.inner.barrier.wait(move || relax.relax()) {
            self.inner.barrier_completed.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Wait up to `deadline` for global quiescence (no outstanding work
    /// units), the precondition for [`Runtime::barrier`] to complete.
    /// Returns whether quiescence was reached — entering the barrier
    /// after a `false` would hang the master on a wedged unit.
    #[must_use]
    pub fn quiesce_within(&self, deadline: std::time::Duration) -> bool {
        let until = std::time::Instant::now() + deadline;
        let _watch = lwt_chaos::block_enter(
            lwt_chaos::BlockKind::Finalize,
            Arc::as_ptr(&self.inner) as u64,
        );
        let mut relax = lwt_sync::AdaptiveRelax::new();
        while self.inner.outstanding.load(Ordering::Acquire) != 0 {
            if std::time::Instant::now() >= until {
                return false;
            }
            relax.relax();
        }
        true
    }

    /// Stop all processors and join their threads (`ConverseExit`).
    /// Idempotent. Waits unboundedly; see [`Runtime::shutdown_within`]
    /// for a drain with a deadline.
    pub fn shutdown(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.stop.store(true, Ordering::Release);
        // A fully parked pool must notice the flag now, not after a
        // backstop timeout.
        self.inner.park.unpark_all();
        let mut threads = self.inner.threads.lock();
        for t in threads.iter_mut() {
            if let Some(t) = t.take() {
                t.join().expect("converse processor panicked");
            }
        }
    }

    /// [`Runtime::shutdown`] with a drain deadline: processors get
    /// `deadline` to finish queued work; past it they are told to
    /// abandon their queues (no thread is ever killed) and the
    /// leftovers are reported.
    ///
    /// # Errors
    ///
    /// [`DrainError`] listing per-processor queue residue when the
    /// deadline expired before quiescence.
    pub fn shutdown_within(&self, deadline: std::time::Duration) -> Result<(), DrainError> {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.inner.stop.store(true, Ordering::Release);
        // Wake every sleeper *before* the drain deadline starts: a
        // fully parked pool drains instantly instead of eating the
        // deadline in 20–200 ms backstop increments.
        self.inner.park.unpark_all();
        let handles: Vec<_> = {
            let mut threads = self.inner.threads.lock();
            threads.iter_mut().filter_map(Option::take).collect()
        };
        let timed_out = !join_within(&handles, deadline);
        if timed_out {
            self.inner.abandon.store(true, Ordering::Release);
            self.inner.park.unpark_all();
            // Grace for workers idling between units to notice the flag.
            join_within(&handles, ABANDON_GRACE);
        }
        for t in handles {
            if t.is_finished() {
                t.join().expect("converse processor panicked");
            } else {
                // Wedged inside a unit: detach rather than hang (never
                // kill); the thread's Arcs keep its shared state alive.
                drop(t);
            }
        }
        if timed_out {
            let stragglers = self
                .inner
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.queue.is_empty())
                .map(|(worker, p)| Straggler {
                    worker,
                    pending: p.queue.len(),
                    what: "processor queue",
                })
                .collect();
            Err(DrainError {
                waited: deadline,
                stragglers,
            })
        } else {
            Ok(())
        }
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.park.unpark_all();
        for t in self.threads.lock().iter_mut() {
            if let Some(t) = t.take() {
                let _ = t.join();
            }
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("converse::Runtime")
            .field("processors", &self.num_processors())
            .field("outstanding", &self.inner.outstanding.load(Ordering::Relaxed))
            .finish()
    }
}

fn proc_main(inner: &Arc<RtInner>, p: usize) {
    let proc = inner.procs[p].clone();
    let requeue: Arc<dyn Requeue> = {
        let procs = inner.procs.clone();
        Arc::new(move |worker: usize, u: Arc<UltCore>| {
            // Yielded ULTs return to their current processor's queue —
            // ULTs never migrate through another queue (messages only).
            procs[worker].queue.push(ConvUnit::Ult(u));
        })
    };
    let _guard = enter_worker(p, requeue);
    let heartbeat = lwt_chaos::register_worker("converse", p);
    let mut backoff = lwt_sync::Backoff::new();
    loop {
        heartbeat.beat();
        if inner.abandon.load(Ordering::Acquire) {
            break;
        }
        let unit = proc.queue.pop();
        if unit.is_some() && lwt_chaos::should_inject(lwt_chaos::FaultSite::YieldPoint) {
            std::thread::yield_now();
        }
        match unit {
            Some(ConvUnit::Message(f)) => {
                backoff.reset();
                // Messages execute atomically on the processor's stack.
                COUNTERS.messages_executed.inc();
                lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Busy);
                emit(EventKind::TaskletExec, 0);
                f();
                lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Dispatch);
                inner.outstanding.fetch_sub(1, Ordering::AcqRel);
            }
            Some(ConvUnit::Ult(u)) => {
                backoff.reset();
                let claimed = run_ult(&u);
                if claimed && u.is_terminated() {
                    inner.outstanding.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Some(ConvUnit::Task(t)) => {
                backoff.reset();
                // One queued poll, one execution: run() emits its own
                // timeline/metrics; a wake that requeues the task goes
                // back through post_task and re-increments outstanding.
                t.run();
                inner.outstanding.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                // Quiescent? Serve a pending barrier episode.
                if inner.barrier_requested.load(Ordering::Acquire)
                    > inner.barrier_completed.load(Ordering::Acquire)
                    && inner.outstanding.load(Ordering::Acquire) == 0
                {
                    let mut relax = lwt_sync::AdaptiveRelax::new();
                    if inner.barrier.wait(move || relax.relax()) {
                        inner.barrier_completed.fetch_add(1, Ordering::AcqRel);
                    }
                    continue;
                }
                if inner.stop.load(Ordering::Acquire) {
                    break;
                }
                // No steal phase here: Converse ULTs never migrate, so
                // an empty queue goes straight to Idle.
                lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Idle);
                // Reactor idle hook: collect I/O readiness (wakes
                // repost through this runtime) before backing off.
                if lwt_sched::io_poll() > 0 {
                    backoff.reset();
                    continue;
                }
                backoff.spin();
                if backoff.is_saturated() {
                    // The queue is dry and no barrier episode is due:
                    // sleep instead of burning the core. Only our own
                    // queue feeds us, so the re-check counts just its
                    // length; barrier requests and shutdown arrive as
                    // wake tokens (their senders call `unpark_all`).
                    let _ = inner
                        .park
                        .park(p, Some(&heartbeat), || proc.queue.len());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn rt(n: usize) -> Runtime {
        Runtime::init(Config {
            num_processors: n,
            ..Config::default()
        })
    }

    #[test]
    fn messages_execute_and_barrier_joins() {
        let rt = rt(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = hits.clone();
            rt.send_rr(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.barrier();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        rt.shutdown();
    }

    #[test]
    fn send_targets_specific_processor() {
        let rt = rt(3);
        let seen = Arc::new(SpinLock::new(Vec::new()));
        for p in 0..3 {
            let seen = seen.clone();
            rt.send(p, move || {
                seen.lock().push((p, current_processor().unwrap()));
            });
        }
        rt.barrier();
        let mut seen = seen.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2)]);
        rt.shutdown();
    }

    #[test]
    fn repeated_barriers_work() {
        let rt = rt(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for round in 1..=5 {
            for _ in 0..10 {
                let hits = hits.clone();
                rt.send_rr(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            rt.barrier();
            assert_eq!(hits.load(Ordering::Relaxed), round * 10);
        }
        rt.shutdown();
    }

    #[test]
    fn messages_spawning_messages_reach_quiescence() {
        let rt = rt(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let rt2 = rt.clone();
        let h2 = hits.clone();
        rt.send(0, move || {
            h2.fetch_add(1, Ordering::Relaxed);
            for _ in 0..10 {
                let h = h2.clone();
                rt2.send_rr(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        rt.barrier();
        assert_eq!(hits.load(Ordering::Relaxed), 11);
        rt.shutdown();
    }

    #[test]
    fn ults_spawn_on_own_processor_and_yield() {
        let rt = rt(2);
        let rt2 = rt.clone();
        let out = Arc::new(SpinLock::new(None));
        let o = out.clone();
        // Messages execute atomically and must not block, so the
        // message only *creates* the ULT; the return-mode barrier below
        // waits for the ULT itself (it counts as outstanding work).
        rt.send(1, move || {
            let o2 = o.clone();
            let _ = rt2.spawn_ult(move || {
                let me = current_processor();
                yield_now();
                // ULTs requeue to their own processor: still proc 1.
                assert_eq!(current_processor(), me);
                *o2.lock() = Some(me);
            });
        });
        rt.barrier();
        assert_eq!(*out.lock(), Some(Some(1)));
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "only messages may enter")]
    fn external_ult_creation_is_rejected() {
        let rt = rt(1);
        // Keep the runtime alive past the panic so worker threads
        // shut down cleanly in the unwind.
        let _ = rt.spawn_ult(|| ());
    }

    #[test]
    fn barrier_with_no_work_returns() {
        let rt = rt(4);
        rt.barrier();
        rt.barrier();
        rt.shutdown();
    }

    #[test]
    fn shutdown_idempotent_and_drop_safe() {
        let rt = rt(2);
        rt.send_rr(|| ());
        rt.barrier();
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }
}

#[cfg(test)]
mod suspend_tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cth_suspend_awaken_round_trip() {
        let rt = Runtime::init(Config {
            num_processors: 2,
            ..Config::default()
        });
        let progress = Arc::new(AtomicUsize::new(0));
        let handle_cell: Arc<SpinLock<Option<UltHandle<()>>>> =
            Arc::new(SpinLock::new(None));
        let (rt2, p2, hc) = (rt.clone(), progress.clone(), handle_cell.clone());
        rt.send(0, move || {
            let p3 = p2.clone();
            let h = rt2.spawn_ult(move || {
                p3.fetch_add(1, Ordering::SeqCst);
                suspend();
                p3.fetch_add(1, Ordering::SeqCst);
            });
            *hc.lock() = Some(h);
        });
        // Wait until the ULT parked after its first step.
        while progress.load(Ordering::SeqCst) < 1 {
            std::thread::yield_now();
        }
        let h = loop {
            if let Some(h) = handle_cell.lock().take() {
                break h;
            }
            std::thread::yield_now();
        };
        // Spin until the park is visible, then wake it.
        while !h.awaken() {
            if h.is_finished() {
                panic!("ULT finished without awaken");
            }
            std::thread::yield_now();
        }
        h.join();
        assert_eq!(progress.load(Ordering::SeqCst), 2);
        rt.shutdown();
    }
}
