//! Client-server / actor interaction over Converse messages.
//!
//! Converse exists to host higher-level programming models — "the
//! implementation of the Charm++ programming model is currently built
//! on top of Converse Threads, and several Converse Threads modules
//! (e.g., client-server) have been implemented specifically for that
//! interaction" (paper §III-B). This module provides that layer in
//! miniature:
//!
//! * [`Chare`] — a Charm++-style *chare*: state pinned to one
//!   processor, driven exclusively by messages, so method executions
//!   on one chare never run concurrently (messages execute atomically
//!   and in queue order on their processor).
//! * [`Chare::send`] — fire-and-forget method invocation
//!   (entry-method semantics).
//! * [`Chare::call`] — client-server request/response: the caller
//!   blocks (ULT-aware) until the chare's processor has run the
//!   handler and posted the reply.

use std::sync::Arc;

use lwt_sync::{Event, SpinLock};
use lwt_ultcore::wait_until;

use crate::Runtime;

/// An actor pinned to a Converse processor.
///
/// ```
/// use lwt_converse::{Chare, Config, Runtime};
///
/// let rt = Runtime::init(Config { num_processors: 2, ..Config::default() });
/// let counter = Chare::new(&rt, 1, 0u64);
/// for _ in 0..10 {
///     counter.send(|n| *n += 1);
/// }
/// assert_eq!(counter.call(|n| *n), 10);
/// rt.shutdown();
/// ```
pub struct Chare<S> {
    rt: Runtime,
    proc: usize,
    /// The chare state. The lock is uncontended by construction (all
    /// access happens on one processor, message-at-a-time); it exists
    /// to satisfy Rust's aliasing rules, not for synchronization.
    state: Arc<SpinLock<S>>,
}

impl<S: Send + 'static> Chare<S> {
    /// Create a chare with `initial` state, homed on processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range (first send/call reports it).
    #[must_use]
    pub fn new(rt: &Runtime, proc: usize, initial: S) -> Self {
        assert!(
            proc < rt.num_processors(),
            "chare homed on nonexistent processor {proc}"
        );
        Chare {
            rt: rt.clone(),
            proc,
            state: Arc::new(SpinLock::new(initial)),
        }
    }

    /// The processor this chare lives on.
    #[must_use]
    pub fn home(&self) -> usize {
        self.proc
    }

    /// Fire-and-forget entry method: `f` runs on the chare's processor
    /// with exclusive access to the state, in message order relative to
    /// other invocations from the same sender.
    pub fn send<F>(&self, f: F)
    where
        F: FnOnce(&mut S) + Send + 'static,
    {
        let state = self.state.clone();
        self.rt.send(self.proc, move || {
            f(&mut state.lock());
        });
    }

    /// Client-server call: run `f` on the chare's processor and wait
    /// (ULT-aware; external threads spin-yield) for its reply.
    ///
    /// Must not be called from a *message running on the chare's own
    /// processor* — that would wait on itself (the same no-blocking
    /// rule as [`crate::UltHandle::join`]). ULTs and external threads
    /// are fine.
    pub fn call<F, R>(&self, f: F) -> R
    where
        F: FnOnce(&mut S) -> R + Send + 'static,
        R: Send + 'static,
    {
        let state = self.state.clone();
        let done = Arc::new(Event::new());
        let slot: Arc<SpinLock<Option<R>>> = Arc::new(SpinLock::new(None));
        let (d2, s2) = (done.clone(), slot.clone());
        self.rt.send(self.proc, move || {
            let reply = f(&mut state.lock());
            *s2.lock() = Some(reply);
            d2.set();
        });
        wait_until(|| done.is_set());
        let reply = slot.lock().take();
        reply.expect("chare reply missing")
    }
}

impl<S> Clone for Chare<S> {
    fn clone(&self) -> Self {
        Chare {
            rt: self.rt.clone(),
            proc: self.proc,
            state: self.state.clone(),
        }
    }
}

impl<S> std::fmt::Debug for Chare<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chare").field("proc", &self.proc).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sends_apply_in_order_from_one_sender() {
        let rt = Runtime::init(Config { num_processors: 2, ..Config::default() });
        let log = Chare::new(&rt, 0, Vec::new());
        for i in 0..20 {
            log.send(move |v: &mut Vec<usize>| v.push(i));
        }
        let got = log.call(|v| v.clone());
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        rt.shutdown();
    }

    #[test]
    fn calls_serialize_against_sends() {
        let rt = Runtime::init(Config { num_processors: 3, ..Config::default() });
        let acc = Chare::new(&rt, 1, 0i64);
        for i in 1..=100 {
            acc.send(move |n| *n += i);
        }
        // The call is a message behind the 100 sends on the same
        // processor queue: it must observe all of them.
        assert_eq!(acc.call(|n| *n), 5050);
        rt.shutdown();
    }

    #[test]
    fn concurrent_clients_from_work_units() {
        let rt = Runtime::init(Config { num_processors: 3, ..Config::default() });
        let server = Chare::new(&rt, 0, 0u64);
        let replies = Arc::new(AtomicUsize::new(0));
        // Clients on *other* processors call into the server chare.
        for _ in 0..30 {
            let (server, replies) = (server.clone(), replies.clone());
            rt.send(1, move || {
                // A message may not block, so do the request from a ULT
                // (which may suspend while waiting for the reply).
                let rt2 = server.rt.clone();
                let _ult = rt2.spawn_ult(move || {
                    let ticket = server.call(|n| {
                        *n += 1;
                        *n
                    });
                    assert!(ticket >= 1);
                    replies.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        rt.barrier();
        assert_eq!(replies.load(Ordering::Relaxed), 30);
        assert_eq!(server.call(|n| *n), 30);
        rt.shutdown();
    }

    #[test]
    fn chares_on_different_processors_run_concurrently() {
        let rt = Runtime::init(Config { num_processors: 2, ..Config::default() });
        let a = Chare::new(&rt, 0, 0usize);
        let b = Chare::new(&rt, 1, 0usize);
        for _ in 0..50 {
            a.send(|n| *n += 1);
            b.send(|n| *n += 2);
        }
        assert_eq!(a.call(|n| *n), 50);
        assert_eq!(b.call(|n| *n), 100);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "nonexistent processor")]
    fn bad_home_rejected() {
        let rt = Runtime::init(Config { num_processors: 1, ..Config::default() });
        let _ = Chare::new(&rt, 5, ());
    }
}
