//! Queue-substrate microbenchmarks: the raw cost of each work-unit
//! queue design from `lwt-sched`, isolating the structural differences
//! the paper's Table I rows ("Global/Private Work Unit Queue") imply.

use lwt_bench::{black_box, Harness};
use lwt_sched::{ChaseLev, PrivateDeque, SharedQueue, StealableDeque};

const OPS: usize = 1024;

fn queue_roundtrip(h: &mut Harness) {
    let mut group = h.benchmark_group("primitives_queue_roundtrip");
    lwt_bench::tune(&mut group);

    group.bench_function("shared_locked_fifo", |b| {
        let q = SharedQueue::new();
        b.iter(|| {
            for i in 0..OPS {
                q.push(i);
            }
            while let Some(v) = q.pop() {
                black_box(v);
            }
        });
    });

    group.bench_function("private_unsynchronized", |b| {
        let mut q = PrivateDeque::new();
        b.iter(|| {
            for i in 0..OPS {
                q.push_back(i);
            }
            while let Some(v) = q.pop_front() {
                black_box(v);
            }
        });
    });

    group.bench_function("stealable_locked_deque", |b| {
        let q = StealableDeque::new();
        b.iter(|| {
            for i in 0..OPS {
                q.push(i);
            }
            while let Some(v) = q.pop() {
                black_box(v);
            }
        });
    });

    group.bench_function("chase_lev_lockfree", |b| {
        let (w, _s) = ChaseLev::new();
        b.iter(|| {
            for i in 0..OPS {
                w.push(i);
            }
            while let Some(v) = w.pop() {
                black_box(v);
            }
        });
    });

    group.finish();
}

fn contended_pop(h: &mut Harness) {
    let mut group = h.benchmark_group("primitives_contended");
    lwt_bench::tune(&mut group);

    // Shared queue under a competing consumer: the Go/gcc story.
    group.bench_function("shared_fifo_with_thief", |b| {
        b.iter_custom(|iters| {
            let q = std::sync::Arc::new(SharedQueue::new());
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let (q2, s2) = (q.clone(), stop.clone());
            let thief = std::thread::spawn(move || {
                while !s2.load(std::sync::atomic::Ordering::Acquire) {
                    black_box(q2.pop());
                }
            });
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                for i in 0..OPS {
                    q.push(i);
                }
                while q.pop().is_some() {}
            }
            let dt = t0.elapsed();
            stop.store(true, std::sync::atomic::Ordering::Release);
            thief.join().unwrap();
            dt
        });
    });

    // Chase–Lev under a competing stealer: the icc story.
    group.bench_function("chase_lev_with_thief", |b| {
        b.iter_custom(|iters| {
            let (w, s) = ChaseLev::new();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let s2 = stop.clone();
            let thief = std::thread::spawn(move || {
                while !s2.load(std::sync::atomic::Ordering::Acquire) {
                    black_box(s.steal());
                }
            });
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                for i in 0..OPS {
                    w.push(i);
                }
                while w.pop().is_some() {}
            }
            let dt = t0.elapsed();
            stop.store(true, std::sync::atomic::Ordering::Release);
            thief.join().unwrap();
            dt
        });
    });

    group.finish();
}

lwt_bench::bench_main!(queue_roundtrip, contended_pop);
