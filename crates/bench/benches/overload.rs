//! Overload sweep for the serving stack: a capped server
//! (`ServerConfig { max_conns, max_inflight, .. }`) is offered 4× its
//! connection capacity by a retry client with jittered exponential
//! backoff, and the record shows what the overload contract buys —
//! bounded p99 for the requests that are admitted, explicit `503`
//! sheds for the rest, and zero errors that aren't sheds. Written to
//! `results/BENCH_overload.json`.
//!
//! Same two-process design as `serving.rs` (the binary re-execs
//! itself with `LWT_OVERLOAD_ROLE=client`) so server and client get
//! separate fd budgets and separate runtimes.
//!
//! Knobs: `LWT_WORKERS` (server pool), `LWT_OVERLOAD_CAP` (connection
//! cap; offered load is 4×), `LWT_OVERLOAD_INFLIGHT` (in-flight
//! request cap), `LWT_OVERLOAD_REQS` (connect→request→close cycles
//! per client task).

use std::io::Read as _;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lwt_core::{BackendKind, Glt};
use lwt_net::http::{self, ServerConfig};
use lwt_net::TcpStream;
use lwt_sync::rng::{Rng, SplitMix64};
use lwt_sync::SpinLock;

const REQUEST: &[u8] = b"GET /overload HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n";

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------- client

/// Yield the calling async task once.
async fn yield_task() {
    let mut yielded = false;
    std::future::poll_fn(move |cx| {
        if yielded {
            std::task::Poll::Ready(())
        } else {
            yielded = true;
            cx.waker().wake_by_ref();
            std::task::Poll::Pending
        }
    })
    .await;
}

/// Async-friendly pause: yield the task until `dur` has passed. Burns
/// a poll per turn, but the backoffs here are single-digit ms and the
/// alternative (thread::sleep) would wedge a client worker.
async fn pause(dur: Duration) {
    let until = Instant::now() + dur;
    while Instant::now() < until {
        yield_task().await;
    }
}

/// Jittered exponential backoff for `attempt` (0-based): uniform in
/// [0, min(1ms << attempt, 32ms)). Full jitter — the point is to
/// decorrelate 4× capacity's worth of retries.
fn backoff(rng: &mut SplitMix64, attempt: u32) -> Duration {
    let cap_us = (1000u64 << attempt.min(5)).min(32_000);
    Duration::from_micros(rng.gen_range(0..cap_us.max(1)))
}

/// Read one full response; classify it. `None` = transport cut.
fn status_of(resp: &str) -> Option<u16> {
    resp.strip_prefix("HTTP/1.1 ")?
        .split(' ')
        .next()?
        .parse()
        .ok()
}

async fn read_response(stream: &TcpStream) -> Option<String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) {
            let head = std::str::from_utf8(&buf[..head_end]).ok()?;
            let clen: usize = head
                .lines()
                .find_map(|l| {
                    let (n, v) = l.split_once(':')?;
                    n.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= head_end + clen {
                return String::from_utf8(buf).ok();
            }
        }
        match stream.read_async(&mut chunk).await {
            Ok(n) if n > 0 => buf.extend_from_slice(&chunk[..n]),
            _ => return None,
        }
    }
}

/// Client-role main: `conns` concurrent tasks (4× the server's cap),
/// each cycling connect → request → response → close `reqs` times,
/// retrying sheds and transport cuts with jittered backoff.
fn client_main() -> ! {
    let addr: std::net::SocketAddr = std::env::var("LWT_OVERLOAD_ADDR")
        .expect("LWT_OVERLOAD_ADDR")
        .parse()
        .expect("client addr");
    let conns = env_usize("LWT_OVERLOAD_CONNS", 256);
    let reqs = env_usize("LWT_OVERLOAD_REQS", 4);

    let glt = Glt::builder(BackendKind::Go)
        .workers(env_usize("LWT_WORKERS", 2))
        .build();
    let latencies = Arc::new(SpinLock::new(Vec::with_capacity(conns * reqs)));
    let sheds = Arc::new(AtomicUsize::new(0));
    let retries = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let tasks: Vec<_> = (0..conns)
        .map(|i| {
            let latencies = Arc::clone(&latencies);
            let sheds = Arc::clone(&sheds);
            let retries = Arc::clone(&retries);
            let failures = Arc::clone(&failures);
            glt.spawn_async(async move {
                let mut rng = SplitMix64::new(0x0E41_10AD ^ (i as u64) << 17);
                let mut local = Vec::with_capacity(reqs);
                for _ in 0..reqs {
                    let t0 = Instant::now();
                    let mut attempt = 0u32;
                    loop {
                        // Offered-load clients outnumber server slots
                        // 4:1: connects themselves queue in the
                        // backlog while the acceptor is paused, so
                        // they get the same backoff treatment.
                        let Ok(stream) = TcpStream::connect(addr) else {
                            retries.fetch_add(1, Ordering::Relaxed);
                            pause(backoff(&mut rng, attempt)).await;
                            attempt += 1;
                            if attempt > 20 {
                                failures.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            continue;
                        };
                        if stream.write_all_async(REQUEST).await.is_err() {
                            retries.fetch_add(1, Ordering::Relaxed);
                            pause(backoff(&mut rng, attempt)).await;
                            attempt += 1;
                            continue;
                        }
                        match read_response(&stream).await.as_deref().map(status_of) {
                            Some(Some(200)) => {
                                local.push(t0.elapsed().as_nanos() as u64);
                                break;
                            }
                            Some(Some(503)) => {
                                sheds.fetch_add(1, Ordering::Relaxed);
                                pause(backoff(&mut rng, attempt)).await;
                                attempt += 1;
                            }
                            _ => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                pause(backoff(&mut rng, attempt)).await;
                                attempt += 1;
                            }
                        }
                        if attempt > 20 {
                            failures.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                latencies.lock().extend(local);
            })
        })
        .collect();
    for t in tasks {
        t.join();
    }
    let elapsed = started.elapsed();
    glt.finalize().expect("client drain");

    let mut lat = std::mem::take(&mut *latencies.lock());
    lat.sort_unstable();
    let pct = |p: usize| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[(lat.len() - 1) * p / 100]
        }
    };
    println!(
        "OVERLOAD_CLIENT requests={} elapsed_ns={} p50_ns={} p99_ns={} sheds={} retries={} failures={}",
        lat.len(),
        elapsed.as_nanos(),
        pct(50),
        pct(99),
        sheds.load(Ordering::Relaxed),
        retries.load(Ordering::Relaxed),
        failures.load(Ordering::Relaxed),
    );
    std::process::exit(0);
}

// ---------------------------------------------------------------- server

struct RunResult {
    id: String,
    cap: usize,
    max_inflight: usize,
    offered: usize,
    requests: u64,
    elapsed_ns: u64,
    rps: f64,
    p50_ns: u64,
    p99_ns: u64,
    client_sheds: u64,
    client_retries: u64,
    client_failures: u64,
    peak_active: usize,
    metrics: lwt_metrics::registry::CounterSnapshot,
}

fn parse_client_line(out: &str) -> Option<[u64; 7]> {
    let line = out.lines().find(|l| l.starts_with("OVERLOAD_CLIENT "))?;
    let mut vals = [0u64; 7];
    for (slot, key) in [
        "requests",
        "elapsed_ns",
        "p50_ns",
        "p99_ns",
        "sheds",
        "retries",
        "failures",
    ]
    .iter()
    .enumerate()
    {
        let field = line
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))?;
        vals[slot] = field.parse().ok()?;
    }
    Some(vals)
}

/// One overload run: capped server on `kind`, over-capacity client as
/// a subprocess. `label` names the regime the caps put the run in.
fn run_overload(
    kind: BackendKind,
    label: &str,
    cap: usize,
    max_inflight: usize,
    offered: usize,
    reqs: usize,
) -> RunResult {
    let workers = env_usize("LWT_WORKERS", 2);
    let glt = Glt::builder(kind).workers(workers).build();
    let listener = lwt_net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut config = ServerConfig::default();
    config.max_conns = cap;
    config.max_inflight = max_inflight;
    config.header_timeout_ms = 10_000;
    config.idle_timeout_ms = 10_000;
    let server = http::serve_config(
        &glt,
        listener,
        config,
        Arc::new(|_req: &http::Request| {
            // ~10 µs of real work per request so the in-flight cap
            // has something to bound.
            let mut acc = 0u64;
            for i in 0..4000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            http::Response::ok(format!("ok:{acc:x}\n"))
        }),
    )
    .expect("serve");
    let addr = server.addr();

    let counters_before = lwt_metrics::registry::snapshot().counters;

    let mut child = Command::new(std::env::current_exe().expect("current_exe"))
        .env("LWT_OVERLOAD_ROLE", "client")
        .env("LWT_OVERLOAD_ADDR", addr.to_string())
        .env("LWT_OVERLOAD_CONNS", offered.to_string())
        .env("LWT_OVERLOAD_REQS", reqs.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn client");

    let mut peak_active = 0;
    loop {
        peak_active = peak_active.max(server.active_connections());
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "client exited with {status}");
                break;
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_string(&mut out)
        .expect("read client output");
    let [requests, elapsed_ns, p50_ns, p99_ns, sheds, retries, failures] =
        parse_client_line(&out).expect("client result line");

    let metrics = lwt_metrics::registry::snapshot()
        .counters
        .delta(&counters_before);

    server.shutdown();
    glt.finalize().expect("server drain");

    assert!(
        cap == 0 || peak_active <= cap,
        "connection cap violated on {kind}: peak {peak_active} > cap {cap}"
    );

    let rps = if elapsed_ns == 0 {
        0.0
    } else {
        requests as f64 / (elapsed_ns as f64 / 1e9)
    };
    eprintln!(
        "overload/{kind}/{label}: {requests} ok, {rps:.0} rps, \
         p50 {:.2} ms, p99 {:.2} ms, {sheds} sheds, {retries} retries, \
         {failures} failures, peak {peak_active}/{cap} conns, \
         {} accept pauses, {} server sheds",
        p50_ns as f64 / 1e6,
        p99_ns as f64 / 1e6,
        metrics.accept_pauses,
        metrics.requests_shed,
    );
    RunResult {
        id: format!("overload/{kind}/{label}"),
        cap,
        max_inflight,
        offered,
        requests,
        elapsed_ns,
        rps,
        p50_ns,
        p99_ns,
        client_sheds: sheds,
        client_retries: retries,
        client_failures: failures,
        peak_active,
        metrics,
    }
}

fn write_results(results: &[RunResult]) {
    let mut json = String::from("{\n  \"group\": \"overload\",\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let m = &r.metrics;
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"cap\": {}, \"max_inflight\": {}, \
             \"offered\": {}, \"requests\": {}, \"elapsed_ns\": {}, \
             \"rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"client_sheds\": {}, \"client_retries\": {}, \
             \"client_failures\": {}, \"peak_active\": {}, \
             \"metrics\": {{\"requests_shed\": {}, \"accept_pauses\": {}, \
             \"timers_armed\": {}, \"timers_fired\": {}, \
             \"timers_cancelled\": {}, \"io_timeouts\": {}, \
             \"handler_panics\": {}, \"io_registrations\": {}, \
             \"io_events\": {}, \"io_wakes\": {}}}}}{comma}\n",
            r.id,
            r.cap,
            r.max_inflight,
            r.offered,
            r.requests,
            r.elapsed_ns,
            r.rps,
            r.p50_ns,
            r.p99_ns,
            r.client_sheds,
            r.client_retries,
            r.client_failures,
            r.peak_active,
            m.requests_shed,
            m.accept_pauses,
            m.timers_armed,
            m.timers_fired,
            m.timers_cancelled,
            m.io_timeouts,
            m.handler_panics,
            m.io_registrations,
            m.io_events,
            m.io_wakes,
        ));
    }
    json.push_str("  ]\n}\n");
    let out_dir = std::env::var("LWT_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        });
    std::fs::create_dir_all(&out_dir).expect("results dir");
    let path = out_dir.join("BENCH_overload.json");
    std::fs::write(&path, json).expect("write results");
    eprintln!("wrote {} ({} records)", path.display(), results.len());
}

fn main() {
    if std::env::var("LWT_OVERLOAD_ROLE").as_deref() == Ok("client") {
        client_main();
    }
    lwt_metrics::set_accounting(true);

    let cap = env_usize("LWT_OVERLOAD_CAP", 64);
    let max_inflight = env_usize("LWT_OVERLOAD_INFLIGHT", 16);
    let reqs = env_usize("LWT_OVERLOAD_REQS", 4);

    // Go hosts the connection-per-task model; Qthreads stands in for
    // the ULT-core family (qthreads/massivethreads/converse share the
    // ultcore scheduler underneath). Two regimes per backend:
    //   cap{N}x4   — 4× the connection cap offered; the acceptor
    //                pauses and the kernel backlog queues the excess.
    //   inflight1  — no connection cap, but handlers serialized by a
    //                one-slot in-flight cap; excess requests shed 503
    //                and the jittered-backoff client absorbs them.
    let mut results = Vec::new();
    for kind in [BackendKind::Go, BackendKind::Qthreads] {
        results.push(run_overload(
            kind,
            &format!("cap{cap}x4"),
            cap,
            max_inflight,
            cap * 4,
            reqs,
        ));
        results.push(run_overload(kind, "inflight1", 0, 1, cap, reqs));
    }
    write_results(&results);
}
