//! Paper Fig. 5: 1,000 tasks created into a single region.

use criterion::{criterion_group, criterion_main, Criterion};
use lwt_microbench::runners::Experiment;

fn fig5(c: &mut Criterion) {
    let n = lwt_microbench::env_usize("LWT_N", 1000);
    lwt_bench::run_figure(c, "fig5_task_single", Experiment::TaskSingle { n });
}

criterion_group!(benches, fig5);
criterion_main!(benches);
