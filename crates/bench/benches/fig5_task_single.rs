//! Paper Fig. 5: 1,000 tasks created into a single region.

use lwt_bench::Harness;
use lwt_microbench::runners::Experiment;

fn fig5(h: &mut Harness) {
    let n = lwt_microbench::env_usize("LWT_N", 1000);
    lwt_bench::run_figure(h, "fig5_task_single", Experiment::TaskSingle { n });
}

lwt_bench::bench_main!(fig5);
