//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! Each group isolates one mechanism the paper identifies as
//! performance-critical and compares the design alternatives directly.

use std::time::Instant;

use lwt_bench::{black_box, BenchmarkId, Harness};
use lwt_fiber::StackSize;
use lwt_microbench::runners::{measure, Experiment, Series};

/// ULT vs tasklet creation (paper: tasklets ≈ 2× cheaper, Figs. 2/5/6).
fn ablation_workunit(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_workunit");
    lwt_bench::tune(&mut group);
    for series in [Series::AbtUlt, Series::AbtTasklet] {
        group.bench_function(series.label(), |b| {
            b.iter_custom(|iters| {
                let stats = measure(
                    series,
                    Experiment::TaskSingle { n: 256 },
                    2,
                    iters as usize,
                );
                stats.mean.saturating_mul(u32::try_from(iters).unwrap_or(u32::MAX))
            });
        });
    }
    group.finish();
}

/// Private pool per stream vs one shared pool (Argobots; the paper's
/// evaluation always picks private).
fn ablation_pools(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_pools");
    lwt_bench::tune(&mut group);
    for (name, policy) in [
        ("private_per_stream", lwt_argobots::PoolPolicy::PrivatePerStream),
        ("shared_single", lwt_argobots::PoolPolicy::SharedSingle),
    ] {
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let rt = lwt_argobots::Runtime::init(lwt_argobots::Config {
                    num_streams: 2,
                    pool_policy: policy,
                    ..Default::default()
                });
                let t0 = Instant::now();
                for _ in 0..iters {
                    let handles: Vec<_> =
                        (0..256).map(|_| rt.tasklet_create(|| ())).collect();
                    for h in handles {
                        h.join();
                    }
                }
                let dt = t0.elapsed();
                rt.shutdown();
                dt
            });
        });
    }
    group.finish();
}

/// Work-first vs help-first creation (MassiveThreads (W) vs (H)).
fn ablation_policy(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_policy");
    lwt_bench::tune(&mut group);
    for series in [Series::MthWork, Series::MthHelp] {
        group.bench_function(series.label(), |b| {
            b.iter_custom(|iters| {
                let stats = measure(
                    series,
                    Experiment::TaskSingle { n: 256 },
                    2,
                    iters as usize,
                );
                stats.mean.saturating_mul(u32::try_from(iters).unwrap_or(u32::MAX))
            });
        });
    }
    group.finish();
}

/// Shared task queue vs per-thread deques + stealing (gcc vs icc task
/// machinery, paper §VII-B).
fn ablation_taskqueue(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_taskqueue");
    lwt_bench::tune(&mut group);
    for series in [Series::OmpGcc, Series::OmpIcc] {
        group.bench_function(series.label(), |b| {
            b.iter_custom(|iters| {
                let stats = measure(
                    series,
                    Experiment::TaskSingle { n: 256 },
                    2,
                    iters as usize,
                );
                stats.mean.saturating_mul(u32::try_from(iters).unwrap_or(u32::MAX))
            });
        });
    }
    group.finish();
}

/// The raw join mechanisms of Fig. 3, reduced to their primitives:
/// status flag (Argobots), FEB word (Qthreads), channel message (Go),
/// barrier episode (gcc OpenMP / Converse).
fn ablation_join(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_join");
    lwt_bench::tune(&mut group);

    group.bench_function("status_flag_event", |b| {
        b.iter(|| {
            let e = lwt_sync::Event::new();
            e.set();
            e.wait(|| unreachable!("already set"));
        });
    });

    group.bench_function("feb_word", |b| {
        b.iter(|| {
            let cell = lwt_sync::FebCell::new();
            cell.write_ef(0u64, std::hint::spin_loop);
            black_box(cell.read_ff(std::hint::spin_loop));
        });
    });

    group.bench_function("channel_message", |b| {
        b.iter(|| {
            let ch = lwt_sync::Channel::bounded(1);
            ch.try_send(0u64).unwrap();
            black_box(ch.try_recv().unwrap());
        });
    });

    // The cross-thread barrier episode is measured end-to-end by the
    // Converse series of fig3_join (its join IS a barrier episode); on
    // a single-core host a dedicated 2-thread ping-pong bench only
    // measures the OS scheduler. Here we isolate the mechanism's own
    // cost: one participant, one full sense-reversal episode.
    group.bench_function("barrier_episode_mechanism", |b| {
        let barrier = lwt_sync::SenseBarrier::new(1);
        b.iter(|| {
            black_box(barrier.wait(std::thread::yield_now));
        });
    });

    group.finish();
}

/// ULT spawn+join cost vs stack size (stack allocation dominates ULT
/// creation — the reason tasklets win Fig. 2).
fn ablation_stack(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_stack");
    lwt_bench::tune(&mut group);
    for kib in [8usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("spawn_join", kib), &kib, |b, &kib| {
            b.iter_custom(|iters| {
                let rt = lwt_argobots::Runtime::init(lwt_argobots::Config {
                    num_streams: 1,
                    stack_size: StackSize(kib * 1024),
                    ..Default::default()
                });
                let t0 = Instant::now();
                for _ in 0..iters {
                    let handles: Vec<_> = (0..64).map(|_| rt.ult_create(|| ())).collect();
                    for h in handles {
                        h.join();
                    }
                }
                let dt = t0.elapsed();
                rt.shutdown();
                dt
            });
        });
    }
    group.finish();
}

lwt_bench::bench_main!(
    ablation_workunit,
    ablation_pools,
    ablation_policy,
    ablation_taskqueue,
    ablation_join,
    ablation_stack
);
