//! Paper Fig. 8: nested tasks (100 parents × 4 children).

use criterion::{criterion_group, criterion_main, Criterion};
use lwt_microbench::runners::Experiment;

fn fig8(c: &mut Criterion) {
    let parents = lwt_microbench::env_usize("LWT_PARENTS", 100);
    let children = lwt_microbench::env_usize("LWT_CHILDREN", 4);
    lwt_bench::run_figure(
        c,
        "fig8_nested_task",
        Experiment::NestedTask { parents, children },
    );
}

criterion_group!(benches, fig8);
criterion_main!(benches);
