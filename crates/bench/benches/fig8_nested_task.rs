//! Paper Fig. 8: nested tasks (100 parents × 4 children).

use lwt_bench::Harness;
use lwt_microbench::runners::Experiment;

fn fig8(h: &mut Harness) {
    let parents = lwt_microbench::env_usize("LWT_PARENTS", 100);
    let children = lwt_microbench::env_usize("LWT_CHILDREN", 4);
    lwt_bench::run_figure(
        h,
        "fig8_nested_task",
        Experiment::NestedTask { parents, children },
    );
}

lwt_bench::bench_main!(fig8);
