//! Paper Fig. 7: nested parallel for (n × n; paper used 1000 — heavy,
//! so the default here is 64; set LWT_NESTED_N to scale up).

use criterion::{criterion_group, criterion_main, Criterion};
use lwt_microbench::runners::Experiment;

fn fig7(c: &mut Criterion) {
    let n = lwt_microbench::env_usize("LWT_NESTED_N", 64);
    lwt_bench::run_figure(c, "fig7_nested_for", Experiment::NestedFor { n });
}

criterion_group!(benches, fig7);
criterion_main!(benches);
