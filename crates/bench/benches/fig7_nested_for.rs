//! Paper Fig. 7: nested parallel for (n × n; paper used 1000 — heavy,
//! so the default here is 64; set LWT_NESTED_N to scale up).

use lwt_bench::Harness;
use lwt_microbench::runners::Experiment;

fn fig7(h: &mut Harness) {
    let n = lwt_microbench::env_usize("LWT_NESTED_N", 64);
    lwt_bench::run_figure(h, "fig7_nested_for", Experiment::NestedFor { n });
}

lwt_bench::bench_main!(fig7);
