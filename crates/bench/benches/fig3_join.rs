//! Paper Fig. 3: time of joining one work unit per thread.

use lwt_bench::Harness;
use lwt_microbench::runners::Experiment;

fn fig3(h: &mut Harness) {
    lwt_bench::run_figure(h, "fig3_join", Experiment::Join);
}

lwt_bench::bench_main!(fig3);
