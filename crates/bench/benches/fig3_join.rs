//! Paper Fig. 3: time of joining one work unit per thread.

use criterion::{criterion_group, criterion_main, Criterion};
use lwt_microbench::runners::Experiment;

fn fig3(c: &mut Criterion) {
    lwt_bench::run_figure(c, "fig3_join", Experiment::Join);
}

criterion_group!(benches, fig3);
criterion_main!(benches);
