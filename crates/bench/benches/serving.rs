//! HTTP serving load generator: RPS and request-latency percentiles per
//! backend over loopback, written to `results/BENCH_serving.json` with
//! the same counter-delta / utilization machinery the figure benches
//! use.
//!
//! The file-descriptor budget forces a two-process design: this binary
//! re-execs itself as a *client* subprocess (`LWT_SERVING_ROLE=client`),
//! so server and client each get their own fd limit — that is what
//! makes the 10k-concurrent-connection run fit under the 20 000-fd
//! cap. The client connects every socket up front (so all connections
//! are provably open at once), then drives keep-alive GETs from one
//! async task per connection, and prints a single parseable result
//! line the parent merges into the JSON record.
//!
//! Knobs: `LWT_WORKERS` (server pool size), `LWT_SERVING_CONNS` /
//! `LWT_SERVING_REQS` (per-backend sweep shape), `LWT_SERVING_BIG`
//! (connection count for the single big run; 0 skips it).

use std::io::Read as _;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lwt_core::{BackendKind, Glt};
use lwt_net::http;
use lwt_net::TcpStream;
use lwt_sync::SpinLock;

const REQUEST: &[u8] = b"GET /bench HTTP/1.1\r\nHost: b\r\n\r\n";

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------- client

/// Locate the end of an HTTP head and its Content-Length, if the
/// buffer holds a complete head.
fn head_info(buf: &[u8]) -> Option<(usize, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let clen = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    Some((head_end, clen))
}

/// Client-role main: connect `conns` sockets (all held open at once),
/// then run `reqs` keep-alive GETs per connection from async tasks,
/// and print one `SERVING_CLIENT` result line.
fn client_main() -> ! {
    let addr: std::net::SocketAddr = std::env::var("LWT_SERVING_ADDR")
        .expect("LWT_SERVING_ADDR")
        .parse()
        .expect("client addr");
    let conns = env_usize("LWT_SERVING_CONNS", 128);
    let reqs = env_usize("LWT_SERVING_REQS", 2);

    // Phase 1: establish every connection before the first request, in
    // small throttled batches so the listen backlog (128) never
    // overflows into SYN retransmit territory.
    let mut streams = Vec::with_capacity(conns);
    let mut connect_errors = 0usize;
    for i in 0..conns {
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut attempt = 0;
        loop {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    streams.push(s);
                    break;
                }
                Err(_) if attempt < 100 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => {
                    connect_errors += 1;
                    break;
                }
            }
        }
    }

    // Phase 2: one async task per connection, each timing its own
    // request/response cycles.
    let glt = Glt::builder(BackendKind::Go)
        .workers(env_usize("LWT_WORKERS", 2))
        .build();
    let latencies = Arc::new(SpinLock::new(Vec::with_capacity(conns * reqs)));
    let errors = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let tasks: Vec<_> = streams
        .into_iter()
        .map(|stream| {
            let latencies = Arc::clone(&latencies);
            let errors = Arc::clone(&errors);
            glt.spawn_async(async move {
                let mut local = Vec::with_capacity(reqs);
                let mut buf: Vec<u8> = Vec::with_capacity(1024);
                let mut chunk = [0u8; 2048];
                'conn: for _ in 0..reqs {
                    let t0 = Instant::now();
                    if stream.write_all_async(REQUEST).await.is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                        break 'conn;
                    }
                    loop {
                        if let Some((head_end, clen)) = head_info(&buf) {
                            if buf.len() >= head_end + clen {
                                buf.drain(..head_end + clen);
                                local.push(t0.elapsed().as_nanos() as u64);
                                break;
                            }
                        }
                        match stream.read_async(&mut chunk).await {
                            Ok(n) if n > 0 => buf.extend_from_slice(&chunk[..n]),
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                break 'conn;
                            }
                        }
                    }
                }
                latencies.lock().extend(local);
            })
        })
        .collect();
    for t in tasks {
        t.join();
    }
    let elapsed = started.elapsed();
    glt.finalize().expect("client drain");

    let mut lat = std::mem::take(&mut *latencies.lock());
    lat.sort_unstable();
    let pct = |p: usize| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[(lat.len() - 1) * p / 100]
        }
    };
    println!(
        "SERVING_CLIENT requests={} elapsed_ns={} p50_ns={} p99_ns={} errors={}",
        lat.len(),
        elapsed.as_nanos(),
        pct(50),
        pct(99),
        errors.load(Ordering::Relaxed) + connect_errors,
    );
    std::process::exit(0);
}

// ---------------------------------------------------------------- server

struct RunResult {
    id: String,
    conns: usize,
    requests: u64,
    elapsed_ns: u64,
    rps: f64,
    p50_ns: u64,
    p99_ns: u64,
    errors: u64,
    peak_active: usize,
    metrics: lwt_metrics::registry::CounterSnapshot,
    utilization: lwt_metrics::Utilization,
}

/// Parse the client's `SERVING_CLIENT k=v ...` line.
fn parse_client_line(out: &str) -> Option<[u64; 5]> {
    let line = out.lines().find(|l| l.starts_with("SERVING_CLIENT "))?;
    let mut vals = [0u64; 5];
    for (slot, key) in ["requests", "elapsed_ns", "p50_ns", "p99_ns", "errors"]
        .iter()
        .enumerate()
    {
        let field = line
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))?;
        vals[slot] = field.parse().ok()?;
    }
    Some(vals)
}

/// One serving run: HTTP server on `kind`, client re-exec'd as a
/// subprocess, peak concurrent connections sampled while it runs.
fn run_serving(kind: BackendKind, conns: usize, reqs: usize) -> RunResult {
    let workers = env_usize("LWT_WORKERS", 2);
    let glt = Glt::builder(kind).workers(workers).build();
    let listener = lwt_net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = http::serve(&glt, listener, |_req| {
        http::Response::ok("hello from the serving bench\n")
    })
    .expect("serve");
    let addr = server.addr();

    let counters_before = lwt_metrics::registry::snapshot().counters;
    let util_before = lwt_metrics::utilization();

    let mut child = Command::new(std::env::current_exe().expect("current_exe"))
        .env("LWT_SERVING_ROLE", "client")
        .env("LWT_SERVING_ADDR", addr.to_string())
        .env("LWT_SERVING_CONNS", conns.to_string())
        .env("LWT_SERVING_REQS", reqs.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn client");

    // Sample peak concurrency while the client runs. The client's
    // one-line stdout cannot fill the pipe, so reading after exit is
    // deadlock-free.
    let mut peak_active = 0;
    loop {
        peak_active = peak_active.max(server.active_connections());
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "client exited with {status}");
                break;
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("piped stdout")
        .read_to_string(&mut out)
        .expect("read client output");
    let [requests, elapsed_ns, p50_ns, p99_ns, errors] =
        parse_client_line(&out).expect("client result line");

    let metrics = lwt_metrics::registry::snapshot()
        .counters
        .delta(&counters_before);
    let utilization = lwt_metrics::utilization()
        .delta(&util_before)
        .merged_by_label();

    server.shutdown();
    glt.finalize().expect("server drain");

    let rps = if elapsed_ns == 0 {
        0.0
    } else {
        requests as f64 / (elapsed_ns as f64 / 1e9)
    };
    eprintln!(
        "serving/{kind}/c{conns}: {requests} reqs, {rps:.0} rps, \
         p50 {:.2} ms, p99 {:.2} ms, peak {peak_active} conns, {errors} errors",
        p50_ns as f64 / 1e6,
        p99_ns as f64 / 1e6,
    );
    RunResult {
        id: format!("serving/{kind}/c{conns}"),
        conns,
        requests,
        elapsed_ns,
        rps,
        p50_ns,
        p99_ns,
        errors,
        peak_active,
        metrics,
        utilization,
    }
}

fn write_results(results: &[RunResult]) {
    let mut json = String::from("{\n  \"group\": \"serving\",\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let m = &r.metrics;
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"conns\": {}, \"requests\": {}, \
             \"elapsed_ns\": {}, \"rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"errors\": {}, \"peak_active\": {}, \
             \"metrics\": {{\"ults_created\": {}, \"yields\": {}, \
             \"feb_blocks\": {}, \"feb_wakes\": {}, \"async_polls\": {}, \
             \"async_wakes\": {}, \"io_registrations\": {}, \"io_events\": {}, \
             \"io_wakes\": {}, \"faults_injected\": {}}}, \
             \"utilization\": {}}}{comma}\n",
            r.id,
            r.conns,
            r.requests,
            r.elapsed_ns,
            r.rps,
            r.p50_ns,
            r.p99_ns,
            r.errors,
            r.peak_active,
            m.ults_created,
            m.yields,
            m.feb_blocks,
            m.feb_wakes,
            m.async_polls,
            m.async_wakes,
            m.io_registrations,
            m.io_events,
            m.io_wakes,
            m.faults_injected,
            r.utilization.to_json(),
        ));
    }
    json.push_str("  ]\n}\n");
    // Cargo runs benches with cwd = the package dir; anchor to the
    // workspace root like the harness does so the record lands next to
    // the committed BENCH_*.json files.
    let out_dir = std::env::var("LWT_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        });
    std::fs::create_dir_all(&out_dir).expect("results dir");
    let path = out_dir.join("BENCH_serving.json");
    std::fs::write(&path, json).expect("write results");
    eprintln!("wrote {} ({} records)", path.display(), results.len());
}

fn main() {
    if std::env::var("LWT_SERVING_ROLE").as_deref() == Ok("client") {
        client_main();
    }
    lwt_metrics::set_accounting(true);

    let conns = env_usize("LWT_SERVING_CONNS", 256);
    let reqs = env_usize("LWT_SERVING_REQS", 4);
    let big = env_usize("LWT_SERVING_BIG", 10_000);

    let mut results = Vec::new();
    for kind in BackendKind::ALL {
        results.push(run_serving(kind, conns, reqs));
    }
    // The headline run: >= 10k concurrent connections on one backend.
    // Go hosts it — the connection-per-task model is the one its
    // scheduler is shaped for — with one request per connection so the
    // run measures concurrency, not pipelining.
    if big > 0 {
        results.push(run_serving(BackendKind::Go, big, 1));
    }
    write_results(&results);
}
