//! Paper Fig. 6: 1,000 tasks created into a parallel region.

use criterion::{criterion_group, criterion_main, Criterion};
use lwt_microbench::runners::Experiment;

fn fig6(c: &mut Criterion) {
    let n = lwt_microbench::env_usize("LWT_N", 1000);
    lwt_bench::run_figure(c, "fig6_task_parallel", Experiment::TaskParallel { n });
}

criterion_group!(benches, fig6);
criterion_main!(benches);
