//! Paper Fig. 6: 1,000 tasks created into a parallel region.

use lwt_bench::Harness;
use lwt_microbench::runners::Experiment;

fn fig6(h: &mut Harness) {
    let n = lwt_microbench::env_usize("LWT_N", 1000);
    lwt_bench::run_figure(h, "fig6_task_parallel", Experiment::TaskParallel { n });
}

lwt_bench::bench_main!(fig6);
