//! Async-bridge study: the spawn/join round-trip cost of the three
//! execution models the unified API now offers — stackful ULTs
//! (`ult_create`), stackless run-to-completion tasklets
//! (`tasklet_create`), and stackless futures (`spawn_async`) — on every
//! backend, plus the wake→requeue→repoll cycle and the `spawn_blocking`
//! OS-thread handoff.
//!
//! The interesting comparison is the gap between `tasklet_create` and
//! `spawn_async`: both are stackless, but the future pays for its waker
//! plumbing (task-cell state machine + vtable) even when it completes
//! on the first poll. The `rewake` series then prices what that
//! plumbing buys — a unit that can leave the worker and come back.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use lwt_bench::{black_box, BenchmarkId, Harness};
use lwt_core::{BackendKind, Glt};

/// Work units spawned (and joined) per timed iteration.
const BATCH: usize = 256;

/// Self-waking future: returns `Pending` (after `wake_by_ref`) the
/// first `remaining` polls, exercising the full reschedule cycle.
struct YieldSome {
    remaining: usize,
    value: usize,
}

impl Future for YieldSome {
    type Output = usize;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        let this = self.get_mut();
        if this.remaining == 0 {
            Poll::Ready(this.value)
        } else {
            this.remaining -= 1;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

const EXPECTED: usize = BATCH * (BATCH - 1) / 2;

fn spawn_paths(h: &mut Harness) {
    let mut group = h.benchmark_group("async_bridge");
    lwt_bench::tune(&mut group);

    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind).workers(2).build();

        group.bench_with_input(BenchmarkId::new("ult_create", kind), &glt, |b, glt| {
            b.iter(|| {
                let hs: Vec<_> = (0..BATCH).map(|i| glt.ult_create(move || i)).collect();
                let sum: usize = hs.into_iter().map(|h| h.join()).sum();
                assert_eq!(black_box(sum), EXPECTED);
            });
        });

        group.bench_with_input(BenchmarkId::new("tasklet_create", kind), &glt, |b, glt| {
            b.iter(|| {
                let hs: Vec<_> = (0..BATCH).map(|i| glt.tasklet_create(move || i)).collect();
                let sum: usize = hs.into_iter().map(|h| h.join()).sum();
                assert_eq!(black_box(sum), EXPECTED);
            });
        });

        // Ready on the first poll: the pure bridge overhead (task cell
        // allocation, state machine, waker vtable) with zero rewakes.
        group.bench_with_input(BenchmarkId::new("spawn_async", kind), &glt, |b, glt| {
            b.iter(|| {
                let hs: Vec<_> = (0..BATCH).map(|i| glt.spawn_async(async move { i })).collect();
                let sum: usize = hs.into_iter().map(|h| h.join()).sum();
                assert_eq!(black_box(sum), EXPECTED);
            });
        });

        // Four self-wakes per future: prices the wake→requeue→repoll
        // cycle through the backend's ready queue.
        group.bench_with_input(
            BenchmarkId::new("spawn_async_rewake4", kind),
            &glt,
            |b, glt| {
                b.iter(|| {
                    let hs: Vec<_> = (0..BATCH)
                        .map(|i| {
                            glt.spawn_async(YieldSome {
                                remaining: 4,
                                value: i,
                            })
                        })
                        .collect();
                    let sum: usize = hs.into_iter().map(|h| h.join()).sum();
                    assert_eq!(black_box(sum), EXPECTED);
                });
            },
        );

        glt.finalize().expect("clean drain");
    }
    group.finish();
}

fn blocking_handoff(h: &mut Harness) {
    let mut group = h.benchmark_group("async_bridge_blocking");
    lwt_bench::tune(&mut group);

    // The blocking pool is process-global and backend-independent; one
    // backend suffices to price the inject→park/unpark→fulfill path.
    let glt = Glt::builder(BackendKind::Argobots).workers(2).build();
    group.bench_with_input(BenchmarkId::new("spawn_blocking", 64usize), &glt, |b, glt| {
        b.iter(|| {
            let hs: Vec<_> = (0..64).map(|i| glt.spawn_blocking(move || i)).collect();
            let sum: usize = hs.into_iter().map(|h| h.join()).sum();
            assert_eq!(black_box(sum), 64 * 63 / 2);
        });
    });
    glt.finalize().expect("clean drain");
    group.finish();
}

lwt_bench::bench_main!(spawn_paths, blocking_handoff);
