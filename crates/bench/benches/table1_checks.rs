//! Table I as a benchmark target: the feature matrix is static data,
//! so this target measures the *price of the features* instead — the
//! yield path of each library that offers one, and Argobots' unique
//! `yield_to` against a plain yield (the Table I row only Argobots
//! checks).

use lwt_bench::{BenchmarkId, Harness};
use lwt_core::{BackendKind, Glt};

/// The backend's own yield, guarded exactly like `Glt::yield_now`
/// (Converse GLT units are messages, which must not yield).
fn backend_yield(kind: BackendKind) {
    match kind {
        BackendKind::Argobots => {
            if lwt_argobots::in_ult() {
                lwt_argobots::yield_now();
            }
        }
        BackendKind::Go => {}
        _ => {
            if lwt_ultcore::in_ult() {
                lwt_ultcore::yield_now();
            }
        }
    }
}

/// One ULT performing `YIELDS` yields; measures the per-yield cost of
/// each backend's reschedule path.
fn yield_cost(h: &mut Harness) {
    const YIELDS: usize = 256;
    let mut group = h.benchmark_group("table1_yield_cost");
    lwt_bench::tune(&mut group);
    for kind in BackendKind::ALL {
        // Go's Table I row has no yield; skip it (its channel ops embed
        // the reschedule instead).
        if kind == BackendKind::Go {
            continue;
        }
        group.bench_function(BenchmarkId::new(kind.name(), YIELDS), |b| {
            b.iter_custom(|iters| {
                let glt = Glt::builder(kind).workers(1).build();
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    let h = glt.ult_create(move || {
                        for _ in 0..YIELDS {
                            backend_yield(kind);
                        }
                    });
                    h.join();
                }
                let dt = t0.elapsed();
                glt.finalize().expect("clean drain");
                dt
            });
        });
    }
    group.finish();
}

/// Argobots `yield_to` (direct transfer) vs `yield` (through the
/// scheduler) — the feature the paper calls out as unique.
fn yield_to_vs_yield(h: &mut Harness) {
    const HOPS: usize = 128;
    let mut group = h.benchmark_group("table1_yield_to");
    lwt_bench::tune(&mut group);

    group.bench_function("abt_yield_through_scheduler", |b| {
        b.iter_custom(|iters| {
            let rt = lwt_argobots::Runtime::init(lwt_argobots::Config {
                num_streams: 1,
                ..Default::default()
            });
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                let a = rt.ult_create(|| {
                    for _ in 0..HOPS {
                        lwt_argobots::yield_now();
                    }
                });
                let bq = rt.ult_create(|| {
                    for _ in 0..HOPS {
                        lwt_argobots::yield_now();
                    }
                });
                a.join();
                bq.join();
            }
            let dt = t0.elapsed();
            rt.shutdown();
            dt
        });
    });

    group.bench_function("abt_yield_to_direct", |b| {
        b.iter_custom(|iters| {
            let rt = lwt_argobots::Runtime::init(lwt_argobots::Config {
                num_streams: 1,
                ..Default::default()
            });
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                let rt2 = rt.clone();
                let driver = rt.ult_create(move || {
                    // Spawn a partner, then ping-pong into it directly.
                    let partner = rt2.ult_create(|| {
                        for _ in 0..HOPS {
                            lwt_argobots::yield_now();
                        }
                    });
                    for _ in 0..HOPS {
                        lwt_argobots::yield_to(&partner);
                    }
                    partner.join();
                });
                driver.join();
            }
            let dt = t0.elapsed();
            rt.shutdown();
            dt
        });
    });

    group.finish();
}

lwt_bench::bench_main!(yield_cost, yield_to_vs_yield);
