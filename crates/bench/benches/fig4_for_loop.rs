//! Paper Fig. 4: execution time of a 1,000-iteration for loop (Sscal).

use lwt_bench::Harness;
use lwt_microbench::runners::Experiment;

fn fig4(h: &mut Harness) {
    let n = lwt_microbench::env_usize("LWT_N", 1000);
    lwt_bench::run_figure(h, "fig4_for_loop", Experiment::ForLoop { n });
}

lwt_bench::bench_main!(fig4);
