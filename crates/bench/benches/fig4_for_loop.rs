//! Paper Fig. 4: execution time of a 1,000-iteration for loop (Sscal).

use criterion::{criterion_group, criterion_main, Criterion};
use lwt_microbench::runners::Experiment;

fn fig4(c: &mut Criterion) {
    let n = lwt_microbench::env_usize("LWT_N", 1000);
    lwt_bench::run_figure(c, "fig4_for_loop", Experiment::ForLoop { n });
}

criterion_group!(benches, fig4);
criterion_main!(benches);
