//! Paper Fig. 2: time of creating one work unit per thread.

use criterion::{criterion_group, criterion_main, Criterion};
use lwt_microbench::runners::Experiment;

fn fig2(c: &mut Criterion) {
    lwt_bench::run_figure(c, "fig2_create", Experiment::Create);
}

criterion_group!(benches, fig2);
criterion_main!(benches);
