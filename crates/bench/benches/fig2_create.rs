//! Paper Fig. 2: time of creating one work unit per thread.

use lwt_bench::Harness;
use lwt_microbench::runners::Experiment;

fn fig2(h: &mut Harness) {
    lwt_bench::run_figure(h, "fig2_create", Experiment::Create);
}

lwt_bench::bench_main!(fig2);
