//! # lwt-bench — hermetic benchmark harness
//!
//! One bench target per table/figure of the paper
//! (`benches/fig2_create.rs` … `benches/fig8_nested_task.rs`,
//! `benches/table1_checks.rs`) plus the ablation benches called out in
//! `DESIGN.md` §5 (`benches/ablations.rs`), all built on the in-repo
//! [`harness`] (warmup + N samples + median/p99 + `BENCH_*.json`
//! output) — no Criterion, no external crates, per the workspace's
//! hermetic-build policy.

#![warn(missing_docs)]

use std::time::Duration;

use lwt_microbench::runners::{measure, Experiment, Series};

pub mod harness;

pub use harness::{black_box, BenchStats, BenchmarkId, Bencher, Group, Harness};

/// Thread counts used by the bench sweeps: a compact subset that
/// still exposes the scaling trends on small CI machines. Override via
/// `LWT_THREADS`.
#[must_use]
pub fn bench_threads() -> Vec<usize> {
    std::env::var("LWT_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// Tighten a group for the many-point figure sweeps (9 series ×
/// threads): small sample counts, short windows.
pub fn tune(group: &mut Group<'_>) {
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));
}

/// Benchmark one figure: every series × every thread count, using the
/// exact measurement code behind the `lwt-microbench` figure binaries.
pub fn run_figure(h: &mut Harness, figure: &str, experiment: Experiment) {
    let mut group = h.benchmark_group(figure);
    tune(&mut group);
    for &threads in &bench_threads() {
        for series in Series::ALL {
            group.bench_with_input(
                BenchmarkId::new(series.label(), threads),
                &threads,
                |b, &t| {
                    b.iter_custom(|iters| {
                        let stats = measure(series, experiment, t, iters as usize);
                        stats.mean.saturating_mul(u32::try_from(iters).unwrap_or(u32::MAX))
                    });
                },
            );
        }
    }
    group.finish();
}
