//! Criterion-free timing harness: warmup, fixed-count sampling,
//! median/p99 summaries, and machine-readable JSON output.
//!
//! The protocol follows the paper's measurement discipline (repeat,
//! aggregate, report dispersion) at benchmark-harness scale: every
//! bench is calibrated during a warmup window, then timed as `N`
//! samples of `k` iterations each, and summarized by median and p99 —
//! the two statistics the Task Bench literature leans on for
//! overhead measurements, which are robust against scheduler noise in
//! a way a bare mean is not.
//!
//! Results are printed per bench and written as one
//! `BENCH_<group>.json` file per group (default under
//! `target/lwt-bench/`, override with `LWT_BENCH_DIR`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use lwt_metrics::registry::CounterSnapshot;

pub use std::hint::black_box;

/// Two-part benchmark id rendered as `label/param` — the shape
/// Criterion's `BenchmarkId::new` produced, kept so bench files read
/// the same.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a label and a parameter (`label/param`).
    pub fn new(label: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{label}/{param}"),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(b: BenchmarkId) -> String {
        b.id
    }
}

/// Summary of one bench's per-iteration samples.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Median per-iteration time.
    pub median: Duration,
    /// 99th-percentile per-iteration time.
    pub p99: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of samples aggregated.
    pub samples: usize,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
}

impl BenchStats {
    fn from_samples(mut per_iter: Vec<Duration>, iters_per_sample: u64) -> BenchStats {
        assert!(!per_iter.is_empty(), "no samples");
        per_iter.sort_unstable();
        let n = per_iter.len();
        let median = if n % 2 == 0 {
            (per_iter[n / 2 - 1] + per_iter[n / 2]) / 2
        } else {
            per_iter[n / 2]
        };
        let p99_idx = (((n as f64) * 0.99).ceil() as usize).clamp(1, n) - 1;
        let total: Duration = per_iter.iter().sum();
        BenchStats {
            median,
            p99: per_iter[p99_idx],
            mean: total / u32::try_from(n).expect("sample count fits u32"),
            min: per_iter[0],
            max: per_iter[n - 1],
            samples: n,
            iters_per_sample,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[derive(Debug)]
struct BenchRecord {
    id: String,
    stats: BenchStats,
    /// Runtime-counter movement across the whole bench (warmup +
    /// samples): what the scheduler *did*, next to how long it took.
    metrics: CounterSnapshot,
    /// Per-worker time accounting movement across the bench: where
    /// the workers' wall time went while it ran.
    utilization: lwt_metrics::Utilization,
}

#[derive(Debug)]
struct GroupReport {
    name: String,
    records: Vec<BenchRecord>,
}

/// Top-level harness: owns every group's results and writes the JSON
/// reports in [`Harness::finish`].
#[derive(Debug)]
pub struct Harness {
    out_dir: PathBuf,
    reports: Vec<GroupReport>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Harness writing under `LWT_BENCH_DIR` (default
    /// `<workspace>/target/lwt-bench`).
    #[must_use]
    pub fn new() -> Self {
        let out_dir = std::env::var("LWT_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| {
            // Cargo runs benches with cwd = the package dir; anchor to
            // the workspace root so every target writes to one place.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
                .join("lwt-bench")
        });
        // Worker time accounting rides along with every bench run so
        // each BENCH_*.json carries a utilization table. Cheap: a
        // relaxed fetch_add per state transition, none on spawn paths.
        lwt_metrics::set_accounting(true);
        Harness {
            out_dir,
            reports: Vec::new(),
        }
    }

    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        eprintln!("== {name}");
        Group {
            harness: self,
            report: GroupReport {
                name: name.to_string(),
                records: Vec::new(),
            },
            samples: env_u64("LWT_BENCH_SAMPLES", 15) as usize,
            warmup: Duration::from_millis(env_u64("LWT_BENCH_WARMUP_MS", 300)),
            measurement: Duration::from_millis(env_u64("LWT_BENCH_TIME_MS", 1500)),
        }
    }

    /// Write one `BENCH_<group>.json` per group and print their paths.
    pub fn finish(self) {
        if self.reports.is_empty() {
            return;
        }
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("lwt-bench: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        for report in &self.reports {
            let path = self.out_dir.join(format!("BENCH_{}.json", report.name));
            match std::fs::write(&path, render_json(report)) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("lwt-bench: cannot write {}: {e}", path.display()),
            }
        }
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(report: &GroupReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"group\": \"{}\",", json_escape(&report.name));
    let _ = writeln!(out, "  \"benches\": [");
    for (i, rec) in report.records.iter().enumerate() {
        let s = rec.stats;
        let comma = if i + 1 == report.records.len() { "" } else { "," };
        let m = rec.metrics;
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"p99_ns\": {}, \
             \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"samples\": {}, \"iters_per_sample\": {}, \
             \"metrics\": {{\"ults_created\": {}, \"tasklets_created\": {}, \
             \"yields\": {}, \"steals\": {}, \"steal_attempts\": {}, \
             \"os_threads_spawned\": {}, \"feb_blocks\": {}, \
             \"messages_executed\": {}, \"nested_regions\": {}, \
             \"stack_cache_hits\": {}, \"stack_cache_misses\": {}, \
             \"queue_contention\": {}}}, \
             \"utilization\": {}}}{comma}",
            json_escape(&rec.id),
            s.median.as_nanos(),
            s.p99.as_nanos(),
            s.mean.as_nanos(),
            s.min.as_nanos(),
            s.max.as_nanos(),
            s.samples,
            s.iters_per_sample,
            m.ults_created,
            m.tasklets_created,
            m.yields,
            m.steal_hits,
            m.steal_attempts,
            m.os_threads_spawned,
            m.feb_blocks,
            m.messages_executed,
            m.nested_regions,
            m.stack_cache_hits,
            m.stack_cache_misses,
            m.queue_contention,
            rec.utilization.to_json(),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// A group of related benches sharing sampling parameters.
#[derive(Debug)]
pub struct Group<'h> {
    harness: &'h mut Harness,
    report: GroupReport,
    samples: usize,
    warmup: Duration,
    measurement: Duration,
}

impl Group<'_> {
    /// Number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Total measurement window per bench, split evenly across the
    /// samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Calibration window before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Run one bench. The closure receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_custom`] exactly once.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            warmup: self.warmup,
            sample_time: self.measurement / u32::try_from(self.samples.max(1)).unwrap_or(1),
            stats: None,
        };
        let before = lwt_metrics::registry::snapshot().counters;
        let util_before = lwt_metrics::utilization();
        f(&mut b);
        let metrics = lwt_metrics::registry::snapshot().counters.delta(&before);
        // Merge per-generation timelines by label: a bench spinning a
        // fresh pool per sample would otherwise report hundreds of
        // rows for what is logically one worker.
        let utilization = lwt_metrics::utilization().delta(&util_before).merged_by_label();
        let stats = b
            .stats
            .unwrap_or_else(|| panic!("bench '{id}' never called iter/iter_custom"));
        eprintln!(
            "  {id}: median {}  p99 {}  (n={}, k={})",
            fmt_duration(stats.median),
            fmt_duration(stats.p99),
            stats.samples,
            stats.iters_per_sample,
        );
        self.report.records.push(BenchRecord {
            id,
            stats,
            metrics,
            utilization,
        });
    }

    /// [`Group::bench_function`] with an input threaded through —
    /// Criterion's `bench_with_input` shape.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<String>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Record the group's results into the harness.
    pub fn finish(self) {
        self.harness.reports.push(self.report);
    }
}

/// Runs the measured closure: calibrates iteration count during
/// warmup, then times `samples` batches.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warmup: Duration,
    sample_time: Duration,
    stats: Option<BenchStats>,
}

impl Bencher {
    /// Time `f` itself. The harness picks a per-sample iteration count
    /// `k` from the warmup rate, then records `samples` measurements
    /// of `k` calls each.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + calibration: run until the window closes.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let k = ((self.sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        let mut per_iter_samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..k {
                black_box(f());
            }
            per_iter_samples.push(t0.elapsed() / u32::try_from(k).unwrap_or(u32::MAX));
        }
        self.stats = Some(BenchStats::from_samples(per_iter_samples, k));
    }

    /// Time with a custom measurement routine: `f(k)` must perform `k`
    /// iterations and return the total elapsed time, like Criterion's
    /// `iter_custom`. Setup inside `f` is excluded only if `f`
    /// excludes it from the returned duration.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        // Calibrate from a single-iteration probe (also the warmup).
        let probe = f(1).max(Duration::from_nanos(1));
        let k = (self.sample_time.as_nanos() / probe.as_nanos()).max(1) as u64;
        let mut per_iter_samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let total = f(k);
            per_iter_samples.push(total / u32::try_from(k).unwrap_or(u32::MAX));
        }
        self.stats = Some(BenchStats::from_samples(per_iter_samples, k));
    }
}

/// Generate `fn main()` for a `harness = false` bench target: build a
/// [`Harness`], run each listed bench function against it, then write
/// the reports.
#[macro_export]
macro_rules! bench_main {
    ($($func:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::Harness::new();
            $($func(&mut harness);)+
            harness.finish();
        }
    };
}
