//! Concurrent multi-worker ring test: several named threads emit into
//! the shared registry at once; the merged view must show one ring per
//! worker, distinct worker ids, monotone per-worker timestamps, and
//! no lost events.

use lwt_metrics::{registry, EventKind};

#[test]
fn concurrent_workers_merge_with_monotone_timestamps() {
    registry::set_tracing(true);

    const WORKERS: usize = 4;
    const EVENTS: u64 = 500; // < default ring capacity: nothing drops

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            std::thread::Builder::new()
                .name(format!("merge-w{w}"))
                .spawn_scoped(s, move || {
                    for i in 0..EVENTS {
                        registry::emit(EventKind::UltRun, i);
                        if i % 7 == 0 {
                            registry::emit(EventKind::Yield, w as u64);
                        }
                    }
                })
                .expect("spawn worker");
        }
    });

    let rings: Vec<_> = registry::rings()
        .into_iter()
        .filter(|r| r.label().starts_with("merge-w"))
        .collect();
    assert_eq!(rings.len(), WORKERS, "one ring per worker thread");

    let mut ids: Vec<_> = rings.iter().map(|r| r.worker()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), WORKERS, "worker ids must be distinct");

    let mut total = 0u64;
    for ring in &rings {
        let events = ring.snapshot();
        assert_eq!(ring.dropped(), 0);
        assert!(
            events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "per-worker timestamps must be monotone ({})",
            ring.label()
        );
        let yields = events.iter().filter(|e| e.kind == EventKind::Yield).count() as u64;
        let runs = events.iter().filter(|e| e.kind == EventKind::UltRun).count() as u64;
        assert_eq!(runs, EVENTS);
        assert_eq!(yields, EVENTS.div_ceil(7));
        total += events.len() as u64;
    }
    assert_eq!(total, WORKERS as u64 * (EVENTS + EVENTS.div_ceil(7)));
}
