//! lwt-check property: for any random sequence of instrument
//! operations, the `scoped` snapshot deltas equal the per-kind
//! operation counts, and the calling thread's ring grows by exactly
//! the number of emitted events.

use lwt_check::{check, prop_assert, range, vec_of};
use lwt_metrics::{registry, EventKind, COUNTERS};

fn rings_pushed_total() -> u64 {
    registry::rings().iter().map(|r| r.pushed()).sum()
}

#[test]
fn snapshot_deltas_equal_emitted_counts() {
    registry::set_tracing(true);

    // Op encoding: 0 = spawn, 1 = yield, 2 = steal attempt, 3 = FEB
    // block. Each op bumps its counter and emits the matching event.
    check(
        "snapshot deltas equal emitted event counts",
        48,
        vec_of(range(0u8..4), 0..64),
        |ops| {
            let pushed_before = rings_pushed_total();
            let ((), snap) = registry::scoped(|| {
                for &op in ops {
                    match op {
                        0 => {
                            COUNTERS.ults_created.inc();
                            registry::emit(EventKind::UltSpawn, 0);
                        }
                        1 => {
                            COUNTERS.yields.inc();
                            registry::emit(EventKind::Yield, 0);
                        }
                        2 => {
                            COUNTERS.steal_attempts.inc();
                            registry::emit(EventKind::StealAttempt, 0);
                        }
                        _ => {
                            COUNTERS.feb_blocks.inc();
                            registry::emit(EventKind::FebBlock, 0);
                        }
                    }
                }
            });
            let want = |k: u8| ops.iter().filter(|&&op| op == k).count() as u64;
            prop_assert!(
                snap.counters.ults_created == want(0),
                "ults_created {} != {}",
                snap.counters.ults_created,
                want(0)
            );
            prop_assert!(
                snap.counters.yields == want(1),
                "yields {} != {}",
                snap.counters.yields,
                want(1)
            );
            prop_assert!(
                snap.counters.steal_attempts == want(2),
                "steal_attempts {} != {}",
                snap.counters.steal_attempts,
                want(2)
            );
            prop_assert!(
                snap.counters.feb_blocks == want(3),
                "feb_blocks {} != {}",
                snap.counters.feb_blocks,
                want(3)
            );
            let emitted = rings_pushed_total() - pushed_before;
            prop_assert!(
                emitted == ops.len() as u64,
                "ring grew by {emitted}, emitted {}",
                ops.len()
            );
            Ok(())
        },
    );
}
