//! `registry::scoped` under concurrent writers: the reset→run→snapshot
//! window must read exactly its own workload even when many test
//! threads race to open scoped sections, and ring wraparound inside a
//! section must surface in that section's `ring_dropped`.

use lwt_metrics::registry::{scoped, COUNTERS};
use lwt_metrics::{EventKind, EventRing};

/// Eight threads concurrently run differently-sized workloads through
/// `scoped`. The internal lock serializes the sections, so each
/// snapshot must report its own thread's counts — never a neighbor's
/// increments and never a stale pre-reset residue.
#[test]
fn concurrent_scoped_sections_read_their_own_workload() {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                s.spawn(move || {
                    let n = (t + 1) * 100_u64;
                    let ((), snap) = scoped(|| {
                        for _ in 0..n {
                            COUNTERS.ults_created.inc();
                        }
                        COUNTERS.yields.inc();
                        COUNTERS.steal_attempts.inc();
                        COUNTERS.steal_attempts.inc();
                    });
                    (n, snap)
                })
            })
            .collect();
        for h in handles {
            let (n, snap) = h.join().expect("scoped worker panicked");
            assert_eq!(snap.counters.ults_created, n, "foreign increments leaked in");
            assert_eq!(snap.counters.yields, 1);
            assert_eq!(snap.counters.steal_attempts, 2);
        }
    });
}

/// Overwriting a full ring bumps the process-wide `ring_dropped`
/// counter, and a scoped section observes exactly its own lossage.
#[test]
fn ring_wraparound_is_counted_in_scoped_snapshot() {
    let ((), snap) = scoped(|| {
        let ring = EventRing::new(7, "wrap-probe", 8);
        for i in 0..8 + 5 {
            ring.push(i, EventKind::Yield, i, 0);
        }
        assert_eq!(ring.pushed(), 13);
        assert_eq!(ring.dropped(), 5);
        assert_eq!(ring.snapshot().len(), 8, "only the newest window is retained");
    });
    assert_eq!(snap.counters.ring_dropped, 5);
}

/// Back-to-back sections do not accumulate: the second scope's reset
/// wipes what the first one counted.
#[test]
fn scoped_sections_do_not_leak_forward() {
    let ((), first) = scoped(|| {
        for _ in 0..50 {
            COUNTERS.feb_blocks.inc();
        }
    });
    assert_eq!(first.counters.feb_blocks, 50);
    let ((), second) = scoped(|| COUNTERS.feb_wakes.inc());
    assert_eq!(second.counters.feb_blocks, 0, "scope must reset");
    assert_eq!(second.counters.feb_wakes, 1);
}
