//! The tracing gate: with tracing off, `emit` must leave no trace
//! (no ring registration, no events) and `export` must be a no-op;
//! once enabled, emitted events must round-trip into the rendered
//! Chrome-trace JSON.
//!
//! Own integration binary: this test owns the process-global flag.

use lwt_metrics::{registry, trace, EventKind};

#[test]
fn tracing_gate_controls_emission_and_export() {
    // Phase 1: off — emits are invisible and export declines.
    registry::set_tracing(false);
    assert!(!registry::tracing_enabled());
    registry::emit(EventKind::UltSpawn, 0);
    registry::emit(EventKind::Yield, 0);
    let pushed: u64 = registry::rings().iter().map(|r| r.pushed()).sum();
    assert_eq!(pushed, 0, "disabled emit must not touch any ring");
    assert_eq!(registry::timestamp_if_tracing(), 0);
    assert!(trace::export("gated").expect("export").is_none());

    // Phase 2: on — events land and render as valid trace JSON.
    registry::set_tracing(true);
    registry::emit(EventKind::UltSpawn, 7);
    registry::emit(EventKind::UltRun, 0);
    registry::emit(EventKind::EsStop, 3);
    let rings = registry::rings();
    let pushed: u64 = rings.iter().map(|r| r.pushed()).sum();
    assert_eq!(pushed, 3);

    let json = trace::render(&rings);
    for needle in [
        "\"traceEvents\"",
        "\"name\":\"UltSpawn\"",
        "\"name\":\"UltRun\"",
        "\"name\":\"EsStop\"",
        "\"ph\":\"i\"",
        "\"ph\":\"M\"",
        "\"pid\":1",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }

    // write_to round-trips through the filesystem.
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("trace_gated.json");
    trace::write_to(&path).expect("write trace");
    let on_disk = std::fs::read_to_string(&path).expect("read trace back");
    assert_eq!(on_disk, json);
}
