//! Process-wide metrics registry: the well-known counter set, the
//! latency histograms, per-thread event rings, and the snapshot API.
//!
//! Everything here is `static` — runtimes instrument unconditionally
//! against [`COUNTERS`] (relaxed increments, always on) and call
//! [`emit`] for ring events (one relaxed flag load when tracing is
//! off). Tests and benches read the other side through
//! [`snapshot`] / [`scoped`].
//!
//! This module uses `std::sync::Mutex` (never `lwt-sync` primitives)
//! so the dependency arrow always points *into* this crate.

use crate::clock;
use crate::event::EventKind;
use crate::histogram::{Histogram, HistogramSummary};
use crate::ring::EventRing;
use crate::{Counter, Gauge};
use std::cell::OnceCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

// ---------------------------------------------------------------------------
// Well-known counters
// ---------------------------------------------------------------------------

/// The fixed, runtime-wide counter vocabulary. One instance lives in
/// [`COUNTERS`]; every runtime crate increments the same fields so a
/// snapshot compares runtimes on equal terms.
#[derive(Debug, Default)]
pub struct Counters {
    /// ULTs created (any runtime's spawn path).
    pub ults_created: Counter,
    /// Stackless tasklets created (argobots).
    pub tasklets_created: Counter,
    /// Voluntary yields back to a scheduler.
    pub yields: Counter,
    /// Steal probes against a victim's deque.
    pub steal_attempts: Counter,
    /// Steal probes that found work.
    pub steal_hits: Counter,
    /// OS threads spawned (execution streams, shepherds/workers,
    /// processors, openmp team members…).
    pub os_threads_spawned: Counter,
    /// Joins that blocked on an empty full/empty bit (qthreads).
    pub feb_blocks: Counter,
    /// Blocked FEB readers that resumed (qthreads).
    pub feb_wakes: Counter,
    /// Converse messages executed on a processor's own stack.
    pub messages_executed: Counter,
    /// Nested parallel regions opened (openmp).
    pub nested_regions: Counter,
    /// Live size of the icc-style nested thread pool (openmp).
    pub nested_pool_size: Gauge,
    /// Fiber stacks served from the recycle cache (lwt-fiber).
    pub stack_cache_hits: Counter,
    /// Fiber stacks that had to be freshly allocated (lwt-fiber).
    pub stack_cache_misses: Counter,
    /// Ready-queue operations that hit contention: a Chase-Lev steal
    /// race or an MPSC injector observed mid-push (lwt-sched).
    pub queue_contention: Counter,
    /// Faults deliberately injected by the chaos engine (lwt-chaos).
    pub faults_injected: Counter,
    /// Stalls flagged by the watchdog: silent workers plus waits that
    /// outlived their deadline (lwt-chaos). Flags, never kills.
    pub stalls_detected: Counter,
    /// Workers that went to sleep on their parker after a dry steal
    /// sweep (lwt-sched). Paired with `unparks`.
    pub parks: Counter,
    /// Parked workers that resumed — wake-one notification, backstop
    /// timeout, or shutdown unpark (lwt-sched).
    pub unparks: Counter,
    /// Workers currently asleep on their parker (lwt-sched). The
    /// high-water mark records the deepest simultaneous sleep.
    pub workers_parked: Gauge,
    /// Trace events lost to ring wraparound: each push that overwrote
    /// a not-yet-exported event bumps this. Non-zero means the
    /// exported trace window is truncated (the exporter also flags it
    /// in the Perfetto header).
    pub ring_dropped: Counter,
    /// Stackless future polls executed by the async bridge
    /// (`Glt::spawn_async` tasks; every dispatch, `Pending` or
    /// `Ready`).
    pub async_polls: Counter,
    /// Waker firings that had an effect: the task was requeued onto a
    /// ready queue, or the wake was coalesced into the in-progress
    /// poll. No-op wakes (already queued / complete) are not counted.
    pub async_wakes: Counter,
    /// Closures handed to the `spawn_blocking` OS-thread pool.
    pub blocking_spawns: Counter,
    /// Sockets registered with the I/O reactor (lwt-net): listeners
    /// and streams each count once at registration.
    pub io_registrations: Counter,
    /// Readiness events the reactor driver observed and dispatched
    /// (epoll edges, per direction — one event may cover both).
    pub io_events: Counter,
    /// I/O readiness deliveries that resumed a waiter: a parked async
    /// task's waker fired, or a ULT's readiness flag was raised while
    /// it was in its relax loop. Deliveries with nobody waiting (the
    /// optimistic try-first path won) are not counted.
    pub io_wakes: Counter,
    /// Deadlines armed on the timer wheel (`lwt_sched::timer`).
    pub timers_armed: Counter,
    /// Armed timers that reached their deadline and fired.
    pub timers_fired: Counter,
    /// Armed timers cancelled before firing (the op they guarded
    /// completed in time — the overwhelmingly common case).
    pub timers_cancelled: Counter,
    /// I/O operations that gave up on an expired deadline: a TCP
    /// read/write returning `TimedOut`, or an HTTP connection's
    /// idle/header timer expiring (lwt-net).
    pub io_timeouts: Counter,
    /// HTTP requests shed with `503 Service Unavailable` because the
    /// in-flight request semaphore was saturated (lwt-net).
    pub requests_shed: Counter,
    /// Request-handler panics contained by the server's
    /// `catch_unwind` isolation (each one answered with a 500 and a
    /// closed connection; the worker survived).
    pub handler_panics: Counter,
    /// Accept-loop pauses: the acceptor found the hard connection cap
    /// reached and waited for a connection to finish before accepting
    /// again (lwt-net admission control).
    pub accept_pauses: Counter,
}

impl Counters {
    const fn new() -> Self {
        Counters {
            ults_created: Counter::new(),
            tasklets_created: Counter::new(),
            yields: Counter::new(),
            steal_attempts: Counter::new(),
            steal_hits: Counter::new(),
            os_threads_spawned: Counter::new(),
            feb_blocks: Counter::new(),
            feb_wakes: Counter::new(),
            messages_executed: Counter::new(),
            nested_regions: Counter::new(),
            nested_pool_size: Gauge::new(),
            stack_cache_hits: Counter::new(),
            stack_cache_misses: Counter::new(),
            queue_contention: Counter::new(),
            faults_injected: Counter::new(),
            stalls_detected: Counter::new(),
            parks: Counter::new(),
            unparks: Counter::new(),
            workers_parked: Gauge::new(),
            ring_dropped: Counter::new(),
            async_polls: Counter::new(),
            async_wakes: Counter::new(),
            blocking_spawns: Counter::new(),
            io_registrations: Counter::new(),
            io_events: Counter::new(),
            io_wakes: Counter::new(),
            timers_armed: Counter::new(),
            timers_fired: Counter::new(),
            timers_cancelled: Counter::new(),
            io_timeouts: Counter::new(),
            requests_shed: Counter::new(),
            handler_panics: Counter::new(),
            accept_pauses: Counter::new(),
        }
    }
}

/// The process-wide counter set.
pub static COUNTERS: Counters = Counters::new();

/// Spawn-to-first-run latency (ns): stamped at ULT/tasklet creation,
/// recorded when the unit first executes. Only populated while
/// tracing is enabled (the stamp itself is skipped when off).
pub static SPAWN_LATENCY: Histogram = Histogram::new();

/// Steal-loop dwell time (ns): how long a worker went without work
/// between its queue running dry and the next unit it acquired.
pub static STEAL_DWELL: Histogram = Histogram::new();

// ---------------------------------------------------------------------------
// Tracing enable flag
// ---------------------------------------------------------------------------

/// 0 = uninitialized (consult `LWT_TRACE`), 1 = off, 2 = on.
static TRACING: AtomicU8 = AtomicU8::new(0);

/// Whether event-ring tracing is on. The hot path is one relaxed
/// load; the `LWT_TRACE` environment variable is consulted once, on
/// first call (unset, empty, or `0` ⇒ off; anything else ⇒ on).
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    match TRACING.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_tracing_from_env(),
    }
}

#[cold]
fn init_tracing_from_env() -> bool {
    let on = matches!(std::env::var("LWT_TRACE"), Ok(v) if !v.is_empty() && v != "0");
    // Lose gracefully to a concurrent `set_tracing`.
    let _ = TRACING.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    TRACING.load(Ordering::Relaxed) == 2
}

/// Programmatically force tracing on or off (tests, embedders);
/// overrides `LWT_TRACE`.
pub fn set_tracing(on: bool) {
    if on {
        // Anchor the epoch before the first traced event.
        clock::init();
    }
    TRACING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// `clock::now_ns()` when tracing, 0 otherwise — for spawn-latency
/// stamps that must cost nothing when tracing is off.
#[inline]
#[must_use]
pub fn timestamp_if_tracing() -> u64 {
    if tracing_enabled() {
        clock::now_ns()
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Per-thread event rings
// ---------------------------------------------------------------------------

/// Default per-worker ring capacity (events); override with
/// `LWT_TRACE_RING_CAP`.
pub const DEFAULT_RING_CAP: usize = 8192;

static RINGS: Mutex<Vec<Arc<EventRing>>> = Mutex::new(Vec::new());
static RING_CAP: OnceLock<usize> = OnceLock::new();

thread_local! {
    static MY_RING: OnceCell<Arc<EventRing>> = const { OnceCell::new() };
}

fn ring_capacity() -> usize {
    *RING_CAP.get_or_init(|| {
        std::env::var("LWT_TRACE_RING_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_RING_CAP)
    })
}

fn lock_rings() -> MutexGuard<'static, Vec<Arc<EventRing>>> {
    RINGS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn register_current_thread() -> Arc<EventRing> {
    let label = std::thread::current()
        .name()
        .map_or_else(|| "external".to_string(), str::to_string);
    let mut rings = lock_rings();
    let worker = u32::try_from(rings.len()).unwrap_or(u32::MAX);
    let ring = Arc::new(EventRing::new(worker, label, ring_capacity()));
    rings.push(Arc::clone(&ring));
    ring
}

/// Record an event into the calling thread's ring **iff tracing is
/// enabled**. This is the instrumentation entry point: when tracing
/// is off it is one relaxed load and a predictable branch.
#[inline]
pub fn emit(kind: EventKind, arg: u64) {
    if tracing_enabled() {
        emit_enabled(kind, arg);
    }
}

#[cold]
fn emit_enabled(kind: EventKind, arg: u64) {
    emit_enabled_with_span(kind, arg, crate::span::current());
}

/// Record an event carrying an explicit span id (the `Span*` kinds,
/// where the span is the event's *subject*, not the emitting
/// context). Same one-relaxed-load disabled path as [`emit`].
#[inline]
pub fn emit_with_span(kind: EventKind, arg: u64, span: u64) {
    if tracing_enabled() {
        emit_enabled_with_span(kind, arg, span);
    }
}

#[cold]
fn emit_enabled_with_span(kind: EventKind, arg: u64, span: u64) {
    // try_with: a Drop-guard event during thread teardown must not
    // panic on destroyed TLS; the event is silently dropped instead.
    let _ = MY_RING.try_with(|cell| {
        let ring = cell.get_or_init(register_current_thread);
        ring.push(clock::now_ns(), kind, arg, span);
    });
}

/// Every registered per-thread ring, in registration order. Rings are
/// never unregistered (a dead worker's history stays exportable).
#[must_use]
pub fn rings() -> Vec<Arc<EventRing>> {
    lock_rings().clone()
}

// ---------------------------------------------------------------------------
// Snapshot API
// ---------------------------------------------------------------------------

/// Point-in-time values of every well-known counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// [`Counters::ults_created`].
    pub ults_created: u64,
    /// [`Counters::tasklets_created`].
    pub tasklets_created: u64,
    /// [`Counters::yields`].
    pub yields: u64,
    /// [`Counters::steal_attempts`].
    pub steal_attempts: u64,
    /// [`Counters::steal_hits`].
    pub steal_hits: u64,
    /// [`Counters::os_threads_spawned`].
    pub os_threads_spawned: u64,
    /// [`Counters::feb_blocks`].
    pub feb_blocks: u64,
    /// [`Counters::feb_wakes`].
    pub feb_wakes: u64,
    /// [`Counters::messages_executed`].
    pub messages_executed: u64,
    /// [`Counters::nested_regions`].
    pub nested_regions: u64,
    /// Current [`Counters::nested_pool_size`] level.
    pub nested_pool_level: u64,
    /// [`Counters::nested_pool_size`] high-water mark.
    pub nested_pool_high_water: u64,
    /// [`Counters::stack_cache_hits`].
    pub stack_cache_hits: u64,
    /// [`Counters::stack_cache_misses`].
    pub stack_cache_misses: u64,
    /// [`Counters::queue_contention`].
    pub queue_contention: u64,
    /// [`Counters::faults_injected`].
    pub faults_injected: u64,
    /// [`Counters::stalls_detected`].
    pub stalls_detected: u64,
    /// [`Counters::parks`].
    pub parks: u64,
    /// [`Counters::unparks`].
    pub unparks: u64,
    /// Current [`Counters::workers_parked`] level.
    pub workers_parked_level: u64,
    /// [`Counters::workers_parked`] high-water mark.
    pub workers_parked_high_water: u64,
    /// [`Counters::ring_dropped`].
    pub ring_dropped: u64,
    /// [`Counters::async_polls`].
    pub async_polls: u64,
    /// [`Counters::async_wakes`].
    pub async_wakes: u64,
    /// [`Counters::blocking_spawns`].
    pub blocking_spawns: u64,
    /// [`Counters::io_registrations`].
    pub io_registrations: u64,
    /// [`Counters::io_events`].
    pub io_events: u64,
    /// [`Counters::io_wakes`].
    pub io_wakes: u64,
    /// [`Counters::timers_armed`].
    pub timers_armed: u64,
    /// [`Counters::timers_fired`].
    pub timers_fired: u64,
    /// [`Counters::timers_cancelled`].
    pub timers_cancelled: u64,
    /// [`Counters::io_timeouts`].
    pub io_timeouts: u64,
    /// [`Counters::requests_shed`].
    pub requests_shed: u64,
    /// [`Counters::handler_panics`].
    pub handler_panics: u64,
    /// [`Counters::accept_pauses`].
    pub accept_pauses: u64,
}

impl CounterSnapshot {
    /// Counter movement since `earlier` (field-wise saturating
    /// difference). The two gauge fields are *levels*, not monotone
    /// counts, so they carry over from `self` unchanged.
    #[must_use]
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            ults_created: self.ults_created.saturating_sub(earlier.ults_created),
            tasklets_created: self.tasklets_created.saturating_sub(earlier.tasklets_created),
            yields: self.yields.saturating_sub(earlier.yields),
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            steal_hits: self.steal_hits.saturating_sub(earlier.steal_hits),
            os_threads_spawned: self
                .os_threads_spawned
                .saturating_sub(earlier.os_threads_spawned),
            feb_blocks: self.feb_blocks.saturating_sub(earlier.feb_blocks),
            feb_wakes: self.feb_wakes.saturating_sub(earlier.feb_wakes),
            messages_executed: self
                .messages_executed
                .saturating_sub(earlier.messages_executed),
            nested_regions: self.nested_regions.saturating_sub(earlier.nested_regions),
            nested_pool_level: self.nested_pool_level,
            nested_pool_high_water: self.nested_pool_high_water,
            stack_cache_hits: self.stack_cache_hits.saturating_sub(earlier.stack_cache_hits),
            stack_cache_misses: self
                .stack_cache_misses
                .saturating_sub(earlier.stack_cache_misses),
            queue_contention: self.queue_contention.saturating_sub(earlier.queue_contention),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            stalls_detected: self.stalls_detected.saturating_sub(earlier.stalls_detected),
            parks: self.parks.saturating_sub(earlier.parks),
            unparks: self.unparks.saturating_sub(earlier.unparks),
            workers_parked_level: self.workers_parked_level,
            workers_parked_high_water: self.workers_parked_high_water,
            ring_dropped: self.ring_dropped.saturating_sub(earlier.ring_dropped),
            async_polls: self.async_polls.saturating_sub(earlier.async_polls),
            async_wakes: self.async_wakes.saturating_sub(earlier.async_wakes),
            blocking_spawns: self.blocking_spawns.saturating_sub(earlier.blocking_spawns),
            io_registrations: self
                .io_registrations
                .saturating_sub(earlier.io_registrations),
            io_events: self.io_events.saturating_sub(earlier.io_events),
            io_wakes: self.io_wakes.saturating_sub(earlier.io_wakes),
            timers_armed: self.timers_armed.saturating_sub(earlier.timers_armed),
            timers_fired: self.timers_fired.saturating_sub(earlier.timers_fired),
            timers_cancelled: self.timers_cancelled.saturating_sub(earlier.timers_cancelled),
            io_timeouts: self.io_timeouts.saturating_sub(earlier.io_timeouts),
            requests_shed: self.requests_shed.saturating_sub(earlier.requests_shed),
            handler_panics: self.handler_panics.saturating_sub(earlier.handler_panics),
            accept_pauses: self.accept_pauses.saturating_sub(earlier.accept_pauses),
        }
    }
}

/// Counters plus latency-histogram summaries, read at one moment.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsSnapshot {
    /// All well-known counters.
    pub counters: CounterSnapshot,
    /// Spawn-to-first-run latency distribution.
    pub spawn_latency: HistogramSummary,
    /// Steal-loop dwell-time distribution.
    pub steal_dwell: HistogramSummary,
}

/// Read every counter and histogram. Each field is individually
/// consistent; for a workload-exact reading use [`scoped`].
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let c = &COUNTERS;
    // Gauge pair: read the level first and clamp the mark with that
    // same observation. `rise` bumps level and high in two separate
    // relaxed RMWs, so an unclamped pair could report
    // high_water < level (DESIGN.md §10); the level read here is one
    // the gauge really held, so the clamp never overstates the peak.
    let pool_level = c.nested_pool_size.level();
    let pool_high = c.nested_pool_size.high_water().max(pool_level);
    let parked_level = c.workers_parked.level();
    let parked_high = c.workers_parked.high_water().max(parked_level);
    MetricsSnapshot {
        counters: CounterSnapshot {
            ults_created: c.ults_created.get(),
            tasklets_created: c.tasklets_created.get(),
            yields: c.yields.get(),
            steal_attempts: c.steal_attempts.get(),
            steal_hits: c.steal_hits.get(),
            os_threads_spawned: c.os_threads_spawned.get(),
            feb_blocks: c.feb_blocks.get(),
            feb_wakes: c.feb_wakes.get(),
            messages_executed: c.messages_executed.get(),
            nested_regions: c.nested_regions.get(),
            nested_pool_level: pool_level,
            nested_pool_high_water: pool_high,
            stack_cache_hits: c.stack_cache_hits.get(),
            stack_cache_misses: c.stack_cache_misses.get(),
            queue_contention: c.queue_contention.get(),
            faults_injected: c.faults_injected.get(),
            stalls_detected: c.stalls_detected.get(),
            parks: c.parks.get(),
            unparks: c.unparks.get(),
            workers_parked_level: parked_level,
            workers_parked_high_water: parked_high,
            ring_dropped: c.ring_dropped.get(),
            async_polls: c.async_polls.get(),
            async_wakes: c.async_wakes.get(),
            blocking_spawns: c.blocking_spawns.get(),
            io_registrations: c.io_registrations.get(),
            io_events: c.io_events.get(),
            io_wakes: c.io_wakes.get(),
            timers_armed: c.timers_armed.get(),
            timers_fired: c.timers_fired.get(),
            timers_cancelled: c.timers_cancelled.get(),
            io_timeouts: c.io_timeouts.get(),
            requests_shed: c.requests_shed.get(),
            handler_panics: c.handler_panics.get(),
            accept_pauses: c.accept_pauses.get(),
        },
        spawn_latency: SPAWN_LATENCY.summary(),
        steal_dwell: STEAL_DWELL.summary(),
    }
}

/// Zero every counter, gauge, and histogram (rings are left alone —
/// they are flight recorders, not accumulators).
pub fn reset() {
    let c = &COUNTERS;
    c.ults_created.reset();
    c.tasklets_created.reset();
    c.yields.reset();
    c.steal_attempts.reset();
    c.steal_hits.reset();
    c.os_threads_spawned.reset();
    c.feb_blocks.reset();
    c.feb_wakes.reset();
    c.messages_executed.reset();
    c.nested_regions.reset();
    c.nested_pool_size.reset();
    c.stack_cache_hits.reset();
    c.stack_cache_misses.reset();
    c.queue_contention.reset();
    c.faults_injected.reset();
    c.stalls_detected.reset();
    c.parks.reset();
    c.unparks.reset();
    c.workers_parked.reset();
    c.ring_dropped.reset();
    c.async_polls.reset();
    c.async_wakes.reset();
    c.blocking_spawns.reset();
    c.io_registrations.reset();
    c.io_events.reset();
    c.io_wakes.reset();
    c.timers_armed.reset();
    c.timers_fired.reset();
    c.timers_cancelled.reset();
    c.io_timeouts.reset();
    c.requests_shed.reset();
    c.handler_panics.reset();
    c.accept_pauses.reset();
    SPAWN_LATENCY.reset();
    STEAL_DWELL.reset();
}

/// The per-worker time-accounting table (where each worker's wall
/// time went) — the registry-level entry point to
/// [`crate::timeline::utilization`]. Empty unless accounting was
/// enabled (`LWT_UTILIZATION` / [`crate::timeline::set_accounting`]).
#[must_use]
pub fn utilization() -> crate::timeline::Utilization {
    crate::timeline::utilization()
}

/// Serializes [`scoped`] sections so concurrent test suites can't
/// interleave reset/read.
static SCOPE: Mutex<()> = Mutex::new(());

/// Run `workload` inside a reset→run→snapshot window, serialized
/// against every other `scoped` caller in the process.
///
/// This is *the* way for tests to assert exact counter formulas (the
/// §IX-C spawn counts): the internal lock closes the race where suite
/// A resets between suite B's reset and read. Counters touched by
/// threads outside the scope (another runtime idling in the same
/// process) still leak in — keep scoped workloads self-contained.
pub fn scoped<T>(workload: impl FnOnce() -> T) -> (T, MetricsSnapshot) {
    let _serial = SCOPE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    reset();
    let out = workload();
    (out, snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global; each test here goes through
    // `scoped`, which serializes them against each other.

    #[test]
    fn scoped_reads_exactly_the_workload() {
        let ((), snap) = scoped(|| {
            COUNTERS.ults_created.inc();
            COUNTERS.ults_created.inc();
            COUNTERS.yields.inc();
            SPAWN_LATENCY.record(100);
        });
        assert_eq!(snap.counters.ults_created, 2);
        assert_eq!(snap.counters.yields, 1);
        assert_eq!(snap.spawn_latency.count, 1);
        let ((), snap2) = scoped(|| COUNTERS.ults_created.inc());
        assert_eq!(snap2.counters.ults_created, 1, "scope must reset");
    }

    #[test]
    fn delta_subtracts_counters_but_not_gauge_levels() {
        let before = CounterSnapshot {
            ults_created: 10,
            yields: 5,
            ..CounterSnapshot::default()
        };
        let after = CounterSnapshot {
            ults_created: 25,
            yields: 5,
            nested_pool_level: 3,
            nested_pool_high_water: 7,
            ..CounterSnapshot::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.ults_created, 15);
        assert_eq!(d.yields, 0);
        assert_eq!(d.nested_pool_level, 3);
        assert_eq!(d.nested_pool_high_water, 7);
        // Saturating: a reset between snapshots can't underflow.
        assert_eq!(before.delta(&after).ults_created, 0);
    }

    #[test]
    fn timestamp_stamp_is_zero_when_tracing_off() {
        // Don't flip the global flag here (unit tests share the
        // process); just exercise the accessor against current state.
        let ts = timestamp_if_tracing();
        if tracing_enabled() {
            assert!(ts > 0);
        } else {
            assert_eq!(ts, 0);
        }
    }
}
