//! Causal task spans: process-unique ids that tie a unit's spawn,
//! run segments, completion, and join together across workers.
//!
//! A span id is allocated by [`on_spawn`] at unit-creation time and
//! carried inside the runtime's unit struct (a plain `u64` — the id
//! is written once before the unit is shared). Whichever worker
//! dispatches the unit calls [`set_current`] around the run segment,
//! so every ring event the unit's code emits is stamped with its
//! span ([`crate::registry::emit`] attaches [`current`]
//! automatically). The `Span*` ring events then let the offline
//! analyzer ([`crate::critical_path`]) rebuild the task DAG even when
//! segments migrated between workers.
//!
//! Ids are process-global, monotone from 1, and never reused;
//! [`NO_SPAN`] (0) means "not traced" — every entry point is gated so
//! the tracing-off cost stays one relaxed load.

use crate::event::EventKind;
use crate::registry;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The null span id: outside any traced unit, or tracing disabled at
/// the unit's spawn.
pub const NO_SPAN: u64 = 0;

/// Next id to hand out. Starts at 1 so [`NO_SPAN`] is never allocated.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The span executing on this worker thread right now.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(NO_SPAN) };
}

/// Allocate a span for a unit being spawned *now* and record the
/// spawn edge (`SpanSpawn` with `arg` = the spawner's own span) on
/// the spawning thread's ring.
///
/// Returns [`NO_SPAN`] without allocating when tracing is off — the
/// disabled path is one relaxed load, so runtimes may call this
/// unconditionally on their spawn fast path.
#[inline]
#[must_use]
pub fn on_spawn() -> u64 {
    if registry::tracing_enabled() {
        alloc_and_record()
    } else {
        NO_SPAN
    }
}

#[cold]
fn alloc_and_record() -> u64 {
    let child = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    registry::emit_with_span(EventKind::SpanSpawn, current(), child);
    child
}

/// The span currently executing on the calling thread.
/// [`NO_SPAN`] outside any traced unit (and during TLS teardown).
#[inline]
#[must_use]
pub fn current() -> u64 {
    CURRENT_SPAN.try_with(Cell::get).unwrap_or(NO_SPAN)
}

/// Mark `span` as the unit now executing on this thread; returns the
/// previous value so nested dispatch (a unit running a scheduler that
/// runs another unit, as openmp tasks do) can restore it.
#[inline]
pub fn set_current(span: u64) -> u64 {
    CURRENT_SPAN.try_with(|c| c.replace(span)).unwrap_or(NO_SPAN)
}

/// Record that `span` ran to completion, on the worker that executed
/// its final segment. No-op for [`NO_SPAN`].
#[inline]
pub fn on_complete(span: u64) {
    if span != NO_SPAN {
        registry::emit_with_span(EventKind::SpanComplete, 0, span);
    }
}

/// Record that the calling context observed `span`'s completion — the
/// child→joiner dependency edge the critical-path analyzer follows.
/// No-op for [`NO_SPAN`].
#[inline]
pub fn on_join(span: u64) {
    if span != NO_SPAN {
        registry::emit_with_span(EventKind::SpanJoin, current(), span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotone_and_nonzero() {
        // Direct allocator check — avoids flipping the global tracing
        // flag (shared by every unit test in the process).
        let a = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let b = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        assert!(a >= 1);
        assert_eq!(b, a + 1);
    }

    #[test]
    fn current_tracks_set_current() {
        assert_eq!(current(), NO_SPAN);
        let prev = set_current(42);
        assert_eq!(prev, NO_SPAN);
        assert_eq!(current(), 42);
        let prev = set_current(7);
        assert_eq!(prev, 42);
        assert_eq!(set_current(NO_SPAN), 7);
        assert_eq!(current(), NO_SPAN);
    }

    #[test]
    fn on_spawn_without_tracing_is_no_span() {
        if !registry::tracing_enabled() {
            assert_eq!(on_spawn(), NO_SPAN);
        }
    }
}
