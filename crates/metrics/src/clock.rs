//! Monotonic nanosecond clock shared by every ring and histogram.
//!
//! All timestamps are nanoseconds since a process-wide epoch (the
//! first call to [`now_ns`]), so events recorded on different worker
//! threads merge onto one timeline. `Instant` is monotonic per the
//! std contract, which is what makes per-worker event streams
//! monotone in the exported trace.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch.
///
/// The epoch is pinned lazily on first use; call [`init`] early (e.g.
/// at runtime init) to anchor it before any worker starts.
#[inline]
#[must_use]
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    // A u64 of nanoseconds covers ~584 years of process uptime.
    epoch.elapsed().as_nanos() as u64
}

/// Pin the trace epoch to "now" if it isn't pinned yet.
pub fn init() {
    let _ = EPOCH.get_or_init(Instant::now);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        let c = now_ns();
        assert!(a <= b && b <= c);
    }

    #[test]
    fn init_is_idempotent() {
        init();
        let a = now_ns();
        init();
        assert!(now_ns() >= a);
    }
}
