//! Per-worker fixed-capacity lock-free event ring.
//!
//! Each worker thread owns one [`EventRing`] and is its **single
//! producer**; a push is four relaxed stores plus one release store
//! of the head index — no CAS, no lock, no allocation. When the ring
//! is full, new events overwrite the oldest ones (tracing keeps the
//! *recent* window, like a flight recorder), and the overwritten
//! count is reported by [`EventRing::dropped`].
//!
//! Readers ([`EventRing::snapshot`], used by the trace exporter and
//! tests) may run on any thread at any time: every slot field is an
//! atomic, so a racing read observes some pair of (old, new) field
//! values — possibly a *torn* event if it lands mid-overwrite, never
//! undefined behavior. Drain while the workload is quiescent (after
//! a join/barrier) for an exact snapshot; the exporter does.

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicU64, Ordering};

struct Slot {
    ts: AtomicU64,
    kind: AtomicU64,
    arg: AtomicU64,
    span: AtomicU64,
}

/// A single-producer, multi-reader ring of scheduler [`Event`]s.
pub struct EventRing {
    worker: u32,
    label: String,
    /// `slots.len() - 1`; capacity is a power of two so the slot
    /// index is a mask, not a modulo.
    mask: usize,
    slots: Box<[Slot]>,
    /// Total events ever pushed (monotone). `head % capacity` is the
    /// next write position; publication point for readers.
    head: AtomicU64,
}

impl EventRing {
    /// A ring for worker `worker` labelled `label` (shown as the
    /// Perfetto thread name). `capacity` is rounded up to the next
    /// power of two, minimum 8.
    #[must_use]
    pub fn new(worker: u32, label: impl Into<String>, capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                ts: AtomicU64::new(0),
                kind: AtomicU64::new(u64::MAX),
                arg: AtomicU64::new(0),
                span: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            worker,
            label: label.into(),
            mask: cap - 1,
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Record one event. **Single producer**: only the owning worker
    /// thread may call this.
    #[inline]
    pub fn push(&self, ts_ns: u64, kind: EventKind, arg: u64, span: u64) {
        let head = self.head.load(Ordering::Relaxed);
        if head >= self.slots.len() as u64 {
            // This write overwrites the oldest retained event. The
            // counter is what makes silent truncation detectable
            // outside the ring itself (exporter lossage header,
            // flight-recorder bundles, bench metrics).
            crate::registry::COUNTERS.ring_dropped.inc();
        }
        let slot = &self.slots[(head as usize) & self.mask];
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.span.store(span, Ordering::Relaxed);
        // Release pairs with the Acquire in `snapshot`: a reader that
        // observes head > i also observes slot i's field stores.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Worker id this ring belongs to (the trace `tid`).
    #[must_use]
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Human-readable producer label (the trace thread name).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Ring capacity in events (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed, including overwritten ones.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to wraparound (oldest-first overwrite).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// The retained window of events, oldest first.
    ///
    /// Exact when the producer is quiescent; during a race the oldest
    /// few entries may be torn (see module docs) — a slot whose kind
    /// byte is mid-overwrite garbage is silently skipped.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64);
        (start..head)
            .filter_map(|i| {
                let slot = &self.slots[(i as usize) & self.mask];
                let kind = EventKind::from_u8(slot.kind.load(Ordering::Relaxed) as u8)?;
                Some(Event {
                    ts_ns: slot.ts.load(Ordering::Relaxed),
                    kind,
                    arg: slot.arg.load(Ordering::Relaxed),
                    span: slot.span.load(Ordering::Relaxed),
                })
            })
            .collect()
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("worker", &self.worker)
            .field("label", &self.label)
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::new(0, "t", 0).capacity(), 8);
        assert_eq!(EventRing::new(0, "t", 8).capacity(), 8);
        assert_eq!(EventRing::new(0, "t", 9).capacity(), 16);
        assert_eq!(EventRing::new(0, "t", 1000).capacity(), 1024);
    }

    #[test]
    fn push_then_snapshot_in_order() {
        let ring = EventRing::new(3, "w3", 16);
        for i in 0..5 {
            ring.push(100 + i, EventKind::Yield, i, i + 1);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ts_ns, 100 + i as u64);
            assert_eq!(e.kind, EventKind::Yield);
            assert_eq!(e.arg, i as u64);
            assert_eq!(e.span, i as u64 + 1);
        }
        assert_eq!(ring.dropped(), 0);
    }

    /// Single-producer wraparound: the ring keeps exactly the last
    /// `capacity` events, oldest first, and accounts for the rest.
    #[test]
    fn wraparound_keeps_newest_window() {
        let ring = EventRing::new(0, "w0", 8);
        let total = 8 * 3 + 5; // wraps three times, lands mid-ring
        for i in 0..total {
            ring.push(i, EventKind::UltRun, i, 0);
        }
        assert_eq!(ring.pushed(), total);
        assert_eq!(ring.dropped(), total - 8);
        let events = ring.snapshot();
        assert_eq!(events.len(), 8);
        for (j, e) in events.iter().enumerate() {
            assert_eq!(e.arg, total - 8 + j as u64, "window must be the newest 8");
        }
        // Timestamps stay monotone across the wrap seam.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    /// A racing reader must never crash or observe out-of-vocabulary
    /// kinds — torn slots are dropped, not invented.
    #[test]
    fn concurrent_snapshot_is_safe() {
        let ring = EventRing::new(0, "w0", 32);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..50_000u64 {
                    ring.push(i, EventKind::StealAttempt, i, 0);
                }
            });
            for _ in 0..200 {
                for e in ring.snapshot() {
                    assert!(EventKind::from_u8(e.kind as u8).is_some());
                }
            }
        });
        assert_eq!(ring.pushed(), 50_000);
    }
}
