//! Log2-bucketed latency histograms.
//!
//! HPC latency distributions span orders of magnitude (a warm
//! spawn-to-first-run is tens of ns; a cold steal-dwell is tens of
//! µs), so fixed-width buckets either truncate or blur. A power-of-two
//! bucket per value magnitude gives ≤2× quantile error over the whole
//! `u64` range with 64 counters — the same shape HdrHistogram-style
//! recorders use at their coarsest setting, but cheap enough (one
//! relaxed `fetch_add` per axis) to leave on unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A concurrent histogram with one bucket per power of two.
///
/// `record` is wait-free (four relaxed atomic RMWs). Quantiles are
/// upper bounds of the containing bucket, so they over-report by at
/// most 2×, never under-report.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time read of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (ns).
    pub sum: u64,
    /// Median upper bound (ns).
    pub p50: u64,
    /// 99th-percentile upper bound (ns).
    pub p99: u64,
    /// Largest recorded value (ns), exact.
    pub max: u64,
}

impl HistogramSummary {
    /// Mean of the recorded values, zero when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram, usable in `static`s.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: floor(log2), with 0 sharing bucket 0.
    /// Bucket `b` holds values in `[2^b, 2^(b+1))`.
    #[inline]
    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Upper bound (inclusive) of bucket `b` — what quantiles report.
    fn bucket_upper(b: usize) -> u64 {
        if b >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (b + 1)) - 1
        }
    }

    /// Record one value (nanoseconds by convention).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing quantile `q` (0.0–1.0).
    /// Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report past the true maximum.
                return Self::bucket_upper(b).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Snapshot the distribution. Individually consistent fields; a
    /// concurrent `record` may straddle them (use
    /// [`crate::registry::scoped`] for exact readings).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket and statistic. Not atomic as a whole: racing
    /// `record`s may land in either epoch (see [`crate::Counter`]'s
    /// reset-race contract).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 0);
        assert_eq!(Histogram::bucket(2), 1);
        assert_eq!(Histogram::bucket(3), 1);
        assert_eq!(Histogram::bucket(4), 2);
        assert_eq!(Histogram::bucket(1023), 9);
        assert_eq!(Histogram::bucket(1024), 10);
        assert_eq!(Histogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bound_the_data_within_2x() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), 500);
        // True p50 = 500 → bucket [256,512) → upper 511.
        assert!(s.p50 >= 500 && s.p50 < 1000, "p50 = {}", s.p50);
        // True p99 = 990 → bucket [512,1024) → capped at max.
        assert!(s.p99 >= 990 && s.p99 <= 1000, "p99 = {}", s.p99);
    }

    #[test]
    fn max_is_exact_and_quantiles_never_exceed_it() {
        let h = Histogram::new();
        h.record(7);
        h.record(100_000);
        let s = h.summary();
        assert_eq!(s.max, 100_000);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn concurrent_records_all_land() {
        static H: Histogram = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        H.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(H.count(), 40_000);
    }
}
