//! Offline task-DAG reconstruction and critical-path analysis.
//!
//! Replays the per-worker event rings after a workload quiesces and
//! rebuilds, per span: its run **segments** (opened by `UltRun` /
//! `TaskletExec` / `AsyncPoll` carrying the span, closed by the next `Yield`,
//! `SpanComplete`, segment handoff, or `EsStop` on the same worker),
//! its spawn→first-run queue delay, and how many times it migrated
//! between workers (adjacent segments on different workers — the
//! steal-migration count). Join edges (`SpanJoin`) give the DAG its
//! dependencies, and the critical path is the longest busy-time chain
//! `cp(s) = busy(s) + max cp(joined children of s)` — the §IX answer
//! to "which task chain bounded this run?".
//!
//! Everything here reads ring snapshots; it adds zero cost to the
//! running workload. Accuracy caveats: rings are bounded, so a
//! wrapped ring ([`crate::registry::Counters::ring_dropped`]) yields
//! a truncated DAG, and spans whose spawn predates tracing enablement
//! appear with no parent.

use crate::event::{Event, EventKind};
use crate::registry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// One contiguous stretch of a span executing on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Worker (ring id) that ran it.
    pub worker: u32,
    /// Segment start, ns since trace epoch.
    pub start_ns: u64,
    /// Segment end, ns since trace epoch.
    pub end_ns: u64,
}

impl Segment {
    /// Segment duration.
    #[must_use]
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Everything the rings recorded about one span.
#[derive(Debug, Clone, Default)]
pub struct SpanStats {
    /// The span id.
    pub span: u64,
    /// Spawner's span (0 = spawned from outside any traced unit).
    pub parent: u64,
    /// `(worker, ts)` of the `SpanSpawn` event, if retained.
    pub spawn: Option<(u32, u64)>,
    /// `(worker, ts)` of the `SpanComplete` event, if retained.
    pub complete: Option<(u32, u64)>,
    /// `(worker, ts, joiner span)` of the `SpanJoin` that observed
    /// this span's completion, if retained.
    pub joined_by: Option<(u32, u64, u64)>,
    /// Run segments, sorted by start time.
    pub segments: Vec<Segment>,
    /// Children whose completion *this* span observed (its `SpanJoin`
    /// dependencies) — the edges the critical path follows.
    pub joined: Vec<u64>,
}

impl SpanStats {
    /// Total executing time across all segments.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.segments.iter().map(Segment::dur_ns).sum()
    }

    /// `(worker, ts)` of the first run segment.
    #[must_use]
    pub fn first_run(&self) -> Option<(u32, u64)> {
        self.segments.first().map(|s| (s.worker, s.start_ns))
    }

    /// Spawn→first-run delay (time spent in ready queues).
    #[must_use]
    pub fn queue_ns(&self) -> Option<u64> {
        let (_, spawn_ts) = self.spawn?;
        let (_, first) = self.first_run()?;
        Some(first.saturating_sub(spawn_ts))
    }

    /// How many times the span changed workers between adjacent
    /// segments — each one is a steal (or placement) migration.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.segments
            .windows(2)
            .filter(|w| w[0].worker != w[1].worker)
            .count() as u64
    }
}

/// The reconstructed DAG plus its critical path.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-span statistics, keyed by span id.
    pub spans: BTreeMap<u64, SpanStats>,
    /// Span ids along the critical path, outermost first.
    pub critical_path: Vec<u64>,
    /// Total busy time along [`Report::critical_path`].
    pub critical_path_ns: u64,
}

impl Report {
    /// Sum of busy time across every span.
    #[must_use]
    pub fn total_busy_ns(&self) -> u64 {
        self.spans.values().map(SpanStats::busy_ns).sum()
    }

    /// Sum of worker migrations across every span.
    #[must_use]
    pub fn total_migrations(&self) -> u64 {
        self.spans.values().map(SpanStats::migrations).sum()
    }

    /// Human-readable report: the critical path, then a per-span
    /// table (capped at the 32 busiest spans for big runs).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let path = self
            .critical_path
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(
            out,
            "critical path: {} ns across {} span(s): {}",
            self.critical_path_ns,
            self.critical_path.len(),
            if path.is_empty() { "(none)" } else { &path },
        );
        let _ = writeln!(
            out,
            "spans: {} total, busy {} ns, migrations {}",
            self.spans.len(),
            self.total_busy_ns(),
            self.total_migrations(),
        );
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>12} {:>10} {:>5} {:>10}",
            "span", "parent", "busy_ns", "queue_ns", "segs", "migrations"
        );
        let mut rows: Vec<&SpanStats> = self.spans.values().collect();
        rows.sort_by_key(|s| std::cmp::Reverse(s.busy_ns()));
        for s in rows.iter().take(32) {
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>12} {:>10} {:>5} {:>10}",
                s.span,
                s.parent,
                s.busy_ns(),
                s.queue_ns().map_or_else(|| "-".into(), |q| q.to_string()),
                s.segments.len(),
                s.migrations(),
            );
        }
        if rows.len() > 32 {
            let _ = writeln!(out, "... {} more span(s) elided", rows.len() - 32);
        }
        out
    }
}

fn stats_for(spans: &mut BTreeMap<u64, SpanStats>, id: u64) -> &mut SpanStats {
    spans.entry(id).or_insert_with(|| SpanStats {
        span: id,
        ..SpanStats::default()
    })
}

fn push_segment(spans: &mut BTreeMap<u64, SpanStats>, id: u64, worker: u32, start: u64, end: u64) {
    stats_for(spans, id).segments.push(Segment {
        worker,
        start_ns: start,
        end_ns: end.max(start),
    });
}

/// Rebuild the task DAG from explicit per-worker event streams (each
/// in ring order). This is [`analyze`]'s engine, exposed so tests can
/// feed hand-built histories.
#[must_use]
pub fn from_worker_events(workers: &[(u32, Vec<Event>)]) -> Report {
    let mut spans: BTreeMap<u64, SpanStats> = BTreeMap::new();
    for (worker, events) in workers {
        let worker = *worker;
        // The span currently executing on this worker and when its
        // segment opened.
        let mut open: Option<(u64, u64)> = None;
        let mut last_ts = 0u64;
        for e in events {
            last_ts = last_ts.max(e.ts_ns);
            match e.kind {
                // A dispatch: closes whatever ran before it on this
                // worker and (for a traced span) opens its segment.
                // `AsyncPoll` is the stackless-future dispatch — one
                // poll is one segment, closed by the `Yield` a
                // `Pending` return emits or by `SpanComplete`.
                EventKind::UltRun | EventKind::TaskletExec | EventKind::AsyncPoll => {
                    if let Some((s, start)) = open.take() {
                        push_segment(&mut spans, s, worker, start, e.ts_ns);
                    }
                    if e.span != 0 {
                        open = Some((e.span, e.ts_ns));
                    }
                }
                // The unit left the worker (voluntary yield, FEB
                // block via suspend) or the worker left its loop.
                EventKind::Yield | EventKind::EsStop => {
                    if let Some((s, start)) = open.take() {
                        push_segment(&mut spans, s, worker, start, e.ts_ns);
                    }
                }
                EventKind::SpanSpawn => {
                    let st = stats_for(&mut spans, e.span);
                    st.parent = e.arg;
                    st.spawn = Some((worker, e.ts_ns));
                }
                EventKind::SpanComplete => {
                    if open.map(|(s, _)| s) == Some(e.span) {
                        let (s, start) = open.take().expect("matched above");
                        push_segment(&mut spans, s, worker, start, e.ts_ns);
                    }
                    stats_for(&mut spans, e.span).complete = Some((worker, e.ts_ns));
                }
                EventKind::SpanJoin => {
                    stats_for(&mut spans, e.span).joined_by = Some((worker, e.ts_ns, e.arg));
                    if e.arg != 0 {
                        let joiner = stats_for(&mut spans, e.arg);
                        if !joiner.joined.contains(&e.span) {
                            joiner.joined.push(e.span);
                        }
                    }
                }
                _ => {}
            }
        }
        // A segment still open at the end of the retained window is
        // clipped to the last event we saw (EsStop normally closes
        // it; a wrapped or live ring may not have one).
        if let Some((s, start)) = open {
            push_segment(&mut spans, s, worker, start, last_ts);
        }
    }
    for st in spans.values_mut() {
        st.segments.sort_by_key(|s| s.start_ns);
    }
    let (critical_path_ns, critical_path) = longest_chain(&spans);
    Report {
        spans,
        critical_path,
        critical_path_ns,
    }
}

/// Reconstruct the DAG from every ring currently registered in the
/// process. Call after the workload quiesces (post-join/finalize).
#[must_use]
pub fn analyze() -> Report {
    let workers: Vec<(u32, Vec<Event>)> = registry::rings()
        .iter()
        .map(|r| (r.worker(), r.snapshot()))
        .collect();
    from_worker_events(&workers)
}

/// `cp(s) = busy(s) + max cp(joined children)`, memoized, with a
/// cycle guard (a corrupt/torn ring must not hang the analyzer).
fn longest_chain(spans: &BTreeMap<u64, SpanStats>) -> (u64, Vec<u64>) {
    fn cp(
        span: u64,
        spans: &BTreeMap<u64, SpanStats>,
        memo: &mut HashMap<u64, (u64, Vec<u64>)>,
        visiting: &mut HashSet<u64>,
    ) -> (u64, Vec<u64>) {
        if let Some(hit) = memo.get(&span) {
            return hit.clone();
        }
        if !visiting.insert(span) {
            return (0, Vec::new());
        }
        let Some(st) = spans.get(&span) else {
            visiting.remove(&span);
            return (0, Vec::new());
        };
        let mut best: (u64, Vec<u64>) = (0, Vec::new());
        for &child in &st.joined {
            let r = cp(child, spans, memo, visiting);
            if r.0 > best.0 {
                best = r;
            }
        }
        let mut path = Vec::with_capacity(best.1.len() + 1);
        path.push(span);
        path.extend(best.1);
        let out = (st.busy_ns() + best.0, path);
        visiting.remove(&span);
        memo.insert(span, out.clone());
        out
    }

    let mut memo = HashMap::new();
    let mut best: (u64, Vec<u64>) = (0, Vec::new());
    for &span in spans.keys() {
        let r = cp(span, spans, &mut memo, &mut HashSet::new());
        if r.0 > best.0 {
            best = r;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, kind: EventKind, arg: u64, span: u64) -> Event {
        Event {
            ts_ns,
            kind,
            arg,
            span,
        }
    }

    /// The hand-computed fork-join fixture the acceptance criteria
    /// pin: an external master spawns span 1 on worker 0's ring; span
    /// 1 runs on worker 1, spawns span 3, yields to it, and joins it.
    ///
    /// Expected, by hand:
    ///   span 1 segments: [300,400] (closed by Yield) + [650,700]
    ///     (closed by SpanComplete) -> busy 150, queue 300-100 = 200
    ///   span 3 segments: [450,600] -> busy 150, queue 450-350 = 100
    ///   join edge 1 -> 3, so cp(1) = 150 + 150 = 300, path [1, 3]
    #[test]
    fn fork_join_fixture_matches_hand_computation() {
        let workers = vec![
            (0u32, vec![ev(100, EventKind::SpanSpawn, 0, 1)]),
            (
                1u32,
                vec![
                    ev(300, EventKind::UltRun, 0, 1),
                    ev(350, EventKind::SpanSpawn, 1, 3),
                    ev(400, EventKind::Yield, 0, 1),
                    ev(450, EventKind::UltRun, 0, 3),
                    ev(600, EventKind::SpanComplete, 0, 3),
                    ev(650, EventKind::UltRun, 0, 1),
                    ev(660, EventKind::SpanJoin, 1, 3),
                    ev(700, EventKind::SpanComplete, 0, 1),
                ],
            ),
        ];
        let report = from_worker_events(&workers);

        let s1 = &report.spans[&1];
        assert_eq!(s1.parent, 0);
        assert_eq!(s1.segments.len(), 2);
        assert_eq!(s1.busy_ns(), 150);
        assert_eq!(s1.queue_ns(), Some(200));
        assert_eq!(s1.migrations(), 0);
        assert_eq!(s1.joined, vec![3]);

        let s3 = &report.spans[&3];
        assert_eq!(s3.parent, 1);
        assert_eq!(s3.segments, vec![Segment { worker: 1, start_ns: 450, end_ns: 600 }]);
        assert_eq!(s3.busy_ns(), 150);
        assert_eq!(s3.queue_ns(), Some(100));
        assert_eq!(s3.joined_by, Some((1, 660, 1)));

        assert_eq!(report.critical_path_ns, 300);
        assert_eq!(report.critical_path, vec![1, 3]);
        assert_eq!(report.total_busy_ns(), 300);
        assert_eq!(report.total_migrations(), 0);

        let text = report.render();
        assert!(text.contains("critical path: 300 ns across 2 span(s): 1 -> 3"));
    }

    /// A span that yields on worker 0 and resumes on worker 1 counts
    /// one steal migration; EsStop closes a segment left open.
    #[test]
    fn migration_counted_across_workers() {
        let workers = vec![
            (
                0u32,
                vec![
                    ev(10, EventKind::SpanSpawn, 0, 5),
                    ev(20, EventKind::UltRun, 0, 5),
                    ev(50, EventKind::Yield, 0, 5),
                ],
            ),
            (
                1u32,
                vec![
                    ev(80, EventKind::UltRun, 0, 5),
                    ev(120, EventKind::EsStop, 1, 0),
                ],
            ),
        ];
        let report = from_worker_events(&workers);
        let s = &report.spans[&5];
        assert_eq!(s.busy_ns(), 30 + 40);
        assert_eq!(s.migrations(), 1);
        assert_eq!(s.first_run(), Some((0, 20)));
        assert_eq!(report.critical_path, vec![5]);
        assert_eq!(report.critical_path_ns, 70);
    }

    /// Back-to-back dispatches: the next UltRun closes the previous
    /// span's segment even without an explicit Yield (run-to-
    /// completion units whose SpanComplete was lost to wraparound).
    #[test]
    fn next_dispatch_closes_previous_segment() {
        let workers = vec![(
            0u32,
            vec![
                ev(10, EventKind::UltRun, 0, 1),
                ev(30, EventKind::UltRun, 0, 2),
                ev(60, EventKind::SpanComplete, 0, 2),
            ],
        )];
        let report = from_worker_events(&workers);
        assert_eq!(report.spans[&1].busy_ns(), 20);
        assert_eq!(report.spans[&2].busy_ns(), 30);
    }

    /// A join cycle from a torn ring terminates instead of hanging.
    #[test]
    fn cycle_guard_terminates() {
        let workers = vec![(
            0u32,
            vec![
                ev(10, EventKind::UltRun, 0, 1),
                ev(20, EventKind::SpanJoin, 1, 2),
                ev(30, EventKind::Yield, 0, 1),
                ev(40, EventKind::UltRun, 0, 2),
                ev(50, EventKind::SpanJoin, 2, 1),
                ev(60, EventKind::SpanComplete, 0, 2),
            ],
        )];
        let report = from_worker_events(&workers);
        assert!(report.critical_path_ns > 0);
        assert!(!report.critical_path.is_empty());
    }

    #[test]
    fn empty_input_is_empty_report() {
        let report = from_worker_events(&[]);
        assert!(report.spans.is_empty());
        assert_eq!(report.critical_path_ns, 0);
        assert!(report.critical_path.is_empty());
        assert!(report.render().contains("(none)"));
    }
}
