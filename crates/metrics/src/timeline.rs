//! Per-worker wall-time accounting: where each worker's time went.
//!
//! Every worker thread advances a five-state machine
//! ([`WorkerState`]: Busy/Dispatch/Steal/Idle/Parked) at the
//! instrumentation points the runtimes already have — unit dispatch,
//! steal sweeps, parker sleeps — and the elapsed nanoseconds since
//! the previous transition are charged to the state being *left*.
//! [`utilization`] then renders the per-worker and aggregate table
//! the §IX overhead analysis needs ("what fraction of wall time was
//! busy vs stealing vs parked?").
//!
//! Cost discipline matches tracing: [`enter`] is one relaxed load of
//! the accounting flag when off (`LWT_UTILIZATION` unset), and
//! transitions are single-producer — only the owning thread writes
//! its timeline, so charging a bucket is a relaxed `fetch_add`, no
//! CAS. Readers may race; [`utilization`] extrapolates the
//! in-progress state to "now" unless the worker has [`retire`]d, and
//! tolerates the (bounded, transient) skew a racing read can see.

use crate::clock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// What a worker is doing. Charged per-state in wall nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WorkerState {
    /// Executing user work: a ULT segment, tasklet, message, or task.
    Busy = 0,
    /// In the scheduler loop between units: popping queues, post-
    /// switch bookkeeping, shutdown checks.
    Dispatch = 1,
    /// Sweeping victims for work (the steal loop proper).
    Steal = 2,
    /// Out of work but awake: backoff spins between steal sweeps.
    Idle = 3,
    /// Asleep on the parker ([`lwt-sched`]'s `ParkGroup::park`).
    Parked = 4,
}

impl WorkerState {
    /// All states, in discriminant order.
    pub const ALL: [WorkerState; 5] = [
        WorkerState::Busy,
        WorkerState::Dispatch,
        WorkerState::Steal,
        WorkerState::Idle,
        WorkerState::Parked,
    ];

    /// Stable display name (the utilization-table column header).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            WorkerState::Busy => "busy",
            WorkerState::Dispatch => "dispatch",
            WorkerState::Steal => "steal",
            WorkerState::Idle => "idle",
            WorkerState::Parked => "parked",
        }
    }
}

/// One worker's accounting record. Single producer (the owning
/// thread); any thread may read.
#[derive(Debug)]
pub struct WorkerTimeline {
    worker: u32,
    label: String,
    /// ns accumulated per state, indexed by `WorkerState as usize`.
    buckets: [AtomicU64; 5],
    /// Current state (discriminant).
    state: AtomicU64,
    /// `clock::now_ns()` of the last transition; 0 = no transition yet.
    since: AtomicU64,
    /// Set by [`retire`]: the worker left its loop, stop extrapolating.
    retired: AtomicBool,
}

impl WorkerTimeline {
    fn new(worker: u32, label: String) -> Self {
        WorkerTimeline {
            worker,
            label,
            buckets: [const { AtomicU64::new(0) }; 5],
            state: AtomicU64::new(WorkerState::Dispatch as u64),
            since: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }

    /// Charge the elapsed time to the state being left, then switch.
    fn transition(&self, next: WorkerState) {
        let now = clock::now_ns();
        self.charge_until(now);
        self.state.store(next as u64, Ordering::Relaxed);
        self.since.store(now, Ordering::Relaxed);
        self.retired.store(false, Ordering::Relaxed);
    }

    fn charge_until(&self, now: u64) {
        let since = self.since.load(Ordering::Relaxed);
        if since != 0 && !self.retired.load(Ordering::Relaxed) {
            let cur = (self.state.load(Ordering::Relaxed) as usize).min(4);
            self.buckets[cur].fetch_add(now.saturating_sub(since), Ordering::Relaxed);
        }
    }

    fn retire_now(&self) {
        self.charge_until(clock::now_ns());
        self.retired.store(true, Ordering::Relaxed);
    }

    /// Worker id (matches the event-ring id when both are on).
    #[must_use]
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Producer thread's name at registration.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Point-in-time per-state totals; the in-progress state is
    /// extended to now unless the worker retired.
    #[must_use]
    pub fn snapshot(&self) -> WorkerUtilization {
        let mut ns = [0u64; 5];
        for (i, b) in self.buckets.iter().enumerate() {
            ns[i] = b.load(Ordering::Relaxed);
        }
        if !self.retired.load(Ordering::Relaxed) {
            let since = self.since.load(Ordering::Relaxed);
            if since != 0 {
                let cur = (self.state.load(Ordering::Relaxed) as usize).min(4);
                ns[cur] += clock::now_ns().saturating_sub(since);
            }
        }
        WorkerUtilization {
            worker: self.worker,
            label: self.label.clone(),
            ns,
        }
    }
}

/// One row of the utilization table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerUtilization {
    /// Worker id.
    pub worker: u32,
    /// Worker thread name.
    pub label: String,
    /// ns per state, indexed by `WorkerState as usize`.
    pub ns: [u64; 5],
}

impl WorkerUtilization {
    /// Total accounted wall time.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Percentage of accounted time spent in `state` (0 when nothing
    /// was accounted yet).
    #[must_use]
    pub fn pct(&self, state: WorkerState) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.ns[state as usize] as f64 * 100.0 / total as f64
        }
    }
}

/// The full utilization table: one row per registered worker.
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    /// Per-worker rows, in registration order.
    pub workers: Vec<WorkerUtilization>,
}

impl Utilization {
    /// Aggregate percentage of all accounted worker time spent in
    /// `state`.
    #[must_use]
    pub fn aggregate_pct(&self, state: WorkerState) -> f64 {
        let total: u64 = self.workers.iter().map(WorkerUtilization::total_ns).sum();
        if total == 0 {
            return 0.0;
        }
        let in_state: u64 = self.workers.iter().map(|w| w.ns[state as usize]).sum();
        in_state as f64 * 100.0 / total as f64
    }

    /// Aggregate busy fraction — the headline number.
    #[must_use]
    pub fn aggregate_busy_pct(&self) -> f64 {
        self.aggregate_pct(WorkerState::Busy)
    }

    /// Per-worker difference `self - before` (saturating), matching
    /// rows by worker id; rows absent from `before` pass through
    /// whole, and rows with zero movement are dropped (a retired
    /// worker from an earlier workload in the same process is not
    /// part of this window). The bench harness uses this to report
    /// each bench's own movement against the process-cumulative
    /// timelines.
    #[must_use]
    pub fn delta(&self, before: &Utilization) -> Utilization {
        Utilization {
            workers: self
                .workers
                .iter()
                .filter_map(|w| {
                    let mut ns = w.ns;
                    if let Some(b) = before.workers.iter().find(|b| b.worker == w.worker) {
                        for (slot, prev) in ns.iter_mut().zip(b.ns.iter()) {
                            *slot = slot.saturating_sub(*prev);
                        }
                    }
                    (ns.iter().sum::<u64>() > 0).then(|| WorkerUtilization {
                        worker: w.worker,
                        label: w.label.clone(),
                        ns,
                    })
                })
                .collect(),
        }
    }

    /// Collapse rows that share a label into one summed row (keeping
    /// the lowest worker id), preserving first-seen order. Worker
    /// threads are registered per pool generation, so a bench that
    /// spins a fresh pool per sample accumulates hundreds of
    /// timelines for what is logically the same worker (`myth-w3`,
    /// say); merging by label reports per *logical* worker and keeps
    /// the table bounded by the pool width, not the sample count.
    #[must_use]
    pub fn merged_by_label(&self) -> Utilization {
        let mut merged: Vec<WorkerUtilization> = Vec::new();
        for w in &self.workers {
            if let Some(m) = merged.iter_mut().find(|m| m.label == w.label) {
                m.worker = m.worker.min(w.worker);
                for (slot, add) in m.ns.iter_mut().zip(w.ns.iter()) {
                    *slot += add;
                }
            } else {
                merged.push(w.clone());
            }
        }
        Utilization { workers: merged }
    }

    /// Compact JSON rendering, shared by the bench harness and the
    /// flight recorder:
    /// `{"aggregate_busy_pct":…,"workers":[{"worker":0,"label":…,
    /// "busy_ns":…,…,"busy_pct":…},…]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"aggregate_busy_pct\":{:.2},\"workers\":[",
            self.aggregate_busy_pct()
        ));
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"worker\":{},\"label\":\"{}\"",
                w.worker,
                crate::trace::json_escape(&w.label)
            ));
            for state in WorkerState::ALL {
                out.push_str(&format!(
                    ",\"{}_ns\":{}",
                    state.name(),
                    w.ns[state as usize]
                ));
            }
            out.push_str(&format!(",\"busy_pct\":{:.2}}}", w.pct(WorkerState::Busy)));
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Accounting enable flag (same 0/1/2 discipline as LWT_TRACE)
// ---------------------------------------------------------------------------

/// 0 = uninitialized (consult `LWT_UTILIZATION`), 1 = off, 2 = on.
static ACCOUNTING: AtomicU64 = AtomicU64::new(0);

/// Whether worker time accounting is on: one relaxed load, with
/// `LWT_UTILIZATION` consulted once on first call (unset, empty, or
/// `0` ⇒ off). The bench harness and idle probe force it on
/// programmatically via [`set_accounting`].
#[inline]
#[must_use]
pub fn accounting_enabled() -> bool {
    match ACCOUNTING.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_accounting_from_env(),
    }
}

#[cold]
fn init_accounting_from_env() -> bool {
    let on = matches!(std::env::var("LWT_UTILIZATION"), Ok(v) if !v.is_empty() && v != "0");
    let _ = ACCOUNTING.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    ACCOUNTING.load(Ordering::Relaxed) == 2
}

/// Programmatically force accounting on or off; overrides
/// `LWT_UTILIZATION`. Turn it on *before* the pool spins up so every
/// worker's first transition lands on a fresh timeline.
pub fn set_accounting(on: bool) {
    if on {
        clock::init();
    }
    ACCOUNTING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Per-thread timelines
// ---------------------------------------------------------------------------

static TIMELINES: Mutex<Vec<Arc<WorkerTimeline>>> = Mutex::new(Vec::new());

thread_local! {
    static MY_TIMELINE: std::cell::OnceCell<Arc<WorkerTimeline>> =
        const { std::cell::OnceCell::new() };
}

fn lock_timelines() -> MutexGuard<'static, Vec<Arc<WorkerTimeline>>> {
    TIMELINES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn register_current_thread() -> Arc<WorkerTimeline> {
    let label = std::thread::current()
        .name()
        .map_or_else(|| "external".to_string(), str::to_string);
    let mut tls = lock_timelines();
    let worker = u32::try_from(tls.len()).unwrap_or(u32::MAX);
    let tl = Arc::new(WorkerTimeline::new(worker, label));
    tls.push(Arc::clone(&tl));
    tl
}

/// Advance the calling worker's state machine **iff accounting is
/// on** — the instrumentation entry point; one relaxed load and a
/// predictable branch when off.
#[inline]
pub fn enter(state: WorkerState) {
    if accounting_enabled() {
        enter_slow(state);
    }
}

#[cold]
fn enter_slow(state: WorkerState) {
    // try_with: transitions fired from Drop guards during thread
    // teardown must not panic on destroyed TLS.
    let _ = MY_TIMELINE.try_with(|cell| {
        cell.get_or_init(register_current_thread).transition(state);
    });
}

/// Close out the calling worker's current state and stop
/// extrapolating it — call when the worker leaves its scheduler loop
/// for good (the ultcore `WorkerGuard` does).
pub fn retire() {
    if accounting_enabled() {
        let _ = MY_TIMELINE.try_with(|cell| {
            if let Some(tl) = cell.get() {
                tl.retire_now();
            }
        });
    }
}

/// Every registered worker timeline, in registration order.
#[must_use]
pub fn timelines() -> Vec<Arc<WorkerTimeline>> {
    lock_timelines().clone()
}

/// The current utilization table across all registered workers.
#[must_use]
pub fn utilization() -> Utilization {
    Utilization {
        workers: lock_timelines().iter().map(|t| t.snapshot()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_charges_the_state_being_left() {
        let tl = WorkerTimeline::new(0, "w0".into());
        tl.transition(WorkerState::Busy);
        std::thread::sleep(std::time::Duration::from_millis(2));
        tl.transition(WorkerState::Steal);
        let snap = tl.snapshot();
        assert!(
            snap.ns[WorkerState::Busy as usize] >= 1_000_000,
            "busy must hold the slept interval: {snap:?}"
        );
        tl.retire_now();
        let settled = tl.snapshot();
        // After retirement the totals stop moving.
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert_eq!(tl.snapshot().ns, settled.ns);
    }

    #[test]
    fn snapshot_extrapolates_in_progress_state() {
        let tl = WorkerTimeline::new(0, "w0".into());
        tl.transition(WorkerState::Parked);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let snap = tl.snapshot();
        assert!(
            snap.ns[WorkerState::Parked as usize] >= 1_000_000,
            "in-progress state must extend to now: {snap:?}"
        );
        assert!(snap.pct(WorkerState::Parked) > 99.0);
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let u = Utilization {
            workers: vec![WorkerUtilization {
                worker: 0,
                label: "w0".into(),
                ns: [600, 100, 100, 100, 100],
            }],
        };
        let total: f64 = WorkerState::ALL.iter().map(|&s| u.aggregate_pct(s)).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((u.aggregate_busy_pct() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let u = Utilization {
            workers: vec![WorkerUtilization {
                worker: 3,
                label: "abt-es-3".into(),
                ns: [10, 20, 30, 40, 0],
            }],
        };
        let json = u.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"aggregate_busy_pct\":10.00"));
        assert!(json.contains("\"worker\":3"));
        assert!(json.contains("\"label\":\"abt-es-3\""));
        assert!(json.contains("\"busy_ns\":10"));
        assert!(json.contains("\"parked_ns\":0"));
        assert!(json.contains("\"busy_pct\":10.00"));
    }

    #[test]
    fn delta_subtracts_by_worker_and_drops_unmoved_rows() {
        let row = |worker, ns| WorkerUtilization {
            worker,
            label: format!("w{worker}"),
            ns,
        };
        let before = Utilization {
            workers: vec![row(0, [100, 50, 0, 0, 0]), row(1, [70, 0, 0, 0, 0])],
        };
        let after = Utilization {
            workers: vec![
                row(0, [300, 50, 25, 0, 0]),
                row(1, [70, 0, 0, 0, 0]),      // no movement: dropped
                row(2, [10, 0, 0, 0, 0]),      // new worker: passes whole
            ],
        };
        let d = after.delta(&before);
        assert_eq!(d.workers.len(), 2);
        assert_eq!(d.workers[0].worker, 0);
        assert_eq!(d.workers[0].ns, [200, 0, 25, 0, 0]);
        assert_eq!(d.workers[1].worker, 2);
        assert_eq!(d.workers[1].ns, [10, 0, 0, 0, 0]);
        // Saturating: a reset between snapshots can't underflow.
        assert!(before.delta(&after).workers.is_empty());
    }

    #[test]
    fn merged_by_label_collapses_pool_generations() {
        let row = |worker, label: &str, ns| WorkerUtilization {
            worker,
            label: label.into(),
            ns,
        };
        let u = Utilization {
            workers: vec![
                row(0, "main", [5, 0, 0, 0, 0]),
                row(3, "myth-w1", [100, 10, 0, 0, 0]),
                row(7, "myth-w1", [200, 0, 30, 0, 0]),
                row(5, "myth-w2", [50, 0, 0, 0, 0]),
            ],
        };
        let m = u.merged_by_label();
        assert_eq!(m.workers.len(), 3);
        assert_eq!(m.workers[0].label, "main");
        assert_eq!(m.workers[1].worker, 3);
        assert_eq!(m.workers[1].ns, [300, 10, 30, 0, 0]);
        assert_eq!(m.workers[2].label, "myth-w2");
        // Totals are preserved, so the aggregate is unchanged.
        assert!((m.aggregate_busy_pct() - u.aggregate_busy_pct()).abs() < 1e-9);
    }

    #[test]
    fn state_names_match_discriminants() {
        for (i, s) in WorkerState::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
        assert_eq!(WorkerState::Parked.name(), "parked");
    }
}
