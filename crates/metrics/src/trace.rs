//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! Merges every registered worker ring into one JSON object in the
//! [Trace Event Format]: each scheduler event becomes an *instant*
//! event (`"ph":"i"`, thread scope) with `ts` in microseconds, `pid`
//! fixed at 1, and `tid` = the worker's ring id; each ring also
//! contributes a `thread_name` metadata record so Perfetto's track
//! labels read `abt-es-0`, `myth-w1`, `qth-s0-w0`, … — the thread
//! names the runtimes already assign.
//!
//! Open the output at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) via *Open trace file*.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::registry;
use crate::ring::EventRing;
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Fixed Chrome-trace process id (the whole runtime is one process).
const PID: u32 = 1;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, as Chrome's `ts` expects.
fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Render the given rings as a Chrome trace-event JSON document.
#[must_use]
pub fn render(rings: &[Arc<EventRing>]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
         \"args\":{{\"name\":\"lwt\"}}}}"
    ));
    for ring in rings {
        let tid = ring.worker();
        push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(ring.label())
        ));
        if ring.dropped() > 0 {
            // Surface wraparound loss in the trace itself.
            push(format!(
                "{{\"name\":\"ring_dropped\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":0.000,\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"dropped\":{}}}}}",
                ring.dropped()
            ));
        }
        for e in ring.snapshot() {
            push(format!(
                "{{\"name\":\"{}\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":{PID},\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                e.kind.name(),
                ts_us(e.ts_ns),
                e.arg
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render every registered ring to `path`, creating parent
/// directories as needed.
pub fn write_to(path: &std::path::Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(&registry::rings()))
}

/// Where `export(run)` will write, honoring `LWT_TRACE`.
///
/// `LWT_TRACE=<path>` (anything other than a bare enable token like
/// `1`/`true`) is used verbatim; otherwise the default is
/// `target/lwt-trace/<run>.json` relative to the current directory.
#[must_use]
pub fn destination(run: &str) -> PathBuf {
    match std::env::var("LWT_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" && v != "1" && v != "true" => PathBuf::from(v),
        _ => PathBuf::from("target")
            .join("lwt-trace")
            .join(format!("{run}.json")),
    }
}

/// Export the merged trace for run `run` if tracing is enabled.
///
/// Returns `Ok(None)` when tracing is off (the common, free case),
/// `Ok(Some(path))` after a successful write. Call this once, after
/// the workload has quiesced (rings are drained racily otherwise —
/// see [`crate::ring`]).
pub fn export(run: &str) -> io::Result<Option<PathBuf>> {
    if !registry::tracing_enabled() {
        return Ok(None);
    }
    let path = destination(run);
    write_to(&path)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ring_with(worker: u32, label: &str, events: &[(u64, EventKind, u64)]) -> Arc<EventRing> {
        let ring = Arc::new(EventRing::new(worker, label, 64));
        for &(ts, kind, arg) in events {
            ring.push(ts, kind, arg);
        }
        ring
    }

    #[test]
    fn render_emits_metadata_and_instant_events() {
        let rings = vec![
            ring_with(0, "abt-es-0", &[(1_500, EventKind::UltSpawn, 0)]),
            ring_with(1, "abt-es-1", &[(2_750, EventKind::StealHit, 0)]),
        ];
        let json = render(&rings);
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"abt-es-0\""));
        assert!(json.contains("\"name\":\"abt-es-1\""));
        assert!(json.contains("\"name\":\"UltSpawn\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ts\":2.750"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn render_escapes_labels() {
        let rings = vec![ring_with(0, "weird\"label\\", &[])];
        let json = render(&rings);
        assert!(json.contains("weird\\\"label\\\\"));
    }

    #[test]
    fn ts_formats_with_ns_precision() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn dropped_events_are_surfaced() {
        let ring = Arc::new(EventRing::new(0, "w", 8));
        for i in 0..20 {
            ring.push(i, EventKind::Yield, 0);
        }
        let json = render(&[ring]);
        assert!(json.contains("\"name\":\"ring_dropped\""));
        assert!(json.contains("\"dropped\":12"));
    }
}
