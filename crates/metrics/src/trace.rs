//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! Merges every registered worker ring into one JSON object in the
//! [Trace Event Format]: each scheduler event becomes an *instant*
//! event (`"ph":"i"`, thread scope) with `ts` in microseconds, `pid`
//! fixed at 1, and `tid` = the worker's ring id; each ring also
//! contributes a `thread_name` metadata record so Perfetto's track
//! labels read `abt-es-0`, `myth-w1`, `qth-s0-w0`, … — the thread
//! names the runtimes already assign.
//!
//! On top of the instants, the exporter replays the rings through
//! [`crate::critical_path`] and adds the causal layer: every span's
//! run segments become *complete* events (`"ph":"X"`, with `dur`) on
//! the worker that executed them, and spawn→first-run / complete→join
//! dependencies become flow arrows (`"ph":"s"` / `"ph":"f"`, flow id
//! `span<<1` for spawn edges, `span<<1|1` for join edges) — so a
//! stolen task visibly jumps tracks in Perfetto. The root-level
//! `otherData` header carries `ring_dropped`/`truncated` so a
//! wrapped-ring (lossy) trace is detectable without reading stderr.
//!
//! Open the output at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) via *Open trace file*.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::registry;
use crate::ring::EventRing;
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Fixed Chrome-trace process id (the whole runtime is one process).
const PID: u32 = 1;

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, as Chrome's `ts` expects.
fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Render the given rings as a Chrome trace-event JSON document.
#[must_use]
pub fn render(rings: &[Arc<EventRing>]) -> String {
    let total_dropped: u64 = rings.iter().map(|r| r.dropped()).sum();
    let mut out = String::new();
    // Lossage header: a ring that wrapped means the span layer below
    // is rebuilt from a truncated window — flag it up front.
    out.push_str(&format!(
        "{{\"displayTimeUnit\":\"ns\",\
         \"otherData\":{{\"ring_dropped\":{total_dropped},\"truncated\":{}}},\
         \"traceEvents\":[\n",
        total_dropped > 0
    ));
    let mut first = true;
    let mut push = |line: String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
         \"args\":{{\"name\":\"lwt\"}}}}"
    ));
    for ring in rings {
        let tid = ring.worker();
        push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(ring.label())
        ));
        if ring.dropped() > 0 {
            // Surface wraparound loss in the trace itself.
            push(format!(
                "{{\"name\":\"ring_dropped\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":0.000,\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"dropped\":{}}}}}",
                ring.dropped()
            ));
        }
        for e in ring.snapshot() {
            push(format!(
                "{{\"name\":\"{}\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"arg\":{},\"span\":{}}}}}",
                e.kind.name(),
                ts_us(e.ts_ns),
                e.arg,
                e.span
            ));
        }
    }
    // Causal layer: span duration tracks + spawn/join flow arrows,
    // reconstructed by the same analyzer the offline report uses.
    let workers: Vec<(u32, Vec<crate::event::Event>)> =
        rings.iter().map(|r| (r.worker(), r.snapshot())).collect();
    let report = crate::critical_path::from_worker_events(&workers);
    for (span, st) in &report.spans {
        for seg in &st.segments {
            push(format!(
                "{{\"name\":\"span {span}\",\"cat\":\"span\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":{PID},\"tid\":{},\
                 \"args\":{{\"span\":{span},\"parent\":{}}}}}",
                ts_us(seg.start_ns),
                ts_us(seg.dur_ns()),
                seg.worker,
                st.parent
            ));
        }
        if let (Some((sw, spawn_ts)), Some((fw, first_ts))) = (st.spawn, st.first_run()) {
            let id = span << 1;
            push(format!(
                "{{\"name\":\"spawn\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\
                 \"ts\":{},\"pid\":{PID},\"tid\":{sw}}}",
                ts_us(spawn_ts)
            ));
            push(format!(
                "{{\"name\":\"spawn\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\
                 \"ts\":{},\"pid\":{PID},\"tid\":{fw}}}",
                ts_us(first_ts.max(spawn_ts))
            ));
        }
        if let (Some((cw, complete_ts)), Some((jw, join_ts, _))) = (st.complete, st.joined_by) {
            let id = (span << 1) | 1;
            push(format!(
                "{{\"name\":\"join\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\
                 \"ts\":{},\"pid\":{PID},\"tid\":{cw}}}",
                ts_us(complete_ts)
            ));
            push(format!(
                "{{\"name\":\"join\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\
                 \"ts\":{},\"pid\":{PID},\"tid\":{jw}}}",
                ts_us(join_ts.max(complete_ts))
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render every registered ring to `path`, creating parent
/// directories as needed.
pub fn write_to(path: &std::path::Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(&registry::rings()))
}

/// Where `export(run)` will write, honoring `LWT_TRACE`.
///
/// `LWT_TRACE=<path>` (anything other than a bare enable token like
/// `1`/`true`) is used verbatim; otherwise the default is
/// `target/lwt-trace/<run>.json` relative to the current directory.
#[must_use]
pub fn destination(run: &str) -> PathBuf {
    match std::env::var("LWT_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" && v != "1" && v != "true" => PathBuf::from(v),
        _ => PathBuf::from("target")
            .join("lwt-trace")
            .join(format!("{run}.json")),
    }
}

/// Export the merged trace for run `run` if tracing is enabled.
///
/// Returns `Ok(None)` when tracing is off (the common, free case),
/// `Ok(Some(path))` after a successful write. Call this once, after
/// the workload has quiesced (rings are drained racily otherwise —
/// see [`crate::ring`]).
pub fn export(run: &str) -> io::Result<Option<PathBuf>> {
    if !registry::tracing_enabled() {
        return Ok(None);
    }
    let path = destination(run);
    write_to(&path)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ring_with(worker: u32, label: &str, events: &[(u64, EventKind, u64)]) -> Arc<EventRing> {
        let ring = Arc::new(EventRing::new(worker, label, 64));
        for &(ts, kind, arg) in events {
            ring.push(ts, kind, arg, 0);
        }
        ring
    }

    #[test]
    fn render_emits_metadata_and_instant_events() {
        let rings = vec![
            ring_with(0, "abt-es-0", &[(1_500, EventKind::UltSpawn, 0)]),
            ring_with(1, "abt-es-1", &[(2_750, EventKind::StealHit, 0)]),
        ];
        let json = render(&rings);
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"abt-es-0\""));
        assert!(json.contains("\"name\":\"abt-es-1\""));
        assert!(json.contains("\"name\":\"UltSpawn\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ts\":2.750"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn render_escapes_labels() {
        let rings = vec![ring_with(0, "weird\"label\\", &[])];
        let json = render(&rings);
        assert!(json.contains("weird\\\"label\\\\"));
    }

    #[test]
    fn ts_formats_with_ns_precision() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn dropped_events_are_surfaced() {
        let ring = Arc::new(EventRing::new(0, "w", 8));
        for i in 0..20 {
            ring.push(i, EventKind::Yield, 0, 0);
        }
        let json = render(&[ring]);
        assert!(json.contains("\"name\":\"ring_dropped\""));
        assert!(json.contains("\"dropped\":12"));
        // Root-level lossage header flags the truncation too.
        assert!(json.contains("\"otherData\":{\"ring_dropped\":12,\"truncated\":true}"));
    }

    #[test]
    fn lossless_trace_header_says_not_truncated() {
        let rings = vec![ring_with(0, "w0", &[(10, EventKind::UltRun, 0)])];
        let json = render(&rings);
        assert!(json.contains("\"otherData\":{\"ring_dropped\":0,\"truncated\":false}"));
    }

    /// Spans become `ph:"X"` duration tracks plus spawn/join flow
    /// arrows with the documented flow-id scheme.
    #[test]
    fn spans_export_segments_and_flows() {
        let spawner = Arc::new(EventRing::new(0, "master", 64));
        spawner.push(100, EventKind::SpanSpawn, 0, 9);
        let worker = Arc::new(EventRing::new(1, "w1", 64));
        worker.push(300, EventKind::UltRun, 0, 9);
        worker.push(700, EventKind::SpanComplete, 0, 9);
        let joiner = Arc::new(EventRing::new(0, "master", 64));
        // (same tid as spawner ring is fine for the exporter)
        joiner.push(800, EventKind::SpanJoin, 0, 9);

        let json = render(&[spawner, worker, joiner]);
        assert!(json.contains("\"name\":\"span 9\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":0.400"), "segment 300..700 -> 400ns: {json}");
        // spawn flow id = 9<<1 = 18; join flow id = 19.
        assert!(json.contains("\"name\":\"spawn\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":18"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":18"));
        assert!(json.contains("\"name\":\"join\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":19"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":19"));
        // Instants now carry the span id in args.
        assert!(json.contains("\"args\":{\"arg\":0,\"span\":9}"));
    }
}
