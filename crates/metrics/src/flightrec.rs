//! Post-mortem flight recorder: bounded diagnostic bundles on stall
//! or drain failure.
//!
//! When the watchdog flags a stall or `Glt::finalize` returns a
//! `DrainError`, the triggering layer calls [`dump`], which writes a
//! single JSON bundle to `target/lwt-flightrec/<unix_ms>-<n>-<reason>.json`:
//! the last-N events of every worker ring, the full counter
//! snapshot, the worker utilization table, and any registered
//! *sections* (the watchdog's blocked-unit report, the chaos engine's
//! seed/site state — pushed in by those crates via
//! [`register_section`], keeping the dependency arrow pointing into
//! this crate). A hung-under-load run becomes an artifact you can
//! diff and replay (`LWT_CHAOS_SEED` is in the bundle) instead of a
//! stderr line.
//!
//! Everything is bounded: dumps are off unless `LWT_FLIGHTREC` is
//! set (one relaxed load), capped at `LWT_FLIGHTREC_MAX` bundles per
//! process (default 8), and each ring contributes at most
//! `LWT_FLIGHTREC_EVENTS` events (default 256). `LWT_FLIGHTREC_DIR`
//! overrides the output directory.

use crate::registry::{self, CounterSnapshot};
use crate::timeline;
use crate::trace::json_escape;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default per-process dump cap (`LWT_FLIGHTREC_MAX`).
pub const DEFAULT_MAX_DUMPS: u64 = 8;
/// Default retained events per ring (`LWT_FLIGHTREC_EVENTS`).
pub const DEFAULT_EVENTS_PER_RING: usize = 256;

/// 0 = uninitialized (consult `LWT_FLIGHTREC`), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether the flight recorder is armed: one relaxed load, with
/// `LWT_FLIGHTREC` consulted once on first call (unset, empty, or
/// `0` ⇒ off).
#[inline]
#[must_use]
pub fn flightrec_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = matches!(std::env::var("LWT_FLIGHTREC"), Ok(v) if !v.is_empty() && v != "0");
    let _ = ENABLED.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    ENABLED.load(Ordering::Relaxed) == 2
}

/// Programmatically arm or disarm the recorder; overrides
/// `LWT_FLIGHTREC`.
pub fn set_flightrec(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

type SectionFn = Box<dyn Fn() -> String + Send>;

/// Named bundle sections contributed by higher layers. Each provider
/// must return a **pre-rendered JSON value** (object/array/string);
/// it is embedded verbatim under `"sections"`.
static SECTIONS: Mutex<Vec<(String, SectionFn)>> = Mutex::new(Vec::new());

fn lock_sections() -> MutexGuard<'static, Vec<(String, SectionFn)>> {
    SECTIONS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Register (or replace) a named bundle section. Higher layers call
/// this once at arm time — e.g. lwt-chaos registers `"watchdog"`
/// (blocked-unit report) and `"chaos"` (seed/rate/site sequences).
pub fn register_section(name: &str, provider: impl Fn() -> String + Send + 'static) {
    let mut sections = lock_sections();
    if let Some(slot) = sections.iter_mut().find(|(n, _)| n == name) {
        slot.1 = Box::new(provider);
    } else {
        sections.push((name.to_string(), Box::new(provider)));
    }
}

/// Monotone dump counter: rate cap plus filename uniqueness.
static DUMPS: AtomicU64 = AtomicU64::new(0);

fn max_dumps() -> u64 {
    static MAX: OnceLock<u64> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("LWT_FLIGHTREC_MAX")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MAX_DUMPS)
    })
}

fn events_per_ring() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("LWT_FLIGHTREC_EVENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_EVENTS_PER_RING)
    })
}

fn destination_dir() -> PathBuf {
    std::env::var("LWT_FLIGHTREC_DIR").map_or_else(
        |_| PathBuf::from("target").join("lwt-flightrec"),
        PathBuf::from,
    )
}

fn counters_json(c: &CounterSnapshot) -> String {
    format!(
        "{{\"ults_created\":{},\"tasklets_created\":{},\"yields\":{},\
         \"steal_attempts\":{},\"steal_hits\":{},\"os_threads_spawned\":{},\
         \"feb_blocks\":{},\"feb_wakes\":{},\"messages_executed\":{},\
         \"nested_regions\":{},\"nested_pool_level\":{},\
         \"nested_pool_high_water\":{},\"stack_cache_hits\":{},\
         \"stack_cache_misses\":{},\"queue_contention\":{},\
         \"faults_injected\":{},\"stalls_detected\":{},\"parks\":{},\
         \"unparks\":{},\"workers_parked_level\":{},\
         \"workers_parked_high_water\":{},\"ring_dropped\":{},\
         \"io_registrations\":{},\"io_events\":{},\"io_wakes\":{},\
         \"timers_armed\":{},\"timers_fired\":{},\"timers_cancelled\":{},\
         \"io_timeouts\":{},\"requests_shed\":{},\"handler_panics\":{},\
         \"accept_pauses\":{}}}",
        c.ults_created,
        c.tasklets_created,
        c.yields,
        c.steal_attempts,
        c.steal_hits,
        c.os_threads_spawned,
        c.feb_blocks,
        c.feb_wakes,
        c.messages_executed,
        c.nested_regions,
        c.nested_pool_level,
        c.nested_pool_high_water,
        c.stack_cache_hits,
        c.stack_cache_misses,
        c.queue_contention,
        c.faults_injected,
        c.stalls_detected,
        c.parks,
        c.unparks,
        c.workers_parked_level,
        c.workers_parked_high_water,
        c.ring_dropped,
        c.io_registrations,
        c.io_events,
        c.io_wakes,
        c.timers_armed,
        c.timers_fired,
        c.timers_cancelled,
        c.io_timeouts,
        c.requests_shed,
        c.handler_panics,
        c.accept_pauses,
    )
}

/// Render the full bundle as a JSON document. Public for tests; use
/// [`dump`] in production paths.
#[must_use]
pub fn render_bundle(reason: &str) -> String {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let mut out = String::with_capacity(16 * 1024);
    out.push_str(&format!(
        "{{\n\"reason\":\"{}\",\n\"unix_ms\":{unix_ms},\n",
        json_escape(reason)
    ));
    out.push_str(&format!(
        "\"counters\":{},\n",
        counters_json(&registry::snapshot().counters)
    ));
    out.push_str(&format!(
        "\"utilization\":{},\n",
        timeline::utilization().to_json()
    ));
    out.push_str("\"rings\":[");
    let cap = events_per_ring();
    for (i, ring) in registry::rings().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let events = ring.snapshot();
        let tail = &events[events.len().saturating_sub(cap)..];
        out.push_str(&format!(
            "\n{{\"worker\":{},\"label\":\"{}\",\"pushed\":{},\"dropped\":{},\"events\":[",
            ring.worker(),
            json_escape(ring.label()),
            ring.pushed(),
            ring.dropped(),
        ));
        for (j, e) in tail.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ts_ns\":{},\"kind\":\"{}\",\"arg\":{},\"span\":{}}}",
                e.ts_ns,
                e.kind.name(),
                e.arg,
                e.span
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\n\"sections\":{");
    for (i, (name, provider)) in lock_sections().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n\"{}\":{}", json_escape(name), provider()));
    }
    out.push_str("}\n}\n");
    out
}

/// Write a bundle for `reason` into `dir`. Bypasses the enable gate
/// and rate cap (those live in [`dump`]); the sequence number still
/// advances so filenames stay unique.
pub fn dump_to(dir: &std::path::Path, reason: &str) -> std::io::Result<PathBuf> {
    let seq = DUMPS.fetch_add(1, Ordering::Relaxed);
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let slug: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(32)
        .collect();
    let path = dir.join(format!("{unix_ms}-{seq}-{slug}.json"));
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, render_bundle(reason))?;
    Ok(path)
}

/// Dump a post-mortem bundle if the recorder is armed and the
/// per-process cap hasn't been hit. Returns the path on success;
/// `None` when disarmed, capped, or on a write error (reported to
/// stderr — a recorder failure must never take the workload down).
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !flightrec_enabled() {
        return None;
    }
    if DUMPS.load(Ordering::Relaxed) >= max_dumps() {
        return None;
    }
    match dump_to(&destination_dir(), reason) {
        Ok(path) => {
            eprintln!("lwt-flightrec: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("lwt-flightrec: dump failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn bundle_has_required_keys_and_registered_sections() {
        register_section("test_section", || "{\"answer\":42}".to_string());
        // Re-registering replaces, not duplicates.
        register_section("test_section", || "{\"answer\":43}".to_string());
        registry::emit(EventKind::Yield, 0); // ring exists iff tracing on
        let bundle = render_bundle("unit \"test\"");
        for key in [
            "\"reason\":", "\"unix_ms\":", "\"counters\":", "\"utilization\":",
            "\"rings\":", "\"sections\":",
        ] {
            assert!(bundle.contains(key), "missing {key} in {bundle}");
        }
        assert!(bundle.contains("unit \\\"test\\\""), "reason must be escaped");
        assert!(bundle.contains("\"test_section\":{\"answer\":43}"));
        assert!(!bundle.contains("\"answer\":42"));
        assert!(bundle.contains("\"ring_dropped\":"));
        assert_eq!(
            bundle.matches("\"test_section\"").count(),
            1,
            "replaced section must appear once"
        );
    }

    #[test]
    fn dump_to_writes_a_file_with_unique_names() {
        let dir = std::env::temp_dir().join("lwt-flightrec-test");
        let a = dump_to(&dir, "reason one").expect("write");
        let b = dump_to(&dir, "reason one").expect("write");
        assert_ne!(a, b, "sequence number must keep filenames unique");
        let body = std::fs::read_to_string(&a).expect("read back");
        assert!(body.contains("\"reason\":\"reason one\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
