//! # lwt-metrics — always-on lightweight counters
//!
//! The paper quantifies several of its claims with *counts*, not times:
//! "with 36 threads, [gcc] spawns **35,036 threads** (36 for the main
//! team, and 35 for each outer loop iteration)" while "icc reuses the
//! idle threads but it still creates … **1,296**" (§IX-C). To check
//! such claims mechanically, the runtimes expose a few [`Counter`]s
//! (OS threads spawned, nested regions opened, …) that tests can
//! [`Counter::reset`] around a workload and assert exact formulas on.
//!
//! Counters are single relaxed atomic increments: cheap enough to stay
//! on unconditionally.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter (resettable for tests).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter, usable in `static`s.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Record one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A high-water-mark gauge: tracks the maximum of a level that can
/// rise and fall (e.g. pool size, concurrent regions).
#[derive(Debug, Default)]
pub struct Gauge {
    level: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge, usable in `static`s.
    #[must_use]
    pub const fn new() -> Self {
        Gauge {
            level: AtomicU64::new(0),
            high: AtomicU64::new(0),
        }
    }

    /// Raise the level by one, updating the high-water mark.
    pub fn rise(&self) {
        let now = self.level.fetch_add(1, Ordering::Relaxed) + 1;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the level by one.
    pub fn fall(&self) {
        self.level.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn level(&self) -> u64 {
        self.level.load(Ordering::Relaxed)
    }

    /// Highest level seen since the last reset.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Reset level and high-water mark to zero.
    pub fn reset(&self) {
        self.level.store(0, Ordering::Relaxed);
        self.high.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_concurrent() {
        static C: Counter = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get(), 40_000);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.rise();
        g.rise();
        g.fall();
        g.rise();
        assert_eq!(g.level(), 2);
        assert_eq!(g.high_water(), 2);
        g.rise();
        g.rise();
        assert_eq!(g.high_water(), 4);
        g.reset();
        assert_eq!(g.high_water(), 0);
    }
}
