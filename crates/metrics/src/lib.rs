//! # lwt-metrics — runtime-wide observability: counters, histograms,
//! event rings, and Chrome-trace export
//!
//! The paper quantifies several of its claims with *counts*, not times:
//! "with 36 threads, [gcc] spawns **35,036 threads** (36 for the main
//! team, and 35 for each outer loop iteration)" while "icc reuses the
//! idle threads but it still creates … **1,296**" (§IX-C). And its
//! *scheduler-behavior* claims — where work units run, how often they
//! migrate, who steals from whom — are only explainable with per-event
//! telemetry. This crate provides both layers:
//!
//! * **Always-on counters** ([`Counter`], [`Gauge`]): single relaxed
//!   atomic increments, cheap enough to never turn off. The well-known
//!   runtime-wide set lives in [`registry::COUNTERS`].
//! * **Always-on histograms** ([`Histogram`]): log2-bucketed latency
//!   distributions (spawn-to-first-run, steal-loop dwell) with
//!   p50/p99/max summaries.
//! * **Opt-in event rings** ([`EventRing`]): per-worker fixed-capacity
//!   lock-free rings of typed scheduler events ([`EventKind`]) with
//!   monotonic nanosecond timestamps. Ring writes hide behind one
//!   relaxed load of the `LWT_TRACE` enabled flag, so the disabled
//!   cost is near zero.
//! * **Snapshot API** ([`registry::snapshot`], [`registry::scoped`]):
//!   scope-reset a workload and read back a structured
//!   [`MetricsSnapshot`], race-free against other suites in the same
//!   process.
//! * **Chrome trace-event export** ([`trace::export`]): merge every
//!   worker's ring into a Perfetto-loadable JSON under
//!   `target/lwt-trace/<run>.json`, gated by `LWT_TRACE=<path|1>` —
//!   including per-span duration tracks and spawn/join flow arrows.
//! * **Causal task spans** ([`span`]): every unit gets a process-
//!   unique trace id at spawn carrying its parent's id; the offline
//!   analyzer ([`critical_path`]) rebuilds the task DAG from the
//!   rings and reports critical-path length, per-span busy/queue
//!   time, and steal-migration counts.
//! * **Worker time accounting** ([`timeline`]): a five-state
//!   Busy/Dispatch/Steal/Idle/Parked machine per worker, accumulated
//!   in wall ns and summarized by [`registry::utilization`] — the
//!   table every `BENCH_*.json` embeds.
//! * **Flight recorder** ([`flightrec`]): on stall or drain failure,
//!   a bounded post-mortem bundle (ring tails, counters, utilization,
//!   watchdog/chaos sections) under `target/lwt-flightrec/`, gated by
//!   `LWT_FLIGHTREC`.
//!
//! This crate deliberately has **zero dependencies** (std only) so any
//! workspace crate — including `lwt-sync` users — can depend on it
//! without cycles.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

pub mod clock;
pub mod critical_path;
pub mod event;
pub mod flightrec;
pub mod histogram;
pub mod registry;
pub mod ring;
pub mod span;
pub mod timeline;
pub mod trace;

pub use event::{Event, EventKind};
pub use histogram::{Histogram, HistogramSummary};
pub use registry::{
    emit, emit_with_span, snapshot, scoped, set_tracing, tracing_enabled, CounterSnapshot,
    Counters, MetricsSnapshot, COUNTERS,
};
pub use ring::EventRing;
pub use timeline::{set_accounting, utilization, Utilization, WorkerState};

/// A monotonically increasing event counter (resettable for tests).
///
/// # Reset races
///
/// `reset`/`get` pairs from concurrently running test suites can
/// interleave (suite A resets between suite B's reset and read,
/// stealing B's events). Don't hand-roll that protocol: use
/// [`registry::scoped`], which serializes reset → workload → snapshot
/// under a process-wide lock, or [`Counter::reset`]'s returned value
/// (an atomic swap, so every event is observed exactly once).
///
/// Cache-line aligned: the well-known counters sit side by side in
/// [`registry::COUNTERS`], and hot-path increments from different
/// workers (a spawner bumping `ults_created` while an idle worker
/// bumps `steal_attempts`) must not false-share a line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter, usable in `static`s.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Record one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter, returning the previous value.
    ///
    /// The swap is atomic: concurrent `inc`s land either in the
    /// returned value or in the fresh epoch, never both and never
    /// neither.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A high-water-mark gauge: tracks the maximum of a level that can
/// rise and fall (e.g. pool size, concurrent regions).
///
/// See [`Counter`] for the reset-race contract; [`registry::scoped`]
/// covers gauges too. Cache-line aligned for the same reason as
/// [`Counter`] (`level` and `high` stay together by design — they are
/// always touched by the same `rise`).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Gauge {
    level: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge, usable in `static`s.
    #[must_use]
    pub const fn new() -> Self {
        Gauge {
            level: AtomicU64::new(0),
            high: AtomicU64::new(0),
        }
    }

    /// Raise the level by one, updating the high-water mark.
    pub fn rise(&self) {
        let now = self.level.fetch_add(1, Ordering::Relaxed) + 1;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the level by one, saturating at zero.
    ///
    /// Saturation matters: a bare `fetch_sub` on a zero level (easy to
    /// hit when a `reset` races a worker's rise/fall pair) wraps to
    /// `u64::MAX`, and the next `rise` would then poison `high_water`
    /// forever.
    pub fn fall(&self) {
        // fetch_update retries on contention; the level only changes
        // by ±1 so the loop is short.
        let _ = self
            .level
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current level.
    #[must_use]
    pub fn level(&self) -> u64 {
        self.level.load(Ordering::Relaxed)
    }

    /// Highest level seen since the last reset.
    ///
    /// [`Gauge::rise`] bumps `level` and `high` with two separate
    /// relaxed RMWs, so a reader landing between them could observe a
    /// mark *below* the level it just read — a torn observation the
    /// model-checker work documented (DESIGN.md §10). Clamping to the
    /// level observed inside this call restores the invariant readers
    /// actually rely on: `high_water() >= level()` when the two reads
    /// happen in that order (as [`registry::snapshot`] does, reading
    /// the level first). A residual window remains only if a `fall`
    /// also lands between a `rise`'s two RMWs — then both reads can
    /// miss the peak by one; the mark is still never below the final
    /// level.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        let high = self.high.load(Ordering::Relaxed);
        high.max(self.level.load(Ordering::Relaxed))
    }

    /// Reset level and high-water mark to zero.
    pub fn reset(&self) {
        self.level.store(0, Ordering::Relaxed);
        self.high.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_concurrent() {
        static C: Counter = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get(), 40_000);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.rise();
        g.rise();
        g.fall();
        g.rise();
        assert_eq!(g.level(), 2);
        assert_eq!(g.high_water(), 2);
        g.rise();
        g.rise();
        assert_eq!(g.high_water(), 4);
        g.reset();
        assert_eq!(g.high_water(), 0);
    }

    /// Regression: `high_water` must never report below a level read
    /// inside the same call — `rise` updates `level` and `high` with
    /// two separate relaxed RMWs, and a reader between them used to
    /// see the stale mark. Exercised concurrently: a riser climbs
    /// while a reader checks the invariant after every observation.
    #[test]
    fn gauge_high_water_never_trails_its_own_level_read() {
        static G: Gauge = Gauge::new();
        G.reset();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..50_000 {
                    G.rise();
                }
            });
            s.spawn(|| {
                for _ in 0..50_000 {
                    // level() first: the mark reported afterwards must
                    // cover it (the snapshot read order).
                    let level = G.level();
                    let mark = G.high_water();
                    assert!(
                        mark >= level,
                        "torn gauge observation: high_water {mark} < level {level}"
                    );
                }
            });
        });
        assert_eq!(G.level(), 50_000);
        assert_eq!(G.high_water(), 50_000);
    }

    /// Regression: `fall` on an empty gauge used to wrap the level to
    /// `u64::MAX`, so the next `rise` recorded a poisoned high-water
    /// mark. It must saturate instead.
    #[test]
    fn gauge_fall_saturates_at_zero() {
        let g = Gauge::new();
        g.fall();
        assert_eq!(g.level(), 0);
        g.rise();
        assert_eq!(g.level(), 1);
        assert_eq!(g.high_water(), 1, "high_water poisoned by underflow");

        // The reset-race shape: rise, reset (level forced to 0), then
        // the worker's matching fall arrives late.
        g.reset();
        g.rise();
        g.reset();
        g.fall();
        g.rise();
        assert_eq!(g.high_water(), 1);
    }
}
