//! Typed scheduler events.
//!
//! One fixed vocabulary shared by all six runtimes, so merged traces
//! can be compared across them: the same `StealHit` event means "a
//! work unit migrated" whether massivethreads' random victim loop or
//! openmp's icc task sweep produced it.

/// What happened. The `arg` field of an [`Event`] carries a
/// kind-specific payload (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A ULT was created. `arg`: runtime-specific spawn context —
    /// qthreads: target shepherd; massivethreads: 1 for work-first,
    /// 0 for help-first; converse: target processor; argobots/go: 0.
    UltSpawn = 0,
    /// A worker began (or resumed) running a ULT. `arg`: 0.
    UltRun = 1,
    /// A ULT yielded back to its scheduler. `arg`: 0.
    Yield = 2,
    /// A worker probed a victim's deque. `arg`: victim worker id.
    StealAttempt = 3,
    /// A probe found work. `arg`: victim worker id.
    StealHit = 4,
    /// A join blocked on an empty full/empty bit. `arg`: 0.
    FebBlock = 5,
    /// A blocked FEB reader resumed. `arg`: 0.
    FebWake = 6,
    /// A stackless unit ran to completion on the worker's own stack
    /// (argobots tasklet, converse message, openmp task). `arg`: 0.
    TaskletExec = 7,
    /// An execution stream / worker thread entered its scheduler
    /// loop. `arg`: worker id.
    EsStart = 8,
    /// An execution stream / worker thread left its scheduler loop.
    /// `arg`: worker id.
    EsStop = 9,
    /// A nested parallel region opened (openmp). `arg`: region width.
    NestedRegionOpen = 10,
    /// A ready-queue operation lost a race: Chase-Lev steal `Retry`,
    /// or an MPSC injector pop that observed a half-linked node.
    /// `arg`: 0 for an injector pop, 1 for a deque steal.
    QueueContention = 11,
    /// The chaos engine injected a fault at a decision point.
    /// `arg`: packed `(site << 56) | sequence-index` — see
    /// `lwt_chaos::unpack_fault`.
    FaultInjected = 12,
    /// The stall watchdog flagged a silent worker or an over-deadline
    /// wait. `arg`: worker id for worker stalls, the caller-supplied
    /// wait token for blocked units. Nothing was killed.
    StallDetected = 13,
    /// A worker went to sleep on its parker after a dry steal sweep
    /// (`lwt_sched::ParkGroup::park`). `arg`: worker id.
    WorkerParked = 14,
    /// A parked worker resumed — woken by a spawner's wake-one
    /// notification or its backstop timeout. `arg`: worker id.
    WorkerUnparked = 15,
    /// A work unit was created and assigned a causal span id. `span`:
    /// the new child span; `arg`: the spawner's span (0 when spawned
    /// from outside any traced unit — an external master thread).
    /// Recorded on the *spawner's* ring; the flow edge to the child's
    /// first `UltRun` is what the trace exporter draws.
    SpanSpawn = 16,
    /// A work unit ran to completion. `span`: the finished span.
    /// Recorded on the worker that executed the final segment.
    SpanComplete = 17,
    /// A joiner observed a unit's completion. `span`: the joined
    /// child's span; `arg`: the joiner's own span (0 for an external
    /// joiner). The child→joiner edge is a critical-path dependency.
    SpanJoin = 18,
    /// A stackless future task was polled by a worker (the async
    /// bridge's dispatch). Opens a critical-path segment exactly like
    /// `UltRun`/`TaskletExec`; a `Pending` poll closes it with a
    /// `Yield`, a `Ready` poll with `SpanComplete`. `arg`: 0.
    AsyncPoll = 19,
    /// A future's waker fired and the task was (re)scheduled onto a
    /// ready queue — or coalesced into an already-running poll.
    /// `span`: the woken task's span (the event's *subject*; the
    /// waker may run anywhere). `arg`: 0 for a requeue, 1 for a
    /// woken-while-polling coalesce.
    AsyncWake = 20,
    /// A work unit began waiting for I/O readiness on the reactor
    /// (`lwt-net`): a ULT entering its readiness relax loop, or an
    /// async task returning `Pending` with its waker parked in a
    /// registration slot. `arg`: packed `(token << 1) | direction`
    /// (0 = read, 1 = write).
    IoWait = 21,
    /// The reactor observed readiness for a registration and delivered
    /// it — set the ready flag and, if a waker was parked, fired it.
    /// `arg`: packed `(token << 1) | direction` as for [`IoWait`].
    ///
    /// [`IoWait`]: EventKind::IoWait
    IoReady = 22,
    /// A deadline was armed on the timer wheel (`lwt_sched::timer`):
    /// an I/O deadline, an HTTP idle/header timeout, or a drain
    /// deadline. `arg`: the absolute wheel tick (ms) it expires at.
    TimerArm = 23,
    /// An armed timer reached its deadline and fired — the entry's
    /// waiter (parked waker or relax-looping ULT) is about to be
    /// resumed. Cancelled entries never emit this. `arg`: the wheel
    /// tick it was armed for.
    TimerFire = 24,
    /// The HTTP server shed load instead of running a handler: the
    /// in-flight request semaphore was saturated and the request got
    /// a `503 Service Unavailable` + `Retry-After`. `arg`: the
    /// in-flight limit that was hit.
    RequestShed = 25,
    /// A request handler panicked; `catch_unwind` contained it and the
    /// connection got a `500` then close — the worker survived.
    /// `arg`: 0.
    HandlerPanic = 26,
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; 27] = [
        EventKind::UltSpawn,
        EventKind::UltRun,
        EventKind::Yield,
        EventKind::StealAttempt,
        EventKind::StealHit,
        EventKind::FebBlock,
        EventKind::FebWake,
        EventKind::TaskletExec,
        EventKind::EsStart,
        EventKind::EsStop,
        EventKind::NestedRegionOpen,
        EventKind::QueueContention,
        EventKind::FaultInjected,
        EventKind::StallDetected,
        EventKind::WorkerParked,
        EventKind::WorkerUnparked,
        EventKind::SpanSpawn,
        EventKind::SpanComplete,
        EventKind::SpanJoin,
        EventKind::AsyncPoll,
        EventKind::AsyncWake,
        EventKind::IoWait,
        EventKind::IoReady,
        EventKind::TimerArm,
        EventKind::TimerFire,
        EventKind::RequestShed,
        EventKind::HandlerPanic,
    ];

    /// Stable display name (used as the Chrome-trace event `name`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::UltSpawn => "UltSpawn",
            EventKind::UltRun => "UltRun",
            EventKind::Yield => "Yield",
            EventKind::StealAttempt => "StealAttempt",
            EventKind::StealHit => "StealHit",
            EventKind::FebBlock => "FebBlock",
            EventKind::FebWake => "FebWake",
            EventKind::TaskletExec => "TaskletExec",
            EventKind::EsStart => "EsStart",
            EventKind::EsStop => "EsStop",
            EventKind::NestedRegionOpen => "NestedRegionOpen",
            EventKind::QueueContention => "QueueContention",
            EventKind::FaultInjected => "FaultInjected",
            EventKind::StallDetected => "StallDetected",
            EventKind::WorkerParked => "WorkerParked",
            EventKind::WorkerUnparked => "WorkerUnparked",
            EventKind::SpanSpawn => "SpanSpawn",
            EventKind::SpanComplete => "SpanComplete",
            EventKind::SpanJoin => "SpanJoin",
            EventKind::AsyncPoll => "AsyncPoll",
            EventKind::AsyncWake => "AsyncWake",
            EventKind::IoWait => "IoWait",
            EventKind::IoReady => "IoReady",
            EventKind::TimerArm => "TimerArm",
            EventKind::TimerFire => "TimerFire",
            EventKind::RequestShed => "RequestShed",
            EventKind::HandlerPanic => "HandlerPanic",
        }
    }

    /// Inverse of the `repr(u8)` discriminant; `None` for unknown
    /// values (a torn ring slot read mid-overwrite).
    #[must_use]
    pub const fn from_u8(v: u8) -> Option<EventKind> {
        if (v as usize) < EventKind::ALL.len() {
            Some(EventKind::ALL[v as usize])
        } else {
            None
        }
    }
}

/// One recorded scheduler event, as read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch ([`crate::clock`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`] variant docs).
    pub arg: u64,
    /// Causal span this event belongs to: for the `Span*` kinds the
    /// span the event is *about*, for every other kind the span that
    /// was executing on the emitting thread ([`crate::span::current`]),
    /// 0 when none (scheduler-loop events, tracing enabled mid-run).
    pub span: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminant_round_trips() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(EventKind::from_u8(EventKind::ALL.len() as u8), None);
        assert_eq!(EventKind::from_u8(u8::MAX), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
