//! Measurement statistics matching the paper's protocol: "all results
//! … were calculated as the average of 500 executions. The maximum
//! relative standard deviation (RSD) observed … was around 2%."

use std::time::{Duration, Instant};

/// Summary of repeated duration samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Smallest sample.
    pub min: Duration,
    /// Largest sample.
    pub max: Duration,
    /// Standard deviation.
    pub stddev: Duration,
    /// Number of samples aggregated.
    pub samples: usize,
}

impl Stats {
    /// Aggregate a non-empty set of samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    #[must_use]
    pub fn from_samples(samples: &[Duration]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len() as f64;
        let mean_s = samples.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|s| {
                let d = s.as_secs_f64() - mean_s;
                d * d
            })
            .sum::<f64>()
            / n;
        Stats {
            mean: Duration::from_secs_f64(mean_s),
            min: *samples.iter().min().expect("non-empty"),
            max: *samples.iter().max().expect("non-empty"),
            stddev: Duration::from_secs_f64(var.sqrt()),
            samples: samples.len(),
        }
    }

    /// Relative standard deviation in percent (the paper's dispersion
    /// metric).
    #[must_use]
    pub fn rsd_pct(&self) -> f64 {
        let mean = self.mean.as_secs_f64();
        if mean == 0.0 {
            0.0
        } else {
            100.0 * self.stddev.as_secs_f64() / mean
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:?} (rsd {:.2}%, n={})",
            self.mean,
            self.rsd_pct(),
            self.samples
        )
    }
}

/// Run `measure` `reps` times and aggregate the durations it returns.
///
/// `measure` returns the duration of the *timed section* it chose —
/// letting benchmarks exclude setup/teardown exactly as the paper does
/// (e.g. OpenMP thread-team creation is excluded from Fig. 2).
pub fn run_reps(reps: usize, mut measure: impl FnMut() -> Duration) -> Stats {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        samples.push(measure());
    }
    Stats::from_samples(&samples)
}

/// Time a closure.
pub fn time(f: impl FnOnce()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_samples() {
        let s = Stats::from_samples(&[Duration::from_micros(10); 8]);
        assert_eq!(s.mean, Duration::from_micros(10));
        assert_eq!(s.min, s.max);
        assert_eq!(s.rsd_pct(), 0.0);
        assert_eq!(s.samples, 8);
    }

    #[test]
    fn stats_capture_spread() {
        let s = Stats::from_samples(&[
            Duration::from_micros(8),
            Duration::from_micros(12),
        ]);
        assert_eq!(s.mean, Duration::from_micros(10));
        assert_eq!(s.min, Duration::from_micros(8));
        assert_eq!(s.max, Duration::from_micros(12));
        assert!((s.rsd_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_samples_rejected() {
        let _ = Stats::from_samples(&[]);
    }

    #[test]
    fn run_reps_collects_requested_count() {
        let mut calls = 0;
        let s = run_reps(5, || {
            calls += 1;
            Duration::from_micros(calls)
        });
        assert_eq!(s.samples, 5);
        assert_eq!(s.min, Duration::from_micros(1));
        assert_eq!(s.max, Duration::from_micros(5));
    }

    #[test]
    fn time_measures_something() {
        let d = time(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(4));
    }
}
