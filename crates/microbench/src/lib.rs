//! # lwt-microbench — the paper's microbenchmark suite
//!
//! Implements every experiment in the paper's evaluation (§V–§IX): the
//! basic create/join probes (Figs. 2–3), the four parallel code
//! patterns over the Sscal BLAS-1 kernel (Figs. 4–8), the Top500
//! motivation chart (Fig. 1), and printable encodings of Tables I–II.
//!
//! Each figure has a binary (`fig1_top500` … `fig8_nested_task`,
//! `table1_semantics`, `table2_functions`) that emits CSV with the same
//! series the paper plots. Shared measurement configuration comes from
//! the environment:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `LWT_THREADS` | comma-separated thread counts to sweep | `1,2,4` |
//! | `LWT_REPS` | repetitions per measurement (paper: 500) | `50` |
//! | `LWT_N` | work units / iterations for Figs. 4–6 | `1000` |
//! | `LWT_NESTED_N` | outer=inner iteration count for Fig. 7 | `100` |
//! | `LWT_PARENTS`/`LWT_CHILDREN` | Fig. 8 task tree shape | `100`/`4` |
//!
//! The paper averages 500 executions and reports ≤ 2% relative standard
//! deviation; [`stats::Stats`] reports both so runs can be checked
//! against that protocol.

#![warn(missing_docs)]

pub mod kernels;
pub mod runners;
pub mod stats;
pub mod top500;

use std::time::Duration;

/// Thread counts to sweep, from `LWT_THREADS` (default `1,2,4`).
#[must_use]
pub fn thread_sweep() -> Vec<usize> {
    std::env::var("LWT_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// Repetitions per measurement, from `LWT_REPS` (default 50; the paper
/// used 500).
#[must_use]
pub fn reps() -> usize {
    env_usize("LWT_REPS", 50)
}

/// Read a usize environment knob with a default.
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Print the standard CSV header used by all figure binaries.
pub fn print_csv_header(figure: &str) {
    println!("figure,series,threads,mean_us,rsd_pct,reps");
    let _ = figure;
}

/// Print one CSV measurement row.
pub fn print_csv_row(figure: &str, series: &str, threads: usize, stats: &stats::Stats) {
    println!(
        "{figure},{series},{threads},{:.3},{:.2},{}",
        as_us(stats.mean),
        stats.rsd_pct(),
        stats.samples
    );
}

/// Duration → microseconds as f64.
#[must_use]
pub fn as_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// FNV-1a hash of the measurement-shaping environment knobs
/// (`LWT_THREADS`, `LWT_REPS`, `LWT_N`, `LWT_NESTED_N`,
/// `LWT_PARENTS`, `LWT_CHILDREN`). Two runs with the same knob values
/// hash identically; any knob change moves the hash, so traces from
/// different configurations land in different files instead of
/// clobbering one another.
#[must_use]
pub fn config_hash() -> u64 {
    const KNOBS: [&str; 6] = [
        "LWT_THREADS",
        "LWT_REPS",
        "LWT_N",
        "LWT_NESTED_N",
        "LWT_PARENTS",
        "LWT_CHILDREN",
    ];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for knob in KNOBS {
        eat(knob.as_bytes());
        eat(b"=");
        if let Ok(v) = std::env::var(knob) {
            eat(v.trim().as_bytes());
        }
        eat(b";");
    }
    h
}

/// Export the per-worker event rings accumulated during this run as a
/// Chrome/Perfetto trace, if `LWT_TRACE` is set (see
/// [`lwt_metrics::trace::export`]). Every figure binary calls this at
/// the end of `main`; it is a no-op when tracing is off.
///
/// The default filename is `target/lwt-trace/<figure>-<hash>.json`
/// where `<hash>` is [`config_hash`] of the measurement knobs — sweep
/// configurations coexist instead of overwriting each other.
/// (`LWT_TRACE=<path>` still pins an explicit destination.)
pub fn export_trace(figure: &str) {
    let tagged = format!("{figure}-{:08x}", config_hash() as u32);
    match lwt_metrics::trace::export(&tagged) {
        Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("lwt-microbench: trace export failed: {e}"),
    }
    // Offline task-DAG analysis over the same rings: which span chain
    // bounded the run, where its time went, how often spans migrated.
    // Needs tracing (spans live in the rings), hence its own opt-in.
    if matches!(std::env::var("LWT_CRITICAL_PATH"), Ok(v) if !v.is_empty() && v != "0") {
        eprint!("{}", lwt_metrics::critical_path::analyze().render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_parses_env_style_strings() {
        // Not setting env vars in-process (they leak across tests);
        // exercise the default path and the parser helper instead.
        let sweep = thread_sweep();
        assert!(!sweep.is_empty());
        assert!(sweep.iter().all(|&t| t > 0));
    }

    #[test]
    fn env_usize_default_applies() {
        assert_eq!(env_usize("LWT_DEFINITELY_UNSET_VAR", 7), 7);
    }

    #[test]
    fn as_us_converts() {
        assert_eq!(as_us(Duration::from_millis(2)), 2000.0);
    }

    #[test]
    fn config_hash_is_stable_within_a_config() {
        // Not mutating env in-process (leaks across parallel tests);
        // determinism under a fixed environment is the contract.
        assert_eq!(config_hash(), config_hash());
        assert_ne!(config_hash(), 0);
    }
}
