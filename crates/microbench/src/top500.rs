//! Fig. 1: Top500 supercomputers grouped by cores per socket
//! (November lists, 2001–2015).
//!
//! The paper's motivation chart. The original pulls the November
//! Top500 lists; those lists are not redistributable data files, so
//! this module embeds an *approximate* cores-per-socket share table
//! reconstructed from the well-known shape of the chart (single-core
//! dominance through 2005, dual/quad transition 2006–2009, steady
//! climb of 8–16+ cores through 2015). DESIGN.md records this
//! substitution; the generator and output format match the figure.

/// Cores-per-socket buckets used by the paper's legend.
pub const BUCKETS: [&str; 8] = ["1", "2", "4", "6", "8", "9-10", "12-14", "16-"];

/// One November-list year: percentage share per bucket (sums to ~100).
#[derive(Debug, Clone, Copy)]
pub struct YearShare {
    /// November list year.
    pub year: u16,
    /// Percent share per [`BUCKETS`] entry.
    pub share: [f32; 8],
}

/// The embedded (approximate) dataset, 2001–2015.
#[must_use]
pub fn dataset() -> Vec<YearShare> {
    let rows: [(u16, [f32; 8]); 15] = [
        (2001, [100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        (2002, [99.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        (2003, [96.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        (2004, [92.0, 8.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        (2005, [67.0, 33.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        (2006, [24.0, 75.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        (2007, [9.0, 69.0, 22.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        (2008, [2.0, 28.0, 69.0, 1.0, 0.0, 0.0, 0.0, 0.0]),
        (2009, [1.0, 12.0, 76.0, 10.0, 1.0, 0.0, 0.0, 0.0]),
        (2010, [0.5, 6.0, 64.0, 22.0, 7.0, 0.5, 0.0, 0.0]),
        (2011, [0.0, 3.0, 42.0, 30.0, 20.0, 3.0, 2.0, 0.0]),
        (2012, [0.0, 2.0, 25.0, 26.0, 33.0, 7.0, 6.0, 1.0]),
        (2013, [0.0, 1.0, 15.0, 19.0, 38.0, 12.0, 12.0, 3.0]),
        (2014, [0.0, 1.0, 10.0, 14.0, 36.0, 15.0, 18.0, 6.0]),
        (2015, [0.0, 0.5, 7.0, 10.0, 33.0, 16.0, 23.0, 10.5]),
    ];
    rows.iter()
        .map(|&(year, share)| YearShare { year, share })
        .collect()
}

/// Emit the figure as CSV (`year,bucket,percent`).
#[must_use]
pub fn to_csv() -> String {
    let mut out = String::from("year,cores_per_socket,percent\n");
    for row in dataset() {
        for (bucket, pct) in BUCKETS.iter().zip(row.share) {
            out.push_str(&format!("{},{bucket},{pct:.1}\n", row.year));
        }
    }
    out
}

/// Render a terminal stacked-bar sketch of the figure (one row per
/// year, one character per 2%).
#[must_use]
pub fn to_ascii_chart() -> String {
    const GLYPHS: [char; 8] = ['#', '=', '+', ':', 'o', '*', '%', '@'];
    let mut out = String::new();
    out.push_str("Fig.1  Top500 share by cores per socket (approx.)\n");
    for (g, b) in GLYPHS.iter().zip(BUCKETS) {
        out.push_str(&format!("  {g} = {b} cores\n"));
    }
    for row in dataset() {
        out.push_str(&format!("{} |", row.year));
        for (i, pct) in row.share.iter().enumerate() {
            let cells = (pct / 2.0).round() as usize;
            out.extend(std::iter::repeat_n(GLYPHS[i], cells));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_years_of_data() {
        let d = dataset();
        assert_eq!(d.len(), 15);
        assert_eq!(d.first().unwrap().year, 2001);
        assert_eq!(d.last().unwrap().year, 2015);
    }

    #[test]
    fn shares_sum_to_roughly_hundred() {
        for row in dataset() {
            let sum: f32 = row.share.iter().sum();
            assert!(
                (99.0..=101.0).contains(&sum),
                "year {} sums to {sum}",
                row.year
            );
        }
    }

    #[test]
    fn shape_matches_paper_narrative() {
        let d = dataset();
        let by_year = |y: u16| d.iter().find(|r| r.year == y).unwrap();
        // Single-core dominates 2001; extinct by 2011.
        assert!(by_year(2001).share[0] >= 99.0);
        assert_eq!(by_year(2011).share[0], 0.0);
        // Multi-core majority from 2006 on.
        assert!(by_year(2006).share[0] < 50.0);
        // 16+ cores appear only at the end.
        assert_eq!(by_year(2010).share[7], 0.0);
        assert!(by_year(2015).share[7] > 5.0);
        // Monotone trend: the ≥8-core share never shrinks.
        let big: Vec<f32> = d
            .iter()
            .map(|r| r.share[4] + r.share[5] + r.share[6] + r.share[7])
            .collect();
        assert!(big.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn csv_has_all_rows() {
        let csv = to_csv();
        assert_eq!(csv.lines().count(), 1 + 15 * 8);
        assert!(csv.starts_with("year,cores_per_socket,percent"));
    }

    #[test]
    fn ascii_chart_renders_all_years() {
        let chart = to_ascii_chart();
        for y in 2001..=2015 {
            assert!(chart.contains(&y.to_string()));
        }
    }
}
