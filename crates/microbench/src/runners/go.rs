//! Go runner: goroutines into the single shared queue, joined through
//! channel receives — "this library only allows one implementation due
//! to its unique shared work unit queue" (§VIII-B5).

use lwt_go::{Config, Runtime};

use crate::kernels::{chunk, SharedVec};
use crate::runners::Experiment;
use crate::stats::{run_reps, time, Stats};

const A: f32 = 0.5;

pub(crate) struct GoRunner {
    rt: Runtime,
    threads: usize,
}

impl GoRunner {
    pub(crate) fn new(threads: usize) -> Self {
        let rt = Runtime::init(Config {
            num_threads: threads,
            ..Config::default()
        });
        GoRunner { rt, threads }
    }

    pub(crate) fn measure(self, experiment: Experiment, reps: usize) -> Stats {
        let stats = match experiment {
            Experiment::Create => self.create(reps),
            Experiment::Join => self.join(reps),
            Experiment::ForLoop { n } => self.for_loop(n, reps),
            Experiment::TaskSingle { n } => self.task_single(n, reps),
            Experiment::TaskParallel { n } => self.task_parallel(n, reps),
            Experiment::NestedFor { n } => self.nested_for(n, reps),
            Experiment::NestedTask { parents, children } => {
                self.nested_task(parents, children, reps)
            }
        };
        self.rt.shutdown();
        stats
    }

    fn create(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            let (tx, rx) = self.rt.channel::<()>(self.threads);
            let d = time(|| {
                for _ in 0..self.threads {
                    let tx = tx.clone();
                    self.rt.go(move || tx.send(()).unwrap());
                }
            });
            for _ in 0..self.threads {
                rx.recv().unwrap();
            }
            d
        })
    }

    /// Fig. 3: the out-of-order channel join the paper credits as "the
    /// most efficient" join mechanism.
    fn join(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            let (tx, rx) = self.rt.channel::<()>(self.threads);
            for _ in 0..self.threads {
                let tx = tx.clone();
                self.rt.go(move || tx.send(()).unwrap());
            }
            time(|| {
                for _ in 0..self.threads {
                    rx.recv().unwrap();
                }
            })
        })
    }

    fn for_loop(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let (tx, rx) = self.rt.channel::<()>(self.threads);
                for t in 0..self.threads {
                    let tx = tx.clone();
                    let (lo, hi) = chunk(n, self.threads, t);
                    self.rt.go(move || {
                        s.scale_range(lo, hi, A);
                        tx.send(()).unwrap();
                    });
                }
                for _ in 0..self.threads {
                    rx.recv().unwrap();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_single(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let (tx, rx) = self.rt.channel::<()>(n);
                for i in 0..n {
                    let tx = tx.clone();
                    self.rt.go(move || {
                        s.scale(i, A);
                        tx.send(()).unwrap();
                    });
                }
                for _ in 0..n {
                    rx.recv().unwrap();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_parallel(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = time(|| {
                let (tx, rx) = self.rt.channel::<()>(n);
                for t in 0..threads {
                    let rt = self.rt.clone();
                    let tx = tx.clone();
                    self.rt.go(move || {
                        let (lo, hi) = chunk(n, threads, t);
                        for i in lo..hi {
                            let tx = tx.clone();
                            rt.go(move || {
                                s.scale(i, A);
                                tx.send(()).unwrap();
                            });
                        }
                    });
                }
                for _ in 0..n {
                    rx.recv().unwrap();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_for(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n * n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = time(|| {
                let inner_total = n * threads;
                let (tx, rx) = self.rt.channel::<()>(inner_total);
                for t in 0..threads {
                    let rt = self.rt.clone();
                    let tx = tx.clone();
                    self.rt.go(move || {
                        let (olo, ohi) = chunk(n, threads, t);
                        for i in olo..ohi {
                            for k in 0..threads {
                                let tx = tx.clone();
                                let (ilo, ihi) = chunk(n, threads, k);
                                rt.go(move || {
                                    s.scale_range(n * i + ilo, n * i + ihi, A);
                                    tx.send(()).unwrap();
                                });
                            }
                        }
                    });
                }
                for _ in 0..inner_total {
                    rx.recv().unwrap();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_task(&self, parents: usize, children: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(parents * children);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let total = parents * children;
                let (tx, rx) = self.rt.channel::<()>(total);
                for p in 0..parents {
                    let rt = self.rt.clone();
                    let tx = tx.clone();
                    self.rt.go(move || {
                        for c in 0..children {
                            let tx = tx.clone();
                            rt.go(move || {
                                s.scale(p * children + c, A);
                                tx.send(()).unwrap();
                            });
                        }
                    });
                }
                for _ in 0..total {
                    rx.recv().unwrap();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }
}
