//! Qthreads runner: one shepherd per "thread", one worker each, with
//! `fork_to` round-robin dispatch — the configuration the paper's
//! evaluation settles on (§VIII-B3, §IX-E).

use lwt_qthreads::{Config, Handle, Runtime};
use lwt_fiber::StackSize;

use crate::kernels::{chunk, SharedVec};
use crate::runners::Experiment;
use crate::stats::{run_reps, time, Stats};

const A: f32 = 0.5;

pub(crate) struct QthRunner {
    rt: Runtime,
    threads: usize,
}

impl QthRunner {
    pub(crate) fn new(threads: usize) -> Self {
        let rt = Runtime::init(Config {
            num_shepherds: threads,
            workers_per_shepherd: 1,
            stack_size: StackSize::DEFAULT,
        });
        QthRunner { rt, threads }
    }

    pub(crate) fn measure(self, experiment: Experiment, reps: usize) -> Stats {
        let stats = match experiment {
            Experiment::Create => self.create(reps),
            Experiment::Join => self.join(reps),
            Experiment::ForLoop { n } => self.for_loop(n, reps),
            Experiment::TaskSingle { n } => self.task_single(n, reps),
            Experiment::TaskParallel { n } => self.task_parallel(n, reps),
            Experiment::NestedFor { n } => self.nested_for(n, reps),
            Experiment::NestedTask { parents, children } => {
                self.nested_task(parents, children, reps)
            }
        };
        self.rt.shutdown();
        stats
    }

    fn create(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            let mut handles = Vec::with_capacity(self.threads);
            let d = time(|| {
                for t in 0..self.threads {
                    handles.push(self.rt.fork_to(t, || ()));
                }
            });
            for h in handles {
                h.join();
            }
            d
        })
    }

    /// Fig. 3: `qthread_readFF` on each unit's return word.
    fn join(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            let handles: Vec<Handle<()>> =
                (0..self.threads).map(|t| self.rt.fork_to(t, || ())).collect();
            time(|| {
                for h in handles {
                    h.join();
                }
            })
        })
    }

    fn for_loop(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let handles: Vec<Handle<()>> = (0..self.threads)
                    .map(|t| {
                        let (lo, hi) = chunk(n, self.threads, t);
                        self.rt.fork_to(t, move || s.scale_range(lo, hi, A))
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_single(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let handles: Vec<Handle<()>> = (0..n)
                    .map(|i| self.rt.fork_to(i % self.threads, move || s.scale(i, A)))
                    .collect();
                for h in handles {
                    h.join();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    /// Two-step: creators forked to each shepherd; children forked with
    /// plain `fork` (the caller's shepherd).
    fn task_parallel(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = time(|| {
                let creators: Vec<Handle<Vec<Handle<()>>>> = (0..threads)
                    .map(|t| {
                        let rt = self.rt.clone();
                        self.rt.fork_to(t, move || {
                            let (lo, hi) = chunk(n, threads, t);
                            (lo..hi)
                                .map(|i| rt.fork(move || s.scale(i, A)))
                                .collect()
                        })
                    })
                    .collect();
                for c in creators {
                    for h in c.join() {
                        h.join();
                    }
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_for(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n * n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = time(|| {
                let outers: Vec<Handle<()>> = (0..threads)
                    .map(|t| {
                        let rt = self.rt.clone();
                        self.rt.fork_to(t, move || {
                            let (olo, ohi) = chunk(n, threads, t);
                            for i in olo..ohi {
                                let inner: Vec<Handle<()>> = (0..threads)
                                    .map(|k| {
                                        let (ilo, ihi) = chunk(n, threads, k);
                                        rt.fork_rr(move || {
                                            s.scale_range(n * i + ilo, n * i + ihi, A);
                                        })
                                    })
                                    .collect();
                                for h in inner {
                                    h.join();
                                }
                            }
                        })
                    })
                    .collect();
                for h in outers {
                    h.join();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_task(&self, parents: usize, children: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(parents * children);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let parent_handles: Vec<Handle<Vec<Handle<()>>>> = (0..parents)
                    .map(|p| {
                        let rt = self.rt.clone();
                        self.rt.fork_rr(move || {
                            (0..children)
                                .map(|c| rt.fork(move || s.scale(p * children + c, A)))
                                .collect()
                        })
                    })
                    .collect();
                for ph in parent_handles {
                    for h in ph.join() {
                        h.join();
                    }
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }
}
