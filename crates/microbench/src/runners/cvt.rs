//! Converse runner: Messages with round-robin dispatch and the
//! return-mode barrier join — "all the results … have been obtained
//! using Messages" (§VIII-B1).

use lwt_converse::{current_processor, Config, Runtime};

use crate::kernels::{chunk, SharedVec};
use crate::runners::Experiment;
use crate::stats::{run_reps, time, Stats};

const A: f32 = 0.5;

pub(crate) struct CvtRunner {
    rt: Runtime,
    threads: usize,
}

impl CvtRunner {
    pub(crate) fn new(threads: usize) -> Self {
        let rt = Runtime::init(Config {
            num_processors: threads,
            ..Config::default()
        });
        CvtRunner { rt, threads }
    }

    pub(crate) fn measure(self, experiment: Experiment, reps: usize) -> Stats {
        let stats = match experiment {
            Experiment::Create => self.create(reps),
            Experiment::Join => self.join(reps),
            Experiment::ForLoop { n } => self.for_loop(n, reps),
            Experiment::TaskSingle { n } => self.task_single(n, reps),
            Experiment::TaskParallel { n } => self.task_parallel(n, reps),
            Experiment::NestedFor { n } => self.nested_for(n, reps),
            Experiment::NestedTask { parents, children } => {
                self.nested_task(parents, children, reps)
            }
        };
        self.rt.shutdown();
        stats
    }

    /// Fig. 2: round-robin message sends, one per processor.
    fn create(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            let d = time(|| {
                for _ in 0..self.threads {
                    self.rt.send_rr(|| ());
                }
            });
            self.rt.barrier();
            d
        })
    }

    /// Fig. 3: the barrier mechanism — linear in the processor count.
    fn join(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            for _ in 0..self.threads {
                self.rt.send_rr(|| ());
            }
            time(|| self.rt.barrier())
        })
    }

    fn for_loop(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                for t in 0..self.threads {
                    let (lo, hi) = chunk(n, self.threads, t);
                    self.rt.send(t, move || s.scale_range(lo, hi, A));
                }
                self.rt.barrier();
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_single(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                for i in 0..n {
                    self.rt.send_rr(move || s.scale(i, A));
                }
                self.rt.barrier();
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    /// Two-step: creator messages on each processor create their chunk
    /// of element messages *into their own queue* (only self-queues
    /// need no cross-processor insertion).
    fn task_parallel(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = time(|| {
                for t in 0..threads {
                    let rt = self.rt.clone();
                    self.rt.send(t, move || {
                        let me = current_processor().expect("message runs on a processor");
                        let (lo, hi) = chunk(n, threads, t);
                        for i in lo..hi {
                            rt.send(me, move || s.scale(i, A));
                        }
                    });
                }
                self.rt.barrier();
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_for(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n * n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = time(|| {
                for t in 0..threads {
                    let rt = self.rt.clone();
                    self.rt.send(t, move || {
                        let (olo, ohi) = chunk(n, threads, t);
                        for i in olo..ohi {
                            for k in 0..threads {
                                let (ilo, ihi) = chunk(n, threads, k);
                                rt.send(k, move || {
                                    s.scale_range(n * i + ilo, n * i + ihi, A);
                                });
                            }
                        }
                    });
                }
                self.rt.barrier();
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_task(&self, parents: usize, children: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(parents * children);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                for p in 0..parents {
                    let rt = self.rt.clone();
                    self.rt.send_rr(move || {
                        for c in 0..children {
                            rt.send_rr(move || s.scale(p * children + c, A));
                        }
                    });
                }
                self.rt.barrier();
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }
}
