//! OpenMP baseline runner (gcc / icc flavors).

use std::time::{Duration, Instant};

use lwt_openmp::{Config, Flavor, OpenMp, WaitPolicy};
use lwt_sync::SpinLock;

use crate::kernels::{chunk, SharedVec};
use crate::runners::Experiment;
use crate::stats::{run_reps, time, Stats};

/// Sscal scalar used by every pattern.
const A: f32 = 0.5;

pub(crate) struct OmpRunner {
    rt: OpenMp,
    threads: usize,
}

impl OmpRunner {
    pub(crate) fn new(threads: usize, flavor: Flavor) -> Self {
        // The paper sets OMP_WAIT_POLICY=passive for the gcc task
        // benchmarks; we default the whole baseline to passive (the
        // active policy on an oversubscribed CI box would only add
        // noise; the `ablation_join` bench compares the two).
        let rt = OpenMp::init(Config {
            num_threads: threads,
            flavor,
            wait_policy: WaitPolicy::Passive,
        });
        OmpRunner { rt, threads }
    }

    pub(crate) fn measure(self, experiment: Experiment, reps: usize) -> Stats {
        let stats = match experiment {
            Experiment::Create => self.create_join(reps).0,
            Experiment::Join => self.create_join(reps).1,
            Experiment::ForLoop { n } => self.for_loop(n, reps),
            Experiment::TaskSingle { n } => self.task_single(n, reps),
            Experiment::TaskParallel { n } => self.task_parallel(n, reps),
            Experiment::NestedFor { n } => self.nested_for(n, reps),
            Experiment::NestedTask { parents, children } => {
                self.nested_task(parents, children, reps)
            }
        };
        self.rt.shutdown();
        stats
    }

    /// Fig. 2/3: fork time (publish → all members through the fork
    /// barrier) and join time (master reaching the end barrier →
    /// region return). Team threads pre-exist, as in the paper.
    fn create_join(&self, reps: usize) -> (Stats, Stats) {
        let mut creates = Vec::with_capacity(reps);
        let mut joins = Vec::with_capacity(reps);
        for _ in 0..reps.max(1) {
            let fork = SpinLock::new(Duration::ZERO);
            let join_start = SpinLock::new(Instant::now());
            let t0 = Instant::now();
            self.rt.parallel(|ctx| {
                if ctx.is_master() {
                    // Past the fork barrier: every member has entered.
                    *fork.lock() = t0.elapsed();
                    *join_start.lock() = Instant::now();
                }
            });
            let join = join_start.lock().elapsed();
            creates.push(fork.into_inner());
            joins.push(join);
        }
        (Stats::from_samples(&creates), Stats::from_samples(&joins))
    }

    fn for_loop(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                self.rt.parallel_for(0..n, |i| s.scale(i, A));
            });
            v.reset();
            d
        })
    }

    fn task_single(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                self.rt.parallel(|ctx| {
                    if ctx.is_master() {
                        for i in 0..n {
                            ctx.task(move || s.scale(i, A));
                        }
                    }
                    ctx.taskwait();
                });
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_parallel(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = time(|| {
                self.rt.parallel(|ctx| {
                    let (lo, hi) = chunk(n, threads, ctx.thread_num());
                    for i in lo..hi {
                        ctx.task(move || s.scale(i, A));
                    }
                    ctx.taskwait();
                });
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_for(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n * n);
        let s = v.share();
        let rt = &self.rt;
        run_reps(reps, || {
            let d = time(|| {
                rt.parallel_for(0..n, |i| {
                    // The nested pragma: a fresh/pooled team per outer
                    // iteration, per flavor.
                    rt.parallel_for(0..n, |j| s.scale(i * n + j, A));
                });
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_task(&self, parents: usize, children: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(parents * children);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                self.rt.parallel(|ctx| {
                    if ctx.is_master() {
                        for p in 0..parents {
                            let team = ctx.team_handle();
                            ctx.task(move || {
                                for c in 0..children {
                                    team.task(move || s.scale(p * children + c, A));
                                }
                            });
                        }
                    }
                    ctx.taskwait();
                });
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }
}
