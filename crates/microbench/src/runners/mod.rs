//! Per-runtime implementations of the paper's microbenchmarks.
//!
//! One module per runtime family, each implementing the same seven
//! measurements with that library's idiomatic mechanisms (§VIII-B,
//! "Specific Implementations"):
//!
//! * the configurations the paper's evaluation selects — Argobots with
//!   one private pool per stream and round-robin dispatch; Qthreads
//!   with one shepherd per CPU and `fork_to`; MassiveThreads under
//!   either policy; Converse with Messages and the return-mode barrier;
//!   Go with its single shared queue;
//! * the OpenMP baselines in both `gcc` and `icc` flavors.

mod abt;
mod cvt;
mod go;
mod mth;
mod omp;
mod qth;

use crate::stats::Stats;

/// One plotted series of the paper's Figs. 2–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Series {
    /// GNU-flavor OpenMP baseline ("gcc"/"OMP (GCC)").
    OmpGcc,
    /// Intel-flavor OpenMP baseline ("icc"/"OMP (ICC)").
    OmpIcc,
    /// Argobots with stackless tasklets ("Argobots Tasklet").
    AbtTasklet,
    /// Argobots with stackful ULTs ("Argobots ULT").
    AbtUlt,
    /// Qthreads, one shepherd per CPU, `fork_to` dispatch.
    Qthreads,
    /// MassiveThreads, help-first policy ("MassiveThreads (H)").
    MthHelp,
    /// MassiveThreads, work-first policy ("MassiveThreads (W)").
    MthWork,
    /// Converse Threads (Messages + return-mode barrier).
    Converse,
    /// Go (goroutines + channels).
    Go,
}

impl Series {
    /// All nine series, in the paper's legend order.
    pub const ALL: [Series; 9] = [
        Series::OmpGcc,
        Series::OmpIcc,
        Series::AbtTasklet,
        Series::AbtUlt,
        Series::Qthreads,
        Series::MthHelp,
        Series::MthWork,
        Series::Converse,
        Series::Go,
    ];

    /// Legend label, spelled as in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Series::OmpGcc => "gcc",
            Series::OmpIcc => "icc",
            Series::AbtTasklet => "Argobots Tasklet",
            Series::AbtUlt => "Argobots ULT",
            Series::Qthreads => "Qthreads",
            Series::MthHelp => "MassiveThreads (H)",
            Series::MthWork => "MassiveThreads (W)",
            Series::Converse => "Converse Threads",
            Series::Go => "Go",
        }
    }
}

impl std::fmt::Display for Series {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One experiment of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Fig. 2: create one work unit per thread; creation time only.
    Create,
    /// Fig. 3: join one work unit per thread; join time only.
    Join,
    /// Fig. 4: `n`-iteration parallel for (Sscal), one unit per thread.
    ForLoop {
        /// Loop iterations (paper: 1000).
        n: usize,
    },
    /// Fig. 5: `n` tasks created by a single master, one element each.
    TaskSingle {
        /// Task count (paper: 100 and 1000).
        n: usize,
    },
    /// Fig. 6: `n` tasks created inside a parallel region (two-step).
    TaskParallel {
        /// Task count (paper: 100 and 1000).
        n: usize,
    },
    /// Fig. 7: nested parallel for, `n` × `n` iterations.
    NestedFor {
        /// Outer = inner iteration count (paper: 100 and 1000).
        n: usize,
    },
    /// Fig. 8: nested tasks, `parents` × `children`.
    NestedTask {
        /// Parent-task count (paper: 100).
        parents: usize,
        /// Children per parent (paper: 4 and 10).
        children: usize,
    },
}

/// Run `experiment` on `series` with a team of `threads`, repeated
/// `reps` times. Runtime initialization/teardown happens outside the
/// timed sections, matching the paper's protocol.
#[must_use]
pub fn measure(series: Series, experiment: Experiment, threads: usize, reps: usize) -> Stats {
    match series {
        Series::OmpGcc => omp::OmpRunner::new(threads, lwt_openmp::Flavor::Gcc)
            .measure(experiment, reps),
        Series::OmpIcc => omp::OmpRunner::new(threads, lwt_openmp::Flavor::Icc)
            .measure(experiment, reps),
        Series::AbtTasklet => abt::AbtRunner::new(threads, true).measure(experiment, reps),
        Series::AbtUlt => abt::AbtRunner::new(threads, false).measure(experiment, reps),
        Series::Qthreads => qth::QthRunner::new(threads).measure(experiment, reps),
        Series::MthHelp => {
            mth::MthRunner::new(threads, lwt_massive::Policy::HelpFirst).measure(experiment, reps)
        }
        Series::MthWork => {
            mth::MthRunner::new(threads, lwt_massive::Policy::WorkFirst).measure(experiment, reps)
        }
        Series::Converse => cvt::CvtRunner::new(threads).measure(experiment, reps),
        Series::Go => go::GoRunner::new(threads).measure(experiment, reps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every series must execute every experiment correctly at a small
    /// scale. This is the end-to-end correctness net for the entire
    /// benchmark suite (timings are ignored, results are checked inside
    /// the runners' debug assertions).
    #[test]
    fn all_series_run_all_experiments_smoke() {
        let experiments = [
            Experiment::Create,
            Experiment::Join,
            Experiment::ForLoop { n: 64 },
            Experiment::TaskSingle { n: 32 },
            Experiment::TaskParallel { n: 32 },
            Experiment::NestedFor { n: 8 },
            Experiment::NestedTask {
                parents: 6,
                children: 3,
            },
        ];
        for series in Series::ALL {
            for exp in experiments {
                let stats = measure(series, exp, 2, 2);
                assert_eq!(stats.samples, 2, "{series} {exp:?}");
            }
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Series::MthHelp.label(), "MassiveThreads (H)");
        assert_eq!(Series::AbtTasklet.label(), "Argobots Tasklet");
        assert_eq!(Series::ALL.len(), 9);
    }
}
