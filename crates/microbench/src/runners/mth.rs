//! MassiveThreads runner. The main program runs as a ULT
//! (`Runtime::run`), so work-first creation displaces the main flow
//! exactly as the paper describes for "MassiveThreads (W)", while
//! help-first creates everything into the main worker's own queue
//! ("MassiveThreads (H)").

use std::time::Duration;

use lwt_massive::{Config, Handle, Policy, Runtime};
use lwt_fiber::StackSize;

use crate::kernels::{chunk, SharedVec};
use crate::runners::Experiment;
use crate::stats::{run_reps, time, Stats};

const A: f32 = 0.5;

pub(crate) struct MthRunner {
    rt: Runtime,
    threads: usize,
}

impl MthRunner {
    pub(crate) fn new(threads: usize, policy: Policy) -> Self {
        let rt = Runtime::init(Config {
            num_workers: threads,
            policy,
            stack_size: StackSize::DEFAULT,
        });
        MthRunner { rt, threads }
    }

    /// Run one timed episode as the primary ULT, returning the duration
    /// measured *inside* (so runtime entry/exit is untimed).
    fn timed_in_main<F>(&self, f: F) -> Duration
    where
        F: FnOnce(&Runtime) -> Duration + Send + 'static,
    {
        self.rt.run(f)
    }

    pub(crate) fn measure(self, experiment: Experiment, reps: usize) -> Stats {
        let stats = match experiment {
            Experiment::Create => self.create(reps),
            Experiment::Join => self.join(reps),
            Experiment::ForLoop { n } => self.for_loop(n, reps),
            Experiment::TaskSingle { n } => self.task_single(n, reps),
            Experiment::TaskParallel { n } => self.task_parallel(n, reps),
            Experiment::NestedFor { n } => self.nested_for(n, reps),
            Experiment::NestedTask { parents, children } => {
                self.nested_task(parents, children, reps)
            }
        };
        self.rt.shutdown();
        stats
    }

    fn create(&self, reps: usize) -> Stats {
        let threads = self.threads;
        run_reps(reps, || {
            self.timed_in_main(move |rt| {
                let mut handles = Vec::with_capacity(threads);
                let d = time(|| {
                    for _ in 0..threads {
                        handles.push(rt.spawn(|| ()));
                    }
                });
                for h in handles {
                    h.join();
                }
                d
            })
        })
    }

    fn join(&self, reps: usize) -> Stats {
        let threads = self.threads;
        run_reps(reps, || {
            self.timed_in_main(move |rt| {
                let handles: Vec<Handle<()>> =
                    (0..threads).map(|_| rt.spawn(|| ())).collect();
                time(|| {
                    for h in handles {
                        h.join();
                    }
                })
            })
        })
    }

    fn for_loop(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = self.timed_in_main(move |rt| {
                time(|| {
                    let handles: Vec<Handle<()>> = (0..threads)
                        .map(|t| {
                            let (lo, hi) = chunk(n, threads, t);
                            rt.spawn(move || s.scale_range(lo, hi, A))
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                })
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_single(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = self.timed_in_main(move |rt| {
                time(|| {
                    let handles: Vec<Handle<()>> =
                        (0..n).map(|i| rt.spawn(move || s.scale(i, A))).collect();
                    for h in handles {
                        h.join();
                    }
                })
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_parallel(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = self.timed_in_main(move |rt| {
                time(|| {
                    let creators: Vec<Handle<Vec<Handle<()>>>> = (0..threads)
                        .map(|t| {
                            let rt2 = rt.clone();
                            rt.spawn(move || {
                                let (lo, hi) = chunk(n, threads, t);
                                (lo..hi)
                                    .map(|i| rt2.spawn(move || s.scale(i, A)))
                                    .collect()
                            })
                        })
                        .collect();
                    for c in creators {
                        for h in c.join() {
                            h.join();
                        }
                    }
                })
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_for(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n * n);
        let s = v.share();
        let threads = self.threads;
        run_reps(reps, || {
            let d = self.timed_in_main(move |rt| {
                time(|| {
                    let outers: Vec<Handle<()>> = (0..threads)
                        .map(|t| {
                            let rt2 = rt.clone();
                            rt.spawn(move || {
                                let (olo, ohi) = chunk(n, threads, t);
                                for i in olo..ohi {
                                    let inner: Vec<Handle<()>> = (0..threads)
                                        .map(|k| {
                                            let (ilo, ihi) = chunk(n, threads, k);
                                            rt2.spawn(move || {
                                                s.scale_range(n * i + ilo, n * i + ihi, A);
                                            })
                                        })
                                        .collect();
                                    for h in inner {
                                        h.join();
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in outers {
                        h.join();
                    }
                })
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_task(&self, parents: usize, children: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(parents * children);
        let s = v.share();
        run_reps(reps, || {
            let d = self.timed_in_main(move |rt| {
                time(|| {
                    let parent_handles: Vec<Handle<Vec<Handle<()>>>> = (0..parents)
                        .map(|p| {
                            let rt2 = rt.clone();
                            rt.spawn(move || {
                                (0..children)
                                    .map(|c| rt2.spawn(move || s.scale(p * children + c, A)))
                                    .collect()
                            })
                        })
                        .collect();
                    for ph in parent_handles {
                        for h in ph.join() {
                            h.join();
                        }
                    }
                })
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }
}
