//! Argobots runner: private pool per stream, round-robin dispatch
//! (the configuration the paper always selects), in ULT and Tasklet
//! variants.

use lwt_argobots::{current_stream, Config, PoolPolicy, Runtime, TaskletHandle, UltHandle};
use lwt_fiber::StackSize;

use crate::kernels::{chunk, SharedVec};
use crate::runners::Experiment;
use crate::stats::{run_reps, time, Stats};

const A: f32 = 0.5;

/// A unit handle of either kind, so patterns can be written once.
enum H {
    Ult(UltHandle<()>),
    Tasklet(TaskletHandle<()>),
}

impl H {
    fn join(self) {
        match self {
            H::Ult(h) => h.join(),
            H::Tasklet(h) => h.join(),
        }
    }
}

pub(crate) struct AbtRunner {
    rt: Runtime,
    threads: usize,
    /// Tasklet variant ("Argobots Tasklet") vs ULT variant.
    tasklets: bool,
}

impl AbtRunner {
    pub(crate) fn new(threads: usize, tasklets: bool) -> Self {
        let rt = Runtime::init(Config {
            num_streams: threads,
            pool_policy: PoolPolicy::PrivatePerStream,
            stack_size: StackSize::DEFAULT,
        });
        AbtRunner {
            rt,
            threads,
            tasklets,
        }
    }

    /// Create one unit of the configured kind on stream `t`.
    fn unit_to(&self, t: usize, f: impl FnOnce() + Send + 'static) -> H {
        if self.tasklets {
            H::Tasklet(self.rt.tasklet_create_to(t, f))
        } else {
            H::Ult(self.rt.ult_create_to(t, f))
        }
    }

    pub(crate) fn measure(self, experiment: Experiment, reps: usize) -> Stats {
        let stats = match experiment {
            Experiment::Create => self.create(reps),
            Experiment::Join => self.join(reps),
            Experiment::ForLoop { n } => self.for_loop(n, reps),
            Experiment::TaskSingle { n } => self.task_single(n, reps),
            Experiment::TaskParallel { n } => self.task_parallel(n, reps),
            Experiment::NestedFor { n } => self.nested_for(n, reps),
            Experiment::NestedTask { parents, children } => {
                self.nested_task(parents, children, reps)
            }
        };
        self.rt.shutdown();
        stats
    }

    /// Fig. 2: time the round-robin creation of one unit per stream.
    fn create(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            let mut handles = Vec::with_capacity(self.threads);
            let d = time(|| {
                for t in 0..self.threads {
                    handles.push(self.unit_to(t, || ()));
                }
            });
            for h in handles {
                h.join();
            }
            d
        })
    }

    /// Fig. 3: time joining one unit per stream (status-word polling +
    /// structure free — `ABT_thread_free`).
    fn join(&self, reps: usize) -> Stats {
        run_reps(reps, || {
            let handles: Vec<H> = (0..self.threads).map(|t| self.unit_to(t, || ())).collect();
            time(|| {
                for h in handles {
                    h.join();
                }
            })
        })
    }

    fn for_loop(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let handles: Vec<H> = (0..self.threads)
                    .map(|t| {
                        let (lo, hi) = chunk(n, self.threads, t);
                        self.unit_to(t, move || s.scale_range(lo, hi, A))
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn task_single(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        run_reps(reps, || {
            let d = time(|| {
                let handles: Vec<H> = (0..n)
                    .map(|i| self.unit_to(i % self.threads, move || s.scale(i, A)))
                    .collect();
                for h in handles {
                    h.join();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    /// Two-step: T creator ULTs (creators must be ULTs — tasklets have
    /// no stack for the create+join step, §VIII-B4), each creating its
    /// chunk of element units into its own stream's pool.
    fn task_parallel(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n);
        let s = v.share();
        let threads = self.threads;
        let tasklets = self.tasklets;
        run_reps(reps, || {
            let d = time(|| {
                let creators: Vec<UltHandle<Vec<H>>> = (0..threads)
                    .map(|t| {
                        let rt = self.rt.clone();
                        self.rt.ult_create_to(t, move || {
                            let me = current_stream().expect("creator runs on a stream");
                            let (lo, hi) = chunk(n, threads, t);
                            (lo..hi)
                                .map(|i| {
                                    let f = move || s.scale(i, A);
                                    if tasklets {
                                        H::Tasklet(rt.tasklet_create_to(me, f))
                                    } else {
                                        H::Ult(rt.ult_create_to(me, f))
                                    }
                                })
                                .collect()
                        })
                    })
                    .collect();
                for c in creators {
                    for h in c.join() {
                        h.join();
                    }
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    /// Nested for: T outer ULTs; each outer iteration spawns T inner
    /// units dividing the inner loop.
    fn nested_for(&self, n: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(n * n);
        let s = v.share();
        let threads = self.threads;
        let tasklets = self.tasklets;
        run_reps(reps, || {
            let d = time(|| {
                let outers: Vec<UltHandle<()>> = (0..threads)
                    .map(|t| {
                        let rt = self.rt.clone();
                        self.rt.ult_create_to(t, move || {
                            let (olo, ohi) = chunk(n, threads, t);
                            for i in olo..ohi {
                                let inner: Vec<H> = (0..threads)
                                    .map(|k| {
                                        let (ilo, ihi) = chunk(n, threads, k);
                                        let f = move || s.scale_range(n * i + ilo, n * i + ihi, A);
                                        if tasklets {
                                            H::Tasklet(rt.tasklet_create_to(k, f))
                                        } else {
                                            H::Ult(rt.ult_create_to(k, f))
                                        }
                                    })
                                    .collect();
                                for h in inner {
                                    h.join();
                                }
                            }
                        })
                    })
                    .collect();
                for h in outers {
                    h.join();
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }

    fn nested_task(&self, parents: usize, children: usize, reps: usize) -> Stats {
        let mut v = SharedVec::ones(parents * children);
        let s = v.share();
        let threads = self.threads;
        let tasklets = self.tasklets;
        run_reps(reps, || {
            let d = time(|| {
                // Parents are units of the series kind (they only
                // *create*, which needs no stack); the master joins
                // parents, then every child.
                let parent_handles: Vec<lwt_argobots::UltHandle<Vec<H>>> = (0..parents)
                    .map(|p| {
                        let rt = self.rt.clone();
                        self.rt.ult_create_to(p % threads, move || {
                            (0..children)
                                .map(|c| {
                                    let f = move || s.scale(p * children + c, A);
                                    let target = (p + c) % threads;
                                    if tasklets {
                                        H::Tasklet(rt.tasklet_create_to(target, f))
                                    } else {
                                        H::Ult(rt.ult_create_to(target, f))
                                    }
                                })
                                .collect()
                        })
                    })
                    .collect();
                for ph in parent_handles {
                    for h in ph.join() {
                        h.join();
                    }
                }
            });
            debug_assert!(v.as_slice().iter().all(|&x| x == A));
            v.reset();
            d
        })
    }
}
