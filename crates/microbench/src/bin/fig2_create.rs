//! Fig. 2: time of creating one work unit per thread.

use lwt_microbench::runners::{measure, Experiment, Series};
use lwt_microbench::{print_csv_header, print_csv_row, reps, thread_sweep};

fn main() {
    let reps = reps();
    print_csv_header("fig2");
    for &threads in &thread_sweep() {
        for series in Series::ALL {
            let exp = Experiment::Create;
            let stats = measure(series, exp, threads, reps);
            print_csv_row("fig2", series.label(), threads, &stats);
        }
    }
    lwt_microbench::export_trace("fig2_create");
}
