//! Idle-CPU smoke: a quiescent runtime in `passive` wait policy must
//! burn (near-)zero process CPU — the acceptance probe for worker
//! parking. Before parking existed, every idle worker spun at 100% of
//! a core; with it, an idle pool sleeps and the only CPU spent is the
//! occasional backstop wake.
//!
//! For each backend: start a pool, run a tiny warmup, then hold the
//! runtime idle for a window while sampling process CPU time
//! (`/proc/self/stat` utime+stime, all threads). Prints one CSV row
//! per backend and asserts the window's CPU stays under a tolerance;
//! after all runtimes finalize, asserts the park/unpark counters
//! balance (`parks == unparks > 0`). Exits non-zero on violation, so
//! CI can run it bare.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `LWT_IDLE_WORKERS` | pool size per backend | `4` |
//! | `LWT_IDLE_MS` | idle window per backend, milliseconds | `800` |
//! | `LWT_IDLE_CPU_TOLERANCE_MS` | max CPU per window | `150` |

use std::time::Duration;

use lwt_core::{BackendKind, Glt, WaitPolicy};
use lwt_metrics::registry::snapshot;

/// Process CPU time (user + system, every thread) in milliseconds.
///
/// Parses `/proc/self/stat`: fields 14/15 are utime/stime in clock
/// ticks. `USER_HZ` is 100 on every Linux ABI this workspace targets
/// (hermetic build: no libc crate to ask `sysconf`), so one tick is
/// 10 ms — plenty for a threshold in the hundreds of ms.
fn process_cpu_ms() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read /proc/self/stat");
    // comm may contain spaces; skip past its closing paren first.
    let after = stat.rsplit_once(')').expect("stat has a comm field").1;
    let mut fields = after.split_ascii_whitespace();
    // After ')' the next field is state (3rd overall), so utime/stime
    // (14th/15th overall) are at indices 11/12 here.
    let utime: u64 = fields.nth(11).and_then(|f| f.parse().ok()).expect("utime");
    let stime: u64 = fields.next().and_then(|f| f.parse().ok()).expect("stime");
    (utime + stime) * 10
}

fn main() {
    let workers = lwt_microbench::env_usize("LWT_IDLE_WORKERS", 4);
    let idle_ms = lwt_microbench::env_usize("LWT_IDLE_MS", 800) as u64;
    let tol_ms = lwt_microbench::env_usize("LWT_IDLE_CPU_TOLERANCE_MS", 150) as u64;

    // Worker time accounting: the idle windows double as the sanity
    // probe that the five state buckets partition wall time.
    lwt_metrics::set_accounting(true);

    println!("figure,series,workers,idle_wall_ms,idle_cpu_ms");
    let mut failed = false;
    for kind in BackendKind::ALL {
        let glt = Glt::builder(kind)
            .workers(workers)
            .wait_policy(WaitPolicy::Passive)
            .build();
        // Warmup: prove the pool is alive, then let it drain and park.
        let handles: Vec<_> = (0..32).map(|i| glt.ult_create(move || i)).collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, 31 * 32 / 2, "warmup failed on {kind}");
        std::thread::sleep(Duration::from_millis(100));

        let cpu0 = process_cpu_ms();
        std::thread::sleep(Duration::from_millis(idle_ms));
        let cpu_spent = process_cpu_ms() - cpu0;
        glt.finalize().expect("clean drain");

        println!("idle_cpu,{},{workers},{idle_ms},{cpu_spent}", kind.name());
        if cpu_spent > tol_ms {
            eprintln!(
                "FAIL: {kind} burned {cpu_spent} ms CPU over a {idle_ms} ms idle \
                 window (tolerance {tol_ms} ms) — idle workers are spinning"
            );
            failed = true;
        }
    }

    // Everything is finalized: every park must have been matched by an
    // unpark (nobody is left asleep), and passive pools must actually
    // have parked at least once during the idle windows.
    let counters = snapshot().counters;
    println!(
        "idle_cpu,counters,parks={},unparks={},parked_high_water={}",
        counters.parks, counters.unparks, counters.workers_parked_high_water
    );
    if counters.parks == 0 {
        eprintln!("FAIL: passive idle windows never parked a worker");
        failed = true;
    }
    if counters.parks != counters.unparks {
        eprintln!(
            "FAIL: park/unpark imbalance after finalize: {} parks vs {} unparks",
            counters.parks, counters.unparks
        );
        failed = true;
    }

    // Utilization sanity: the five state buckets must partition each
    // worker's accounted wall time (percentages sum to ~100), and a
    // mostly-idle passive pool must show its time in parked/idle, not
    // busy.
    let util = lwt_metrics::utilization();
    let total_pct: f64 = lwt_metrics::WorkerState::ALL
        .iter()
        .map(|&s| util.aggregate_pct(s))
        .sum();
    let parked_idle_pct = util.aggregate_pct(lwt_metrics::WorkerState::Parked)
        + util.aggregate_pct(lwt_metrics::WorkerState::Idle);
    println!(
        "idle_cpu,utilization,workers={},busy_pct={:.2},parked_idle_pct={:.2},total_pct={:.2}",
        util.workers.len(),
        util.aggregate_busy_pct(),
        parked_idle_pct,
        total_pct
    );
    if util.workers.is_empty() {
        eprintln!("FAIL: no worker timelines registered with accounting on");
        failed = true;
    }
    if (total_pct - 100.0).abs() > 1.0 {
        eprintln!("FAIL: utilization buckets must sum to ~100%, got {total_pct:.2}%");
        failed = true;
    }
    if parked_idle_pct < 50.0 {
        eprintln!(
            "FAIL: an idle passive pool must spend most wall time parked/idle, \
             got {parked_idle_pct:.2}%"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("idle_cpu: ok");
}
