//! Table I: the semantic feature matrix of the threading libraries.

use lwt_core::{capability_matrix, SchedulerPlug};

fn mark(b: bool) -> &'static str {
    if b { "X" } else { "" }
}

fn main() {
    let m = capability_matrix();
    let names: Vec<&str> = m.iter().map(|c| c.name).collect();
    println!("Concept,{}", names.join(","));
    let col = |f: &dyn Fn(&lwt_core::Capabilities) -> String| -> String {
        m.iter().map(f).collect::<Vec<_>>().join(",")
    };
    println!(
        "Levels of Hierarchy,{}",
        col(&|c| c.levels_of_hierarchy.to_string())
    );
    println!(
        "# of Work Unit Types,{}",
        col(&|c| c.work_unit_types.to_string())
    );
    println!(
        "Thread Support,{}",
        col(&|c| mark(c.thread_support).into())
    );
    println!(
        "Tasklet Support,{}",
        col(&|c| mark(c.tasklet_support).into())
    );
    println!("Group Control,{}", col(&|c| mark(c.group_control).into()));
    println!("Yield To,{}", col(&|c| mark(c.yield_to).into()));
    println!(
        "Global Work Unit Queue,{}",
        col(&|c| mark(c.global_queue).into())
    );
    println!(
        "Private Work Unit Queue,{}",
        col(&|c| mark(c.private_queue).into())
    );
    println!(
        "Plug-in Scheduler,{}",
        col(&|c| match c.plugin_scheduler {
            SchedulerPlug::Yes => "X".into(),
            SchedulerPlug::ConfigureTime => "X(configure)".into(),
            SchedulerPlug::No => String::new(),
        })
    );
    println!(
        "Stackable Scheduler,{}",
        col(&|c| mark(c.stackable_scheduler).into())
    );
    println!(
        "Group Scheduler,{}",
        col(&|c| mark(c.group_scheduler).into())
    );
}
