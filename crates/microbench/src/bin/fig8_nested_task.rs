//! Fig. 8: execution time of nested tasks (100 parents × 4 children).

use lwt_microbench::runners::{measure, Experiment, Series};
use lwt_microbench::{print_csv_header, print_csv_row, reps, thread_sweep};

fn main() {
    let reps = reps();
    print_csv_header("fig8");
    for &threads in &thread_sweep() {
        for series in Series::ALL {
            let exp = Experiment::NestedTask { parents: lwt_microbench::env_usize("LWT_PARENTS", 100), children: lwt_microbench::env_usize("LWT_CHILDREN", 4) };
            let stats = measure(series, exp, threads, reps);
            print_csv_row("fig8", series.label(), threads, &stats);
        }
    }
    lwt_microbench::export_trace("fig8_nested_task");
}
