//! Fig. 5: execution time of 1,000 tasks created in a single region.

use lwt_microbench::runners::{measure, Experiment, Series};
use lwt_microbench::{print_csv_header, print_csv_row, reps, thread_sweep};

fn main() {
    let reps = reps();
    print_csv_header("fig5");
    for &threads in &thread_sweep() {
        for series in Series::ALL {
            let exp = Experiment::TaskSingle { n: lwt_microbench::env_usize("LWT_N", 1000) };
            let stats = measure(series, exp, threads, reps);
            print_csv_row("fig5", series.label(), threads, &stats);
        }
    }
    lwt_microbench::export_trace("fig5_task_single");
}
