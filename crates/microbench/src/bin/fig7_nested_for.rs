//! Fig. 7: execution time of a nested parallel for (n × n iterations; paper used 1000, default here 100 — set LWT_NESTED_N).

use lwt_microbench::runners::{measure, Experiment, Series};
use lwt_microbench::{print_csv_header, print_csv_row, reps, thread_sweep};

fn main() {
    let reps = reps();
    print_csv_header("fig7");
    for &threads in &thread_sweep() {
        for series in Series::ALL {
            let exp = Experiment::NestedFor { n: lwt_microbench::env_usize("LWT_NESTED_N", 100) };
            let stats = measure(series, exp, threads, reps);
            print_csv_row("fig7", series.label(), threads, &stats);
        }
    }
    lwt_microbench::export_trace("fig7_nested_for");
}
