//! Table II: the most-used functions of each LWT library, mapped to the
//! generic API of `lwt-core`.

fn main() {
    println!("Function,Argobots,Qthreads,MassiveThreads,Converse Threads,Go");
    for row in lwt_core::api_map() {
        let cells: Vec<&str> = row
            .spellings
            .iter()
            .map(|s| s.unwrap_or(""))
            .collect();
        println!("{},{}", row.operation, cells.join(","));
    }
}
