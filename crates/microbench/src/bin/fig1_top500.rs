//! Fig. 1: Top500 cores-per-socket share, 2001–2015.
//!
//! Prints the embedded (approximate) dataset as CSV, or an ASCII chart
//! with `--chart`.

fn main() {
    if std::env::args().any(|a| a == "--chart") {
        print!("{}", lwt_microbench::top500::to_ascii_chart());
    } else {
        print!("{}", lwt_microbench::top500::to_csv());
    }
}
