//! Fig. 4: execution time of a 1,000-iteration for loop (Sscal).

use lwt_microbench::runners::{measure, Experiment, Series};
use lwt_microbench::{print_csv_header, print_csv_row, reps, thread_sweep};

fn main() {
    let reps = reps();
    print_csv_header("fig4");
    for &threads in &thread_sweep() {
        for series in Series::ALL {
            let exp = Experiment::ForLoop { n: lwt_microbench::env_usize("LWT_N", 1000) };
            let stats = measure(series, exp, threads, reps);
            print_csv_row("fig4", series.label(), threads, &stats);
        }
    }
    lwt_microbench::export_trace("fig4_for_loop");
}
