//! Run every figure experiment and write `results/figN_*.csv` files —
//! the dataset EXPERIMENTS.md's shape checks refer to.
//!
//! Scale knobs are the usual environment variables (`LWT_THREADS`,
//! `LWT_REPS`, `LWT_N`, `LWT_NESTED_N`, `LWT_PARENTS`, `LWT_CHILDREN`);
//! the output directory can be overridden with `LWT_RESULTS_DIR`.

use std::fmt::Write as _;
use std::time::Instant;

use lwt_microbench::runners::{measure, Experiment, Series};
use lwt_microbench::{as_us, env_usize, reps, thread_sweep};

fn main() {
    let dir = std::env::var("LWT_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).expect("create results dir");
    let reps = reps();
    let threads = thread_sweep();

    let figures: Vec<(&str, Experiment)> = vec![
        ("fig2_create", Experiment::Create),
        ("fig3_join", Experiment::Join),
        (
            "fig4_for_loop",
            Experiment::ForLoop {
                n: env_usize("LWT_N", 1000),
            },
        ),
        (
            "fig5_task_single",
            Experiment::TaskSingle {
                n: env_usize("LWT_N", 1000),
            },
        ),
        (
            "fig6_task_parallel",
            Experiment::TaskParallel {
                n: env_usize("LWT_N", 1000),
            },
        ),
        (
            "fig7_nested_for",
            Experiment::NestedFor {
                n: env_usize("LWT_NESTED_N", 100),
            },
        ),
        (
            "fig8_nested_task",
            Experiment::NestedTask {
                parents: env_usize("LWT_PARENTS", 100),
                children: env_usize("LWT_CHILDREN", 4),
            },
        ),
    ];

    // Fig. 1 is static data.
    std::fs::write(
        format!("{dir}/fig1_top500.csv"),
        lwt_microbench::top500::to_csv(),
    )
    .expect("write fig1");
    eprintln!("wrote {dir}/fig1_top500.csv");

    for (name, exp) in figures {
        let t0 = Instant::now();
        let mut csv = String::from("figure,series,threads,mean_us,rsd_pct,reps\n");
        for &t in &threads {
            for series in Series::ALL {
                let stats = measure(series, exp, t, reps);
                writeln!(
                    csv,
                    "{name},{},{t},{:.3},{:.2},{}",
                    series.label(),
                    as_us(stats.mean),
                    stats.rsd_pct(),
                    stats.samples
                )
                .expect("format row");
            }
        }
        std::fs::write(format!("{dir}/{name}.csv"), csv).expect("write figure csv");
        eprintln!("wrote {dir}/{name}.csv in {:?}", t0.elapsed());
    }
    lwt_microbench::export_trace("all_figures");
}
