//! The compute kernel of the paper's evaluation: Sscal.
//!
//! "We use the well-known Sscal function, which multiplies (and
//! overwrites) the components of a vector by a scalar" (§IX, Listing
//! 5). Its single-element granularity "is useful to understand each
//! LWT behavior because this kind of parallelism does not hide the
//! thread management overhead."

/// A float vector shared across work units that write *disjoint*
/// indices — the data shape of every pattern benchmark.
///
/// Disjointness is the caller's obligation (each index is touched by
/// exactly one work unit per pattern execution), which is precisely how
/// the paper's C microbenchmarks share their vector.
pub struct SharedVec {
    data: Box<[f32]>,
}

/// A raw, Send+Sync view used by work units.
#[derive(Clone, Copy)]
pub struct SharedSlice {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: work units write disjoint indices (caller contract); reads
// happen only after all writers are joined.
unsafe impl Send for SharedSlice {}
// SAFETY: see above.
unsafe impl Sync for SharedSlice {}

impl SharedVec {
    /// A vector of `len` ones.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        SharedVec {
            data: vec![1.0; len].into_boxed_slice(),
        }
    }

    /// Length of the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Get the shareable raw view.
    #[must_use]
    pub fn share(&mut self) -> SharedSlice {
        SharedSlice {
            ptr: self.data.as_mut_ptr(),
            len: self.data.len(),
        }
    }

    /// Read the vector after all work units are joined.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Reset all elements to one (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.data.fill(1.0);
    }
}

impl SharedSlice {
    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `v[i] *= a` — one Sscal element (one task of the task-parallel
    /// patterns).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn scale(&self, i: usize, a: f32) {
        assert!(i < self.len, "sscal index {i} out of bounds {}", self.len);
        // SAFETY: bounds-checked; disjoint-writer contract of SharedVec.
        unsafe {
            let p = self.ptr.add(i);
            *p *= a;
        }
    }

    /// Sscal over `[lo, hi)` — one work unit of the for-loop patterns
    /// (Listing 5's loop body over a sub-range).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn scale_range(&self, lo: usize, hi: usize, a: f32) {
        assert!(lo <= hi && hi <= self.len, "sscal range out of bounds");
        for i in lo..hi {
            // SAFETY: bounds-checked above; disjoint-writer contract.
            unsafe {
                let p = self.ptr.add(i);
                *p *= a;
            }
        }
    }
}

/// Split `n` iterations over `parts` work units, returning the
/// `(lo, hi)` range of part `i` — the static chunking every runtime
/// uses in the for-loop pattern.
#[must_use]
pub fn chunk(n: usize, parts: usize, i: usize) -> (usize, usize) {
    let per = n.div_ceil(parts.max(1));
    let lo = (i * per).min(n);
    let hi = ((i + 1) * per).min(n);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_range_multiplies() {
        let mut v = SharedVec::ones(10);
        let s = v.share();
        s.scale_range(0, 10, 3.0);
        assert!(v.as_slice().iter().all(|&x| x == 3.0));
        v.reset();
        assert!(v.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn scale_single_elements() {
        let mut v = SharedVec::ones(4);
        let s = v.share();
        for i in 0..4 {
            s.scale(i, (i + 1) as f32);
        }
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in [0, 1, 7, 100, 1000] {
            for parts in [1, 2, 3, 7, 64] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for i in 0..parts {
                    let (lo, hi) = chunk(n, parts, i);
                    assert!(lo <= hi);
                    assert!(lo >= prev_hi || lo == hi);
                    covered += hi - lo;
                    prev_hi = hi.max(prev_hi);
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn concurrent_disjoint_writes_are_exact() {
        let mut v = SharedVec::ones(1000);
        let s = v.share();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    let (lo, hi) = chunk(1000, 4, t);
                    s.scale_range(lo, hi, 2.0);
                });
            }
        });
        assert!(v.as_slice().iter().all(|&x| x == 2.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_scale_panics() {
        let mut v = SharedVec::ones(3);
        v.share().scale(3, 2.0);
    }
}
