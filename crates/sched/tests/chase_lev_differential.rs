//! Differential testing of our Chase–Lev deque: a seeded random
//! operation stream is driven simultaneously against the deque and a
//! sequential `VecDeque` reference model (owner end = back, thief
//! end = front), and a randomized concurrent run must preserve the
//! exact multiset of items across owner pops and three stealing
//! threads.
//!
//! Hermetic by design: `std::thread` plus the in-repo PRNG
//! (`lwt_sync::rng`), seeds 42 and 7, so every differential run is
//! bit-for-bit reproducible — no `crossbeam`, no `rand`.
//!
//! These same seed streams are also *model-checked*: the
//! `differential_seed_streams_hold_under_the_model` test in
//! `crates/model/tests/chase_lev.rs` replays a prefix of each stream
//! (same op map: 0|1 = push, 2 = pop, 3 = steal) against the real
//! deque under the deterministic scheduler, exploring every
//! interleaving at the preemption bound instead of the one the OS
//! happens to produce here.

use lwt_sched::{ChaseLev, Steal};
use lwt_sync::rng::{Rng, Xoshiro256StarStar};

/// Sequential: drive the deque and the model with the same operation
/// stream and compare every result.
#[test]
fn sequential_agreement_with_model() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(42);
    for _round in 0..50 {
        let (ours_w, ours_s) = ChaseLev::with_capacity(2);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for _ in 0..200 {
            match rng.gen_range(0u8..4) {
                0 | 1 => {
                    ours_w.push(next);
                    model.push_back(next);
                    next += 1;
                }
                2 => {
                    // Owner pops the newest item (LIFO end).
                    assert_eq!(ours_w.pop(), model.pop_back(), "owner pop diverged");
                }
                _ => {
                    // Thief steals the oldest item (FIFO end);
                    // sequentially there are no Retry races.
                    let ours = match ours_s.steal_once() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("sequential retry"),
                    };
                    assert_eq!(ours, model.pop_front(), "steal diverged");
                }
            }
        }
        assert_eq!(ours_w.len(), model.len(), "length diverged at round end");
    }
}

/// Concurrent: one owner pushing and randomly popping under three
/// concurrent thieves; every pushed item must be delivered exactly
/// once. The owner's pop pattern is PRNG-driven (seed 7) so the
/// interleaving pressure varies while staying reproducible.
#[test]
fn concurrent_multiset_parity() {
    const ITEMS: usize = 30_000;
    const THIEVES: usize = 3;

    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let (w, s) = ChaseLev::with_capacity(4);
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let thieves: Vec<_> = (0..THIEVES)
        .map(|_| {
            let s = s.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match s.steal_once() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(std::sync::atomic::Ordering::Acquire) && s.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            })
        })
        .collect();
    let mut got = Vec::new();
    for i in 0..ITEMS {
        w.push(i);
        if rng.gen_range(0u8..4) == 0 {
            if let Some(v) = w.pop() {
                got.push(v);
            }
        }
    }
    while let Some(v) = w.pop() {
        got.push(v);
    }
    done.store(true, std::sync::atomic::Ordering::Release);
    for t in thieves {
        got.extend(t.join().unwrap());
    }

    got.sort_unstable();
    let expect: Vec<usize> = (0..ITEMS).collect();
    assert_eq!(got, expect, "our deque lost or duplicated items");
}
