//! Differential testing: our Chase–Lev deque against `crossbeam-deque`
//! (the ecosystem's battle-tested implementation) under identical
//! randomized concurrent workloads — both must preserve the exact
//! multiset of items, and their sequential semantics must agree
//! operation-for-operation.

use lwt_sched::{ChaseLev, Steal};
use rand::{Rng, SeedableRng};

/// Sequential: drive both deques with the same operation stream and
/// compare every result.
#[test]
fn sequential_agreement_with_crossbeam() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    for _round in 0..50 {
        let (ours_w, ours_s) = ChaseLev::with_capacity(2);
        let cb_w = crossbeam::deque::Worker::new_lifo();
        let cb_s = cb_w.stealer();
        let mut next = 0u64;
        for _ in 0..200 {
            match rng.gen_range(0..4u8) {
                0 | 1 => {
                    ours_w.push(next);
                    cb_w.push(next);
                    next += 1;
                }
                2 => {
                    assert_eq!(ours_w.pop(), cb_w.pop(), "owner pop diverged");
                }
                _ => {
                    // Both steal from the top; compare outcomes
                    // (sequentially there are no Retry races).
                    let ours = match ours_s.steal_once() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("sequential retry"),
                    };
                    let cb = loop {
                        match cb_s.steal() {
                            crossbeam::deque::Steal::Success(v) => break Some(v),
                            crossbeam::deque::Steal::Empty => break None,
                            crossbeam::deque::Steal::Retry => {}
                        }
                    };
                    assert_eq!(ours, cb, "steal diverged");
                }
            }
        }
    }
}

/// Concurrent: same workload shape on both implementations; each must
/// deliver every pushed item exactly once.
#[test]
fn concurrent_multiset_parity_with_crossbeam() {
    const ITEMS: usize = 30_000;
    const THIEVES: usize = 3;

    fn run_ours() -> Vec<usize> {
        let (w, s) = ChaseLev::with_capacity(4);
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = s.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal_once() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(std::sync::atomic::Ordering::Acquire)
                                    && s.is_empty()
                                {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut got = Vec::new();
        for i in 0..ITEMS {
            w.push(i);
            if i % 4 == 0 {
                if let Some(v) = w.pop() {
                    got.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            got.push(v);
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        for t in thieves {
            got.extend(t.join().unwrap());
        }
        got
    }

    fn run_crossbeam() -> Vec<usize> {
        let w = crossbeam::deque::Worker::new_lifo();
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = w.stealer();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            crossbeam::deque::Steal::Success(v) => got.push(v),
                            crossbeam::deque::Steal::Retry => {}
                            crossbeam::deque::Steal::Empty => {
                                if done.load(std::sync::atomic::Ordering::Acquire)
                                    && s.is_empty()
                                {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut got = Vec::new();
        for i in 0..ITEMS {
            w.push(i);
            if i % 4 == 0 {
                if let Some(v) = w.pop() {
                    got.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            got.push(v);
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        for t in thieves {
            got.extend(t.join().unwrap());
        }
        got
    }

    let mut ours = run_ours();
    let mut cb = run_crossbeam();
    ours.sort_unstable();
    cb.sort_unstable();
    let expect: Vec<usize> = (0..ITEMS).collect();
    assert_eq!(ours, expect, "our deque lost or duplicated items");
    assert_eq!(cb, expect, "crossbeam reference harness is broken");
}
