//! The single shared work-unit queue (Go / `gcc` OpenMP tasks).

use std::collections::VecDeque;

use lwt_sync::SpinLock;

/// A mutex-protected FIFO shared by every worker.
///
/// This is deliberately the *naive* design: one lock, one queue. The
/// paper attributes Go's flat-but-contended curves and `gcc`'s task
/// behaviour to exactly this structure; the contention is the point,
/// not an implementation accident.
///
/// ```
/// use lwt_sched::SharedQueue;
/// let q = SharedQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1)); // FIFO
/// ```
pub struct SharedQueue<T> {
    inner: SpinLock<VecDeque<T>>,
}

impl<T> SharedQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        SharedQueue {
            inner: SpinLock::new(VecDeque::new()),
        }
    }

    /// Enqueue at the back.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Enqueue a whole batch under a single lock acquisition.
    pub fn push_batch(&self, values: impl IntoIterator<Item = T>) {
        let mut q = self.inner.lock();
        q.extend(values);
    }

    /// Dequeue from the front.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Current length (racy; diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty (racy; diagnostics only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> Default for SharedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for SharedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedQueue").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SharedQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_push_is_in_order() {
        let q = SharedQueue::new();
        q.push(0);
        q.push_batch(1..4);
        assert_eq!(q.len(), 4);
        assert_eq!(std::iter::from_fn(|| q.pop()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        const PRODUCERS: usize = 4;
        const PER: usize = 5_000;
        let q = Arc::new(SharedQueue::new());
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut idle = 0;
                    while idle < 10_000 {
                        match q.pop() {
                            Some(v) => {
                                got.push(v);
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.extend(std::iter::from_fn(|| q.pop()));
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER).collect::<Vec<_>>());
    }
}
