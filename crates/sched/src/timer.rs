//! Hierarchical timer wheel — the runtime's general deadline
//! subsystem.
//!
//! Everything in the serving stack that must *give up eventually* —
//! TCP read/write deadlines, HTTP idle and header-read timeouts,
//! graceful-drain deadlines — arms an entry here instead of spawning
//! a sleeper or polling a clock. The wheel is the classic hashed
//! hierarchical design (Varghese & Lauck): [`LEVELS`] levels of
//! [`SLOTS`] slots each, level `l` spanning deltas in
//! `[SLOTS^l, SLOTS^(l+1))` ticks, so arming and cancelling are O(1)
//! and advancing is O(ticks elapsed + entries due).
//!
//! Design constraints, in order:
//!
//! 1. **Two waiter shapes.** A ULT waits by polling
//!    [`TimerEntry::has_fired`] inside its readiness relax loop; an
//!    async task parks its [`Waker`] in the entry. Firing supports
//!    both: it flips the state flag (Release) and then wakes any
//!    parked waker.
//! 2. **Model-checkable.** The entry state machine
//!    (ARMED → FIRED | CANCELLED, exactly one winner) routes its
//!    atomics through [`crate::sysapi`] and its waker slot through
//!    `lwt_sync::SpinLock`, so the *real* race between `advance` and
//!    `cancel` runs under the `lwt-model` checker
//!    (`crates/model/tests/timer.rs`). To keep the wheel itself pure
//!    state machine, it never reads a clock: time is a `u64` tick the
//!    caller supplies (the reactor driver maps it to milliseconds
//!    since its epoch).
//! 3. **Cheap cancellation.** The common case — a deadline armed per
//!    I/O op and cancelled microseconds later when the op completes —
//!    must not thrash the slot vectors. `cancel` is one CAS; the dead
//!    entry is dropped lazily when its slot is next processed, with a
//!    periodic sweep bounding the garbage a cancel-heavy workload can
//!    accumulate.
//!
//! Wakers are always fired *outside* the wheel lock: a waker may run
//! arbitrary executor code (including arming another timer), so
//! holding the lock across the call would be a re-entrancy deadlock.

use std::sync::Arc;
use std::task::Waker;

use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;
use lwt_sync::SpinLock;

use crate::sysapi::AtomicUsize;
use std::sync::atomic::Ordering::{AcqRel, Acquire};

/// Slots per level. 64 gives 6 bits per level.
pub const SLOTS: usize = 64;
/// Levels in the hierarchy. 4 levels × 6 bits cover deltas up to
/// `64^4` ticks ≈ 16.7M ms ≈ 4.6 h at the reactor's 1 ms tick;
/// farther deadlines park in the top level and re-cascade.
pub const LEVELS: usize = 4;
const BITS: u32 = 6; // log2(SLOTS)

/// Sweep lazily-cancelled garbage out of the slots every this many
/// `arm` calls. Bounds stale-entry memory to O(arms between sweeps)
/// without putting a scan on the per-op path.
const PURGE_EVERY: u64 = 4096;

/// Entry is armed and will fire at its deadline unless cancelled.
const ARMED: usize = 0;
/// The wheel advanced past the deadline and fired the entry.
const FIRED: usize = 1;
/// The waiter cancelled the entry before it fired.
const CANCELLED: usize = 2;

/// One armed deadline. Shared between the waiter (which polls
/// [`has_fired`](TimerEntry::has_fired) or parks a [`Waker`]) and the
/// wheel (which fires it from `advance`). The ARMED → FIRED |
/// CANCELLED transition is a single CAS, so exactly one side wins:
/// a fired entry cannot be cancelled, a cancelled entry never fires.
#[derive(Debug)]
pub struct TimerEntry {
    /// Absolute wheel tick this entry expires at.
    deadline: u64,
    state: AtomicUsize,
    waker: SpinLock<Option<Waker>>,
}

impl TimerEntry {
    fn new(deadline: u64) -> Self {
        TimerEntry {
            deadline,
            state: AtomicUsize::new(ARMED),
            waker: SpinLock::new(None),
        }
    }

    /// Absolute wheel tick this entry expires at.
    #[must_use]
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// Whether the deadline fired. `Acquire`: pairs with the fire
    /// CAS, so a waiter observing `true` also observes everything the
    /// driver did before firing.
    #[must_use]
    pub fn has_fired(&self) -> bool {
        self.state.load(Acquire) == FIRED
    }

    /// Cancel the entry. Returns `true` if the cancel won (the entry
    /// will never fire); `false` if it had already fired — the caller
    /// raced the deadline and lost, and must treat the op as timed
    /// out. Idempotent: repeat cancels on a cancelled entry return
    /// `true` without recounting.
    pub fn cancel(&self) -> bool {
        match self.state.compare_exchange(ARMED, CANCELLED, AcqRel, Acquire) {
            Ok(_) => {
                // Drop a parked waker eagerly: the task it would wake
                // may outlive this timer by hours.
                drop(self.waker.lock().take());
                COUNTERS.timers_cancelled.inc();
                true
            }
            Err(s) => s == CANCELLED,
        }
    }

    /// Park `waker` to be fired at the deadline, replacing any
    /// previous one (standard futures contract: last poll's waker
    /// wins). Returns `false` — without parking — if the entry
    /// already fired, in which case the caller must not wait.
    pub fn register_waker(&self, waker: &Waker) -> bool {
        let mut slot = self.waker.lock();
        // Checked under the waker lock: `fire` takes the same lock to
        // collect the waker, so an ARMED observation here means the
        // fire (if racing) will see — and wake — this registration.
        if self.state.load(Acquire) == ARMED {
            match &mut *slot {
                Some(w) => w.clone_from(waker),
                none => *none = Some(waker.clone()),
            }
            true
        } else {
            // Already fired or cancelled: nothing left to wait for.
            false
        }
    }

    /// Fire the entry if still armed; returns the waker to be woken
    /// by the caller *after* releasing the wheel lock.
    fn fire(&self) -> Option<Option<Waker>> {
        match self.state.compare_exchange(ARMED, FIRED, AcqRel, Acquire) {
            Ok(_) => Some(self.waker.lock().take()),
            Err(_) => None,
        }
    }

    fn is_cancelled(&self) -> bool {
        self.state.load(Acquire) == CANCELLED
    }
}

/// The slot arrays plus the wheel's notion of "now", guarded by one
/// spin lock (arm/cancel are O(1) inside it; `advance` collects due
/// wakers under it and fires them outside).
struct WheelState {
    /// Current tick: every armed entry has `deadline > now`.
    now: u64,
    levels: Box<[Vec<Arc<TimerEntry>>]>, // LEVELS * SLOTS, row-major
    /// Entries resident in slots: armed ones plus cancelled ones not
    /// yet collected (cancellation is lazy — `cancel` is one CAS on
    /// the entry; the wheel only learns when the slot is processed or
    /// purged). Zero means the wheel is provably idle.
    resident: usize,
    /// Lower bound on the earliest armed deadline; `u64::MAX` when
    /// nothing is armed. May be stale-early after a cancel (a
    /// spurious driver wake, never a late fire).
    next_hint: u64,
    /// `arm` calls since the last garbage sweep.
    arms_since_purge: u64,
}

impl WheelState {
    fn slot_index(&self, deadline: u64) -> usize {
        let delta = deadline - self.now; // caller guarantees > 0
        // Level: which 6-bit group the delta's top bit falls in.
        let level = (((63 - delta.leading_zeros()) / BITS) as usize).min(LEVELS - 1);
        let slot = ((deadline >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        level * SLOTS + slot
    }

    fn insert(&mut self, entry: Arc<TimerEntry>) {
        let idx = self.slot_index(entry.deadline);
        self.levels[idx].push(entry);
    }

    /// Drop every cancelled entry still parked in a slot.
    fn purge(&mut self) {
        let mut dropped = 0;
        for slot in self.levels.iter_mut() {
            let before = slot.len();
            slot.retain(|e| !e.is_cancelled());
            dropped += before - slot.len();
        }
        self.resident -= dropped;
    }
}

/// The hierarchical timer wheel. See the module docs for the design;
/// `lwt-net`'s reactor owns the process-wide instance and maps ticks
/// to milliseconds since its epoch.
pub struct TimerWheel {
    state: SpinLock<WheelState>,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl TimerWheel {
    /// An empty wheel at tick 0.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            state: SpinLock::new(WheelState {
                now: 0,
                levels: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
                resident: 0,
                next_hint: u64::MAX,
                arms_since_purge: 0,
            }),
        }
    }

    /// The wheel's current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.state.lock().now
    }

    /// Number of entries resident in the wheel: armed ones plus
    /// lazily-cancelled ones not yet collected. Zero ⇒ provably idle.
    #[must_use]
    pub fn armed_len(&self) -> usize {
        self.state.lock().resident
    }

    /// Arm a deadline at absolute tick `deadline`. A deadline at or
    /// before the current tick is clamped to the next tick — it fires
    /// on the next `advance`, never synchronously (so the caller can
    /// finish wiring its waiter first).
    pub fn arm(&self, deadline: u64) -> Arc<TimerEntry> {
        let mut s = self.state.lock();
        let deadline = deadline.max(s.now + 1);
        let entry = Arc::new(TimerEntry::new(deadline));
        s.insert(Arc::clone(&entry));
        s.resident += 1;
        s.next_hint = s.next_hint.min(deadline);
        s.arms_since_purge += 1;
        if s.arms_since_purge >= PURGE_EVERY {
            s.arms_since_purge = 0;
            s.purge();
        }
        drop(s);
        COUNTERS.timers_armed.inc();
        emit(EventKind::TimerArm, deadline);
        entry
    }

    /// Earliest tick at which an armed entry may fire: the driver
    /// sleeps until then. `None` when nothing is armed. The hint is a
    /// lower bound — a cancel can leave it early (one spurious wake),
    /// never late.
    #[must_use]
    pub fn next_deadline(&self) -> Option<u64> {
        let s = self.state.lock();
        (s.resident > 0).then_some(s.next_hint.max(s.now + 1))
    }

    /// Advance the wheel to absolute tick `to`, firing every armed
    /// entry whose deadline was reached. Returns the number fired.
    /// Wakers run after the wheel lock is released.
    pub fn advance(&self, to: u64) -> usize {
        let mut due: Vec<Arc<TimerEntry>> = Vec::new();
        {
            let mut s = self.state.lock();
            while s.now < to {
                if s.resident == 0 {
                    // Empty wheel: jump straight to the target.
                    s.now = to;
                    break;
                }
                let tick = s.now + 1;
                s.now = tick;
                // Level-0 slot for this tick holds everything due now.
                let idx = (tick & (SLOTS as u64 - 1)) as usize;
                for entry in std::mem::take(&mut s.levels[idx]) {
                    debug_assert!(entry.deadline <= tick);
                    s.resident -= 1;
                    if !entry.is_cancelled() {
                        due.push(entry);
                    }
                }
                // Cascade upper levels on their boundaries: entries
                // whose residual delta now fits a lower level move
                // down; entries due exactly at this tick join `due`.
                for level in 1..LEVELS {
                    if tick.trailing_zeros() < BITS * level as u32 {
                        break;
                    }
                    let slot =
                        ((tick >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                    let idx = level * SLOTS + slot;
                    for entry in std::mem::take(&mut s.levels[idx]) {
                        if entry.is_cancelled() {
                            s.resident -= 1;
                        } else if entry.deadline <= tick {
                            s.resident -= 1;
                            due.push(entry);
                        } else {
                            s.insert(entry);
                        }
                    }
                }
            }
            // Everything still resident is strictly in the future.
            let floor = s.now + 1;
            if s.resident == 0 {
                s.next_hint = u64::MAX;
            } else if s.next_hint < floor {
                s.next_hint = floor;
            }
        }
        let mut fired = 0;
        for entry in due {
            if let Some(waker) = entry.fire() {
                fired += 1;
                COUNTERS.timers_fired.inc();
                emit(EventKind::TimerFire, entry.deadline);
                if let Some(w) = waker {
                    w.wake();
                }
            }
        }
        fired
    }
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("TimerWheel")
            .field("now", &s.now)
            .field("resident", &s.resident)
            .field("next_hint", &s.next_hint)
            .finish_non_exhaustive()
    }
}

#[cfg(all(test, not(lwt_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
    use std::task::{RawWaker, RawWakerVTable, Waker};

    fn count_waker(hits: Arc<StdAtomicUsize>) -> Waker {
        fn clone(p: *const ()) -> RawWaker {
            // SAFETY: p is a leaked Arc<StdAtomicUsize>; bump its count.
            unsafe { Arc::increment_strong_count(p.cast::<StdAtomicUsize>()) };
            RawWaker::new(p, &VTABLE)
        }
        fn wake(p: *const ()) {
            // SAFETY: consumes the handle's Arc reference.
            let a = unsafe { Arc::from_raw(p.cast::<StdAtomicUsize>()) };
            a.fetch_add(1, Ordering::SeqCst);
        }
        fn wake_by_ref(p: *const ()) {
            // SAFETY: borrow without consuming.
            let a = unsafe { &*p.cast::<StdAtomicUsize>() };
            a.fetch_add(1, Ordering::SeqCst);
        }
        fn drop_raw(p: *const ()) {
            // SAFETY: consumes the handle's Arc reference.
            unsafe { drop(Arc::from_raw(p.cast::<StdAtomicUsize>())) };
        }
        static VTABLE: RawWakerVTable =
            RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);
        // SAFETY: vtable functions uphold the RawWaker contract above.
        unsafe { Waker::from_raw(RawWaker::new(Arc::into_raw(hits).cast(), &VTABLE)) }
    }

    #[test]
    fn fires_exactly_at_deadline() {
        let w = TimerWheel::new();
        let e = w.arm(10);
        assert_eq!(w.advance(9), 0);
        assert!(!e.has_fired());
        assert_eq!(w.advance(10), 1);
        assert!(e.has_fired());
        assert_eq!(w.advance(100), 0, "an entry fires once");
    }

    #[test]
    fn past_deadline_clamps_to_next_tick() {
        let w = TimerWheel::new();
        w.arm(50);
        assert_eq!(w.advance(50), 1);
        let e = w.arm(7); // already past: clamped to tick 51
        assert_eq!(e.deadline(), 51);
        assert_eq!(w.advance(51), 1);
        assert!(e.has_fired());
    }

    #[test]
    fn cancel_beats_fire_and_fire_beats_cancel() {
        let w = TimerWheel::new();
        let a = w.arm(5);
        assert!(a.cancel());
        assert_eq!(w.advance(5), 0, "cancelled entry must not fire");
        let b = w.arm(10);
        assert_eq!(w.advance(10), 1);
        assert!(!b.cancel(), "cancel after fire must report the loss");
        assert!(b.has_fired());
    }

    #[test]
    fn far_deadlines_cascade_through_levels() {
        let w = TimerWheel::new();
        // One entry per level span, plus a just-past-boundary one.
        let deadlines = [1, 63, 64, 65, 4095, 4096, 4097, 262_143, 262_144, 500_000];
        let entries: Vec<_> = deadlines.iter().map(|&d| w.arm(d)).collect();
        let mut fired = 0;
        // Advance in uneven strides so cascades hit mid-slot too.
        let mut t = 0;
        while t < 600_000 {
            t += 977; // prime stride
            fired += w.advance(t);
        }
        assert_eq!(fired, deadlines.len());
        for (e, &d) in entries.iter().zip(&deadlines) {
            assert!(e.has_fired(), "deadline {d} never fired");
        }
        assert_eq!(w.armed_len(), 0);
    }

    #[test]
    fn no_early_fire_across_cascades() {
        let w = TimerWheel::new();
        // Deadlines just above each level boundary must survive the
        // cascade that moves them down without firing early.
        for &d in &[65u64, 4097, 262_145] {
            let e = w.arm(d);
            assert_eq!(w.advance(d - 1), 0, "deadline {d} fired early");
            assert!(!e.has_fired());
            assert_eq!(w.advance(d), 1);
        }
    }

    #[test]
    fn next_deadline_hint_tracks_arms() {
        let w = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.arm(100);
        let early = w.arm(30);
        assert_eq!(w.next_deadline(), Some(30));
        assert!(early.cancel());
        // Hint may be stale-early after a cancel, but never late.
        let hint = w.next_deadline().unwrap();
        assert!(hint <= 100);
        w.advance(hint);
        assert!(w.next_deadline().unwrap() <= 100);
        w.advance(100);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn fired_entry_wakes_parked_waker() {
        let hits = Arc::new(StdAtomicUsize::new(0));
        let w = TimerWheel::new();
        let e = w.arm(3);
        assert!(e.register_waker(&count_waker(Arc::clone(&hits))));
        w.advance(3);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Late registration on a fired entry must refuse, not park.
        assert!(!e.register_waker(&count_waker(Arc::clone(&hits))));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cancel_drops_waker_without_waking() {
        let hits = Arc::new(StdAtomicUsize::new(0));
        let w = TimerWheel::new();
        let e = w.arm(3);
        assert!(e.register_waker(&count_waker(Arc::clone(&hits))));
        assert!(e.cancel());
        w.advance(10);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_wheel_jump_is_cheap_and_correct() {
        let w = TimerWheel::new();
        w.advance(10_000_000); // must be O(1), not 10M ticks
        let e = w.arm(10_000_005);
        assert_eq!(w.advance(10_000_005), 1);
        assert!(e.has_fired());
    }

    #[test]
    fn cancel_heavy_load_purges_garbage() {
        let w = TimerWheel::new();
        // Far deadlines that would otherwise sit as garbage for ages.
        for i in 0..2 * PURGE_EVERY {
            let e = w.arm(1_000_000 + i);
            assert!(e.cancel());
        }
        // The periodic sweep must have collected (almost) all of the
        // cancelled entries: only those armed since the last sweep
        // may still be resident.
        assert!(
            w.armed_len() <= PURGE_EVERY as usize,
            "purge left {} stale entries",
            w.armed_len()
        );
        let total: usize = {
            let s = w.state.lock();
            s.levels.iter().map(Vec::len).sum()
        };
        assert!(
            total <= PURGE_EVERY as usize,
            "purge left {total} slot residents"
        );
    }

    #[test]
    fn counters_track_arm_fire_cancel() {
        let ((), snap) = lwt_metrics::registry::scoped(|| {
            let w = TimerWheel::new();
            let _f = w.arm(1);
            let c = w.arm(2);
            c.cancel();
            w.advance(5);
        });
        assert_eq!(snap.counters.timers_armed, 2);
        assert_eq!(snap.counters.timers_fired, 1);
        assert_eq!(snap.counters.timers_cancelled, 1);
    }
}
