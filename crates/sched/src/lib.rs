//! # lwt-sched — work-unit queues and dispatch policies
//!
//! The reproduced paper traces each library's performance curve back to
//! its *queue topology and scheduling policy* (Table I: global vs
//! private work-unit queues, plug-in/stackable schedulers, work
//! stealing). This crate implements those structures from scratch:
//!
//! * [`SharedQueue`] — a single mutex-protected FIFO shared by every
//!   worker: Go's global run queue and `gcc` OpenMP's task queue. The
//!   contention this design adds under load is one of the paper's
//!   recurring findings.
//! * [`PrivateDeque`] — an unsynchronized per-worker deque for private
//!   pools (Argobots' best-performing configuration).
//! * [`StealableDeque`] — a lock-protected per-worker deque whose owner
//!   works LIFO while thieves take FIFO from the other end —
//!   MassiveThreads' ready queue ("this mechanism requires mutex
//!   protection in order to access the queue").
//! * [`ChaseLev`] ([`Worker`]/[`Stealer`]) — the classic lock-free
//!   work-stealing deque, modelling Intel OpenMP's per-thread task
//!   queues with work stealing.
//! * [`RoundRobin`] — the cyclic dispatcher the paper's
//!   microbenchmarks use to push work units into other workers' queues
//!   (`qthread_fork_to`, Converse message sends, Argobots private
//!   pools).
//! * [`RandomVictim`] — uniform victim selection for work stealing
//!   (MassiveThreads' "random Work-Stealing mechanism").
//! * [`Injector`] — a lock-free MPSC queue (Vyukov) for cross-worker
//!   submission: Converse message sends, `qthread_fork_to`, and every
//!   external spawn land here instead of on a lock.
//! * [`ReadyQueue`] — the composite per-worker structure the runtimes
//!   now schedule from: Chase-Lev deque for the owner + thieves,
//!   [`Injector`] inbox for everyone else, with a fairness tick that
//!   keeps the old end live under LIFO pressure.
//! * [`ParkGroup`] — per-worker parkers plus a wake-one protocol, so
//!   idle workers sleep instead of spinning ([`WaitPolicy`] mirrors
//!   `OMP_WAIT_POLICY` via `LWT_WAIT_POLICY`).
//! * [`TaskState`] — the idle/scheduled/running/notified/complete
//!   lifecycle of a stackless future task, giving every backend's
//!   async bridge the same no-lost-wake guarantee (model-checked in
//!   `crates/model/tests/waker.rs`).
//! * [`io_poll`] / [`set_io_poll`] — the reactor idle-poll seam: the
//!   I/O reactor (`lwt-net`) registers a non-blocking poll hook that
//!   every backend calls when a steal sweep comes up dry, so readiness
//!   events are collected before a worker parks.
//! * [`TimerWheel`] — the hierarchical timer wheel behind every
//!   deadline in the serving stack (TCP read/write deadlines, HTTP
//!   idle/header timeouts, graceful-drain deadlines). The reactor
//!   driver advances it; both ULT relax loops and async task wakers
//!   can be armed on a [`TimerEntry`].

#![warn(missing_docs)]

mod chase_lev;
mod injector;
mod io;
mod park;
mod sysapi;
mod private;
mod ready;
mod shared;
mod stealable;
mod task;
mod timer;
mod victim;

pub use chase_lev::{ChaseLev, Steal, Stealer, Worker};
pub use injector::Injector;
pub use io::{io_poll, io_poll_registered, set_io_poll};
pub use park::{
    current_wait_policy, force_wait_policy, reset_wait_policy_to_env, ParkGroup, ParkResult,
    WaitPolicy,
};
pub use private::PrivateDeque;
pub use ready::{ReadyQueue, FAIRNESS};
pub use shared::SharedQueue;
pub use stealable::StealableDeque;
pub use task::{TaskState, WakeAction};
pub use timer::{TimerEntry, TimerWheel, LEVELS, SLOTS};
pub use victim::{near_first, RandomVictim, RoundRobin};
