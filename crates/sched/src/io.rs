//! Reactor idle-poll hook: the seam between the backends' idle paths
//! and the I/O reactor, with the dependency arrow pointing the right
//! way.
//!
//! `lwt-net` (the epoll reactor) sits *above* the backend crates in
//! the dependency graph — it spawns work through the GLT API — so the
//! backends cannot call into it directly. Instead the reactor
//! registers a bare `fn() -> usize` here at initialization, and every
//! backend's worker loop calls [`io_poll`] when its steal sweep comes
//! up dry, right before parking on the [`ParkGroup`]. The hook gives
//! an otherwise-idle worker a chance to collect readiness events (and
//! thereby requeue woken tasks through the backend's own `post_task`
//! path) without waiting for the reactor driver thread to be
//! scheduled — which matters on saturated or single-core machines.
//!
//! When no reactor has started, [`io_poll`] is one relaxed load and a
//! predictable branch: runtimes that never touch the network pay
//! nothing for this seam.
//!
//! Ordering contract (DESIGN.md §15): the hook itself carries no
//! synchronization promises. A non-zero return means "readiness was
//! dispatched; ready queues may have grown through `post_task`", and
//! the caller must re-run its sweep before parking — the same re-check
//! discipline [`ParkGroup::park`]'s `pending` closure enforces for
//! queue pushes.
//!
//! [`ParkGroup`]: crate::ParkGroup
//! [`ParkGroup::park`]: crate::ParkGroup::park

use std::sync::atomic::{AtomicUsize, Ordering};

/// The registered poll hook, stored as a thin `fn` pointer (0 = none).
/// A `fn() -> usize` is ABI-compatible with a pointer-sized word on
/// every platform the workspace targets.
static IO_POLL: AtomicUsize = AtomicUsize::new(0);

/// Register the process-wide I/O poll hook. The hook must be
/// non-blocking (an `epoll_wait` with a zero timeout, or a try-lock
/// that bails when another thread is already polling) and must return
/// the number of readiness events it dispatched.
///
/// First registration wins and returns `true`; later calls are
/// ignored and return `false` (the reactor is a process singleton, so
/// a second registration is a bug on the caller's side, but ignoring
/// it keeps racing initializers safe).
pub fn set_io_poll(hook: fn() -> usize) -> bool {
    IO_POLL
        .compare_exchange(0, hook as usize, Ordering::Release, Ordering::Relaxed)
        .is_ok()
}

/// Whether a reactor has registered an idle-poll hook.
#[must_use]
pub fn io_poll_registered() -> bool {
    IO_POLL.load(Ordering::Relaxed) != 0
}

/// Poll the reactor for readiness, if one is running. Returns the
/// number of events dispatched (0 when no reactor is registered, when
/// another thread holds the poll slot, or when nothing was ready).
///
/// Backends call this on the idle path: a non-zero return means wakes
/// were delivered — some may have landed in this worker's own queues —
/// so the caller should re-sweep instead of parking.
#[inline]
#[must_use]
pub fn io_poll() -> usize {
    let raw = IO_POLL.load(Ordering::Acquire);
    if raw == 0 {
        return 0;
    }
    // Safety: the only non-zero value ever stored is a valid
    // `fn() -> usize`, written with Release by `set_io_poll` and read
    // here with Acquire.
    let hook: fn() -> usize = unsafe { std::mem::transmute(raw) };
    hook()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_poll() -> usize {
        7
    }

    #[test]
    fn unregistered_hook_is_a_noop() {
        // May race with `first_registration_wins` in the same process;
        // only assert the no-crash property plus a consistent pair.
        if !io_poll_registered() {
            assert_eq!(io_poll(), 0);
        }
    }

    #[test]
    fn first_registration_wins() {
        let first = set_io_poll(fake_poll);
        // Either we registered it or someone else did; a second
        // attempt must always lose.
        assert!(!set_io_poll(fake_poll) || !first);
        assert!(io_poll_registered());
        assert_eq!(io_poll(), 7);
    }
}
