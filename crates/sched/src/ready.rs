//! Per-worker ready queue: a Chase-Lev deque fronted by an MPSC
//! inbox, with an owner-identity check and a fairness tick.
//!
//! This is the composite structure the redesigned runtimes hang their
//! scheduling on. Each worker owns one [`ReadyQueue`]:
//!
//! * The **owning worker** (the thread that called [`ReadyQueue::bind`])
//!   pushes and pops through the lock-free [`ChaseLev`] deque — LIFO,
//!   no atomic RMW on the fast path.
//! * **Any other thread** — a spawner on another worker, an external
//!   master, a `fork_to`/`send_to` placement call — lands work in the
//!   lock-free MPSC [`Injector`] inbox instead. [`ReadyQueue::push`]
//!   routes automatically based on the caller's identity, so runtime
//!   code never has to know where it is running.
//! * **Thieves** steal from the deque's top (the oldest entry) via
//!   [`ReadyQueue::steal_once`].
//!
//! ## Fairness
//!
//! A pure LIFO owner would starve the inbox (and the deque's own tail)
//! whenever it keeps itself busy — the classic failure being a joiner
//! that yield-loops above the very child it awaits. Every
//! [`FAIRNESS`]-th owner pop therefore drains from the *old* end
//! first: the inbox, then the deque's top. Inbox work also becomes
//! visible to thieves: when the owner takes from the inbox it moves a
//! small batch of follow-on items into the deque, where other workers
//! can steal them.
//!
//! ## Ownership discipline
//!
//! The Chase-Lev owner side is single-threaded by construction. The
//! queue records its owner as a process-unique thread token set by
//! [`ReadyQueue::bind`]; calls from any other thread degrade to the
//! always-safe paths (inject on push, steal on pop), so the deque's
//! single-owner invariant holds no matter who holds a reference.

use std::sync::atomic::{AtomicU64, Ordering};

use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;

use crate::chase_lev::{ChaseLev, Steal, Stealer, Worker};
use crate::injector::Injector;

/// Owner pops consult the inbox/old end once every this many pops.
/// Prime, so the fairness tick can't resonate with power-of-two
/// spawn patterns.
pub const FAIRNESS: u64 = 61;

/// On an inbox hit, up to this many follow-on inbox items are moved
/// into the deque so thieves can see them.
const INBOX_BATCH: usize = 16;

/// Process-unique identity for the calling thread (never 0).
fn thread_token() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: Cell<u64> = const { Cell::new(0) };
    }
    TOKEN.with(|t| {
        let mut v = t.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

/// A worker's ready queue. See module docs.
pub struct ReadyQueue<T: Send> {
    /// Thread token of the bound owner; 0 while unbound.
    owner: AtomicU64,
    /// Owner-side deque handle (only the bound owner touches it).
    local: Worker<T>,
    /// Steal handle onto `local`, for thieves and the fairness path.
    mirror: Stealer<T>,
    /// Cross-thread submissions.
    inbox: Injector<T>,
    /// Owner pop counter driving the fairness policy (owner-only).
    tick: AtomicU64,
}

impl<T: Send> Default for ReadyQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ReadyQueue<T> {
    /// New empty queue with the default deque capacity.
    #[must_use]
    pub fn new() -> Self {
        let (local, mirror) = ChaseLev::new();
        ReadyQueue {
            owner: AtomicU64::new(0),
            local,
            mirror,
            inbox: Injector::new(),
            tick: AtomicU64::new(0),
        }
    }

    /// Declare the calling thread the queue's owner. Call once from
    /// the worker thread before its scheduling loop; rebinding moves
    /// ownership (legal only once the previous owner is done).
    pub fn bind(&self) {
        self.owner.store(thread_token(), Ordering::Release);
    }

    fn is_owner(&self) -> bool {
        self.owner.load(Ordering::Relaxed) == thread_token()
    }

    /// Submit work: the owner pushes straight onto its deque (LIFO),
    /// everyone else goes through the inbox.
    pub fn push(&self, value: T) {
        if self.is_owner() {
            self.local.push(value);
        } else {
            self.inbox.push(value);
        }
    }

    /// Submit work through the inbox unconditionally — explicit
    /// placement (`fork_to`, `send_to`) and requeues that must not
    /// jump ahead of the owner's current LIFO chain.
    pub fn inject(&self, value: T) {
        self.inbox.push(value);
    }

    /// Owner dequeue. LIFO from the deque with a periodic fairness
    /// pass over the inbox and the deque's old end; falls back to the
    /// inbox when the deque is dry. Non-owner callers degrade to
    /// [`Self::steal`].
    pub fn pop(&self) -> Option<T> {
        if !self.is_owner() {
            return self.steal();
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if tick % FAIRNESS == FAIRNESS - 1 {
            if let Some(v) = self.take_inbox() {
                return Some(v);
            }
            if let Steal::Success(v) = self.mirror.steal_once() {
                return Some(v);
            }
        }
        self.local.pop().or_else(|| self.take_inbox())
    }

    /// Pop one inbox item and expose a batch of follow-ons to thieves
    /// by moving them into the deque. Owner-only.
    fn take_inbox(&self) -> Option<T> {
        let first = self.inbox.pop()?;
        for _ in 0..INBOX_BATCH {
            match self.inbox.pop() {
                Some(v) => self.local.push(v),
                None => break,
            }
        }
        Some(first)
    }

    /// One steal probe against the deque's old end. `Retry` (a lost
    /// race) is counted as `queue_contention`.
    ///
    /// Chaos decision point: `StealFail` makes the probe report
    /// `Empty` without touching the deque — the thief walks away as if
    /// the victim had no work (a missed steal, not a lost race). Only
    /// this cross-worker path is injected; the owner's fairness pass
    /// in [`Self::pop`] drains the deque directly, so injected
    /// failures delay migration but can never strand a unit.
    pub fn steal_once(&self) -> Steal<T> {
        if lwt_chaos::should_inject(lwt_chaos::FaultSite::StealFail) {
            return Steal::Empty;
        }
        let result = self.mirror.steal_once();
        if matches!(result, Steal::Retry) {
            COUNTERS.queue_contention.inc();
            emit(EventKind::QueueContention, 1);
        }
        result
    }

    /// Steal, retrying lost races a bounded number of times. `None`
    /// means the deque is empty *or persistently contended* — either
    /// way the thief should move on (next victim, then the idle/park
    /// path) instead of burning a core here; a contended deque has an
    /// active owner who will drain it. Unbounded retry was the
    /// idle-spin bug: a thief could pin a CPU at 100% against a
    /// pathological victim without ever acquiring work. Note: thieves
    /// cannot see the inbox (it has a single consumer — the owner).
    pub fn steal(&self) -> Option<T> {
        const MAX_RETRIES: usize = 32;
        for _ in 0..MAX_RETRIES {
            match self.steal_once() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
        None
    }

    /// Approximate total occupancy (deque + inbox); racy diagnostics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.local.len() + self.inbox.len()
    }

    /// Occupancy a *thief* could reach — the deque only; the inbox has
    /// a single consumer (the owner). Pre-park emptiness re-checks sum
    /// this over the victims instead of [`Self::len`], so an inbox item
    /// only its (busy) owner can take never spuriously aborts a park.
    #[must_use]
    pub fn stealable_len(&self) -> usize {
        self.local.len()
    }

    /// Whether the queue looks empty (same caveat as [`Self::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> std::fmt::Debug for ReadyQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyQueue")
            .field("owner", &self.owner.load(Ordering::Relaxed))
            .field("deque_len", &self.local.len())
            .field("inbox_len", &self.inbox.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owner_pushes_and_pops_lifo() {
        let q = ReadyQueue::new();
        q.bind();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn foreign_push_routes_to_inbox_and_owner_drains_it() {
        let q = Arc::new(ReadyQueue::new());
        q.bind();
        {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(42)).join().unwrap();
        }
        // The owner's deque is empty, so pop falls through to the
        // inbox.
        assert_eq!(q.pop(), Some(42));
    }

    #[test]
    fn fairness_tick_reaches_the_old_end() {
        let q = ReadyQueue::new();
        q.bind();
        // An adversarial owner that re-pushes what it pops would spin
        // on the newest item forever; the fairness tick must surface
        // the oldest item within a bounded number of pops.
        q.push("old");
        q.push("hot");
        let mut seen_old = false;
        for _ in 0..(2 * FAIRNESS) {
            let v = q.pop().unwrap();
            if v == "old" {
                seen_old = true;
                break;
            }
            q.push(v);
        }
        assert!(seen_old, "fairness tick must break LIFO re-push loops");
    }

    #[test]
    fn fairness_tick_reaches_the_inbox_under_lifo_load() {
        let q = Arc::new(ReadyQueue::new());
        q.bind();
        {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.inject("inboxed")).join().unwrap();
        }
        let mut seen = false;
        for _ in 0..(2 * FAIRNESS) {
            q.push("local");
            match q.pop() {
                Some("inboxed") => {
                    seen = true;
                    break;
                }
                Some(_) => {}
                None => unreachable!("queue is never empty here"),
            }
        }
        assert!(seen, "inbox must be served even while the deque is hot");
    }

    #[test]
    fn inbox_work_becomes_stealable_after_owner_touches_it() {
        let q = Arc::new(ReadyQueue::new());
        q.bind();
        for i in 0..10 {
            // Simulate foreign submissions.
            q.inject(i);
        }
        // Owner takes one; the batch move must park follow-ons in the
        // deque where a thief can reach them.
        let first = q.pop().unwrap();
        assert_eq!(first, 0);
        let thief = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.steal())
        };
        assert!(thief.join().unwrap().is_some(), "thief must see batch");
    }

    #[test]
    fn non_owner_pop_degrades_to_steal() {
        let q = Arc::new(ReadyQueue::new());
        q.bind();
        q.push(7);
        let q2 = Arc::clone(&q);
        let got = std::thread::spawn(move || q2.pop()).join().unwrap();
        assert_eq!(got, Some(7), "foreign pop must steal, not touch owner side");
    }

    #[test]
    fn spawn_and_steal_stress_loses_nothing() {
        const ITEMS: u64 = 20_000;
        let q = Arc::new(ReadyQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.bind();
                let mut got = 0u64;
                for i in 0..ITEMS {
                    q.push(i);
                    if i % 64 == 0 {
                        // Owner consumes a little too.
                        if q.pop().is_some() {
                            got += 1;
                        }
                    }
                }
                // Drain what's left on the owner side.
                while q.pop().is_some() {
                    got += 1;
                }
                got
            })
        };
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0u64;
                    let mut dry = 0;
                    while dry < 1_000 {
                        match q.steal_once() {
                            Steal::Success(_) => {
                                got += 1;
                                dry = 0;
                            }
                            _ => {
                                dry += 1;
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut total = producer.join().unwrap();
        for t in thieves {
            total += t.join().unwrap();
        }
        // Thieves may have gone dry before the owner's final drain;
        // anything still queued is reachable by stealing now.
        while q.steal().is_some() {
            total += 1;
        }
        assert!(q.is_empty());
        assert_eq!(total, ITEMS, "every pushed item consumed exactly once");
    }
}
