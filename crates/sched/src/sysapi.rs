//! System-primitive facade (the loom pattern).
//!
//! The lock-free structures in this crate ([`crate::ChaseLev`] and
//! [`crate::Injector`]) reach their atomics and `UnsafeCell`s through
//! this module. Under a normal build the aliases resolve to `std` and
//! compile away; under `RUSTFLAGS="--cfg lwt_model"` they resolve to
//! the `lwt-model` shims, so the *real* deque and injector code — not
//! a rewrite — runs inside the deterministic model checker
//! (`crates/model/tests/`).

#[cfg(not(lwt_model))]
pub(crate) use std::cell::UnsafeCell;
#[cfg(not(lwt_model))]
pub(crate) use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicUsize};

#[cfg(lwt_model)]
pub(crate) use lwt_model::cell::UnsafeCell;
#[cfg(lwt_model)]
pub(crate) use lwt_model::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicUsize};

/// One spin-wait hint. Model: a scheduler yield, so retry loops are
/// explored (and bounded) instead of burning the search.
#[inline]
pub(crate) fn spin_hint() {
    #[cfg(not(lwt_model))]
    std::hint::spin_loop();
    #[cfg(lwt_model)]
    lwt_model::hint::spin_loop();
}

/// Yield the OS thread. Model: a scheduler yield.
#[inline]
pub(crate) fn yield_thread() {
    #[cfg(not(lwt_model))]
    std::thread::yield_now();
    #[cfg(lwt_model)]
    lwt_model::thread::yield_now();
}

/// Sleep for a short nap. Model: a scheduler yield — model time is
/// logical, so sleeping has no meaning beyond "let others run".
#[inline]
pub(crate) fn nap(dur: std::time::Duration) {
    #[cfg(not(lwt_model))]
    std::thread::sleep(dur);
    #[cfg(lwt_model)]
    {
        let _ = dur;
        lwt_model::thread::yield_now();
    }
}
