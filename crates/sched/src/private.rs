//! Unsynchronized per-worker deque (Argobots private pools).

use std::collections::VecDeque;

/// A per-worker, single-owner work-unit deque.
///
/// No synchronization at all: only the owning worker touches it. This is
/// the "one private pool per Execution Stream" configuration that the
/// paper's evaluation selects for Argobots in every benchmark — the
/// master thread *dispatches into* other workers' pools, which in this
/// workspace is done by the runtimes through a small mailbox, keeping
/// the hot pop path lock-free.
///
/// The deque supports both ends so runtimes can choose FIFO (help-first)
/// or LIFO (work-first / depth-first) execution order.
#[derive(Debug)]
pub struct PrivateDeque<T> {
    inner: VecDeque<T>,
}

impl<T> PrivateDeque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Self {
        PrivateDeque {
            inner: VecDeque::new(),
        }
    }

    /// Enqueue at the back (FIFO arrival order).
    pub fn push_back(&mut self, value: T) {
        self.inner.push_back(value);
    }

    /// Enqueue at the front (LIFO / depth-first order).
    pub fn push_front(&mut self, value: T) {
        self.inner.push_front(value);
    }

    /// Dequeue from the front.
    pub fn pop_front(&mut self) -> Option<T> {
        self.inner.pop_front()
    }

    /// Dequeue from the back.
    pub fn pop_back(&mut self) -> Option<T> {
        self.inner.pop_back()
    }

    /// Number of queued units.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the deque is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drain every queued unit, front to back.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.inner.drain(..)
    }
}

impl<T> Default for PrivateDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Extend<T> for PrivateDeque<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_via_back_front() {
        let mut d = PrivateDeque::new();
        d.push_back(1);
        d.push_back(2);
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_front(), Some(2));
        assert_eq!(d.pop_front(), None);
    }

    #[test]
    fn lifo_via_front_front() {
        let mut d = PrivateDeque::new();
        d.push_front(1);
        d.push_front(2);
        assert_eq!(d.pop_front(), Some(2));
        assert_eq!(d.pop_front(), Some(1));
    }

    #[test]
    fn drain_and_extend() {
        let mut d = PrivateDeque::new();
        d.extend(0..5);
        assert_eq!(d.len(), 5);
        let v: Vec<_> = d.drain().collect();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert!(d.is_empty());
    }
}
