//! Worker parking and the wake-one protocol — how idle workers stop
//! burning cores.
//!
//! Before this layer, every idle worker in every backend sat in a
//! spin/nap loop, re-sweeping empty queues forever: the active-wait
//! behavior the paper's `OMP_WAIT_POLICY` discussion warns about. A
//! quiescent 4-worker runtime ate 4 cores. [`ParkGroup`] gives each
//! worker a [`Parker`] slot and a protocol for going to sleep without
//! ever missing work:
//!
//! * **Idle side** ([`ParkGroup::park`]): the worker *announces* it is
//!   idle (slot flag + group count), issues a `SeqCst` fence, and
//!   **re-checks** for pending work. Only if the re-check still finds
//!   nothing does it sleep on its parker.
//! * **Notify side** ([`ParkGroup::notify`]): a spawner pushes its
//!   work unit *first*, issues a `SeqCst` fence, and then looks at the
//!   idle count. When idle workers exist it wakes **at most one**
//!   (wake-one), guarded by a *handoff* flag so a burst of spawns
//!   doesn't thundering-herd every sleeper awake.
//!
//! The two fences preclude the store-buffering outcome where the
//! spawner misses the announcement *and* the idler misses the work:
//! in every interleaving at least one side sees the other, so either
//! the idler aborts its park (re-check hit) or the spawner wakes it
//! (idle count hit). The parker's token makes the wake itself raceless
//! — an unpark delivered between announce and sleep is consumed by the
//! sleep, not lost. `crates/model/tests/park.rs` pins this argument by
//! model-checking the real code with the sleep made blocking.
//!
//! The handoff flag is cleared by whichever worker exits the idle path
//! next; a woken worker that finds more than one pending unit wakes
//! one more sleeper ([wake propagation]), so bursts fan out one wake
//! at a time instead of all at once or not at all.
//!
//! [wake propagation]: ParkGroup::park
//!
//! ## Wait policies (`LWT_WAIT_POLICY`)
//!
//! Mirroring `OMP_WAIT_POLICY`:
//!
//! * `active` — never sleep: [`ParkGroup::park`] degrades to the old
//!   bounded nap, for latency-critical runs that own their cores.
//! * `passive` — sleep as soon as the caller's backoff is exhausted.
//! * `adaptive` (default) — yield the OS thread for a short grace
//!   window (re-checking for work each round), then sleep.
//!
//! Sleeps use a generous backstop timeout as defense in depth: even if
//! a wake were lost, the worker re-sweeps within the backstop instead
//! of hanging forever. Correctness never relies on it.

use std::time::Duration;

use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;
use lwt_sync::Parker;

use crate::sysapi::{fence, AtomicBool, AtomicUsize};
use std::sync::atomic::{AtomicU8, Ordering};

/// How an idle worker should wait for work (`OMP_WAIT_POLICY` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Never park: idle workers keep re-sweeping with short naps. The
    /// pre-parking behavior, for runs that own their cores.
    Active,
    /// Park as soon as the idle path is reached.
    Passive,
    /// Yield briefly (re-checking for work), then park. The default.
    Adaptive,
}

impl WaitPolicy {
    /// Stable display name (the accepted `LWT_WAIT_POLICY` spelling).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            WaitPolicy::Active => "active",
            WaitPolicy::Passive => "passive",
            WaitPolicy::Adaptive => "adaptive",
        }
    }

    /// Parse an `LWT_WAIT_POLICY` value (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<WaitPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "active" => Some(WaitPolicy::Active),
            "passive" => Some(WaitPolicy::Passive),
            "adaptive" => Some(WaitPolicy::Adaptive),
            _ => None,
        }
    }
}

/// 0 = uninitialized (consult `LWT_WAIT_POLICY`), else policy + 1.
static POLICY: AtomicU8 = AtomicU8::new(0);

fn encode(p: WaitPolicy) -> u8 {
    match p {
        WaitPolicy::Active => 1,
        WaitPolicy::Passive => 2,
        WaitPolicy::Adaptive => 3,
    }
}

/// The wait policy in effect. Hot path: one relaxed load; the
/// environment is consulted once, on first call. Unset or
/// unrecognized values mean [`WaitPolicy::Adaptive`].
#[inline]
#[must_use]
pub fn current_wait_policy() -> WaitPolicy {
    match POLICY.load(Ordering::Relaxed) {
        1 => WaitPolicy::Active,
        2 => WaitPolicy::Passive,
        3 => WaitPolicy::Adaptive,
        _ => init_policy_from_env(),
    }
}

#[cold]
fn init_policy_from_env() -> WaitPolicy {
    let p = std::env::var("LWT_WAIT_POLICY")
        .ok()
        .and_then(|v| WaitPolicy::parse(&v))
        .unwrap_or(WaitPolicy::Adaptive);
    // Lose gracefully to a concurrent `force_wait_policy`.
    let _ = POLICY.compare_exchange(0, encode(p), Ordering::Relaxed, Ordering::Relaxed);
    current_wait_policy()
}

/// Programmatically pin the wait policy, overriding `LWT_WAIT_POLICY`
/// (process-wide — it steers every `ParkGroup`).
pub fn force_wait_policy(p: WaitPolicy) {
    POLICY.store(encode(p), Ordering::Relaxed);
}

/// Forget any programmatic override: the next [`current_wait_policy`]
/// call consults `LWT_WAIT_POLICY` again.
pub fn reset_wait_policy_to_env() {
    POLICY.store(0, Ordering::Relaxed);
}

/// Why [`ParkGroup::park`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkResult {
    /// The post-announce re-check saw pending work: the worker never
    /// slept and should sweep its queues now.
    FoundWork,
    /// The worker slept and a wake token arrived (a spawner's
    /// notification, a spurious chaos unpark, or a shutdown unpark).
    Woken,
    /// The backstop timeout expired with no token; sweep and re-park.
    TimedOut,
    /// The policy forbids sleeping (active), the adaptive grace window
    /// saw no work yet, or the worker index has no slot: the worker
    /// yielded/napped instead. Loop and re-sweep.
    Spun,
}

/// Per-worker parking state.
struct ParkSlot {
    parker: Parker,
    /// The worker is inside the idle path (announce → sleep → exit):
    /// the notify side targets announced slots, so a wake aimed at a
    /// worker still on its way down deposits a token the imminent
    /// sleep consumes immediately.
    announced: AtomicBool,
}

/// Parker/unparker state for one runtime's worker pool. See module
/// docs for the protocol.
///
/// ```
/// use lwt_sched::ParkGroup;
/// let group = ParkGroup::new(2);
/// group.notify();        // nobody idle: one load, no effect
/// group.unpark_all();    // shutdown path: tokens for everyone
/// ```
pub struct ParkGroup {
    slots: Box<[ParkSlot]>,
    /// Workers currently inside the idle path (announced).
    idle: AtomicUsize,
    /// A wake is in flight: set by the notifier that delivers a token,
    /// cleared by the next worker exiting the idle path. While set,
    /// further notifies are suppressed (wake-one).
    handoff: AtomicBool,
}

/// Backstop sleep for `passive`: pure defense in depth, see module
/// docs. (Model builds sleep without a backstop, so a lost wake is a
/// detectable livelock.)
#[cfg(not(lwt_model))]
const PASSIVE_BACKSTOP: Duration = Duration::from_millis(200);
/// Backstop sleep for `adaptive`: shorter, so a (hypothetically)
/// missed transition costs little on the policy meant for shared use.
#[cfg(not(lwt_model))]
const ADAPTIVE_BACKSTOP: Duration = Duration::from_millis(20);
/// OS-thread yields an `adaptive` worker spends re-checking for work
/// before it commits to sleeping.
const ADAPTIVE_GRACE_YIELDS: u32 = 32;
/// Nap length for the `active` policy's (non-)park — the historical
/// idle-loop nap the backends used before parking existed.
const ACTIVE_NAP: Duration = Duration::from_micros(50);

impl ParkGroup {
    /// A group with `workers` parker slots (worker ids `0..workers`).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ParkGroup {
            slots: (0..workers)
                .map(|_| ParkSlot {
                    parker: Parker::new(),
                    announced: AtomicBool::new(false),
                })
                .collect(),
            idle: AtomicUsize::new(0),
            handoff: AtomicBool::new(false),
        }
    }

    /// Number of parker slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Workers currently inside the idle path (announced or asleep).
    /// Racy diagnostic.
    #[must_use]
    pub fn idle_workers(&self) -> usize {
        self.idle.load(Ordering::Relaxed)
    }

    /// The idle path. Call when a sweep of every queue came up dry
    /// (typically once the caller's backoff saturates); `pending`
    /// must cheaply estimate the work currently visible to this
    /// worker (queue lengths), and is what the post-announce re-check
    /// consults.
    ///
    /// On wake (token or timeout) the caller should re-sweep its
    /// queues and, if still dry, call `park` again — the re-announce
    /// is what makes work pushed during the wake visible.
    ///
    /// `heartbeat` is marked parked for the duration of the sleep so
    /// the stall watchdog doesn't flag a healthy sleeper.
    ///
    /// Chaos decision point: `SpuriousUnpark` deposits a wake token
    /// with no work attached, forcing the empty-handed wake path.
    pub fn park(
        &self,
        worker: usize,
        heartbeat: Option<&lwt_chaos::Heartbeat>,
        pending: impl Fn() -> usize,
    ) -> ParkResult {
        let policy = current_wait_policy();
        let Some(slot) = self.slots.get(worker) else {
            // Dynamically created worker beyond the sized pool (extra
            // argobots streams): degrade to the historical nap.
            crate::sysapi::nap(ACTIVE_NAP);
            return ParkResult::Spun;
        };
        if policy == WaitPolicy::Active {
            crate::sysapi::nap(ACTIVE_NAP);
            return ParkResult::Spun;
        }

        if lwt_chaos::should_inject(lwt_chaos::FaultSite::SpuriousUnpark) {
            slot.parker.unpark();
        }

        // Announce, then re-check. The SeqCst fence pairs with the
        // notify side's push→fence→count sequence: at least one of
        // "notifier sees the announcement" / "we see the push" holds.
        slot.announced.store(true, Ordering::SeqCst);
        self.idle.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if pending() > 0 {
            self.exit_idle(slot);
            return ParkResult::FoundWork;
        }

        if policy == WaitPolicy::Adaptive {
            // Grace window: cheap yields with re-checks, so brief gaps
            // between work units never pay a sleep/wake round trip.
            for _ in 0..ADAPTIVE_GRACE_YIELDS {
                crate::sysapi::yield_thread();
                if pending() > 0 {
                    self.exit_idle(slot);
                    return ParkResult::FoundWork;
                }
            }
        }

        if let Some(hb) = heartbeat {
            hb.set_parked(true);
        }
        COUNTERS.parks.inc();
        COUNTERS.workers_parked.rise();
        emit(EventKind::WorkerParked, worker as u64);
        lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Parked);

        // Real build: sleep with the policy's backstop. Model build:
        // sleep without one, so a lost wake is a detected livelock
        // rather than a silently absorbed timeout.
        #[cfg(not(lwt_model))]
        let woken = slot.parker.park_timeout(match policy {
            WaitPolicy::Passive => PASSIVE_BACKSTOP,
            _ => ADAPTIVE_BACKSTOP,
        });
        #[cfg(lwt_model)]
        let woken = {
            slot.parker.park();
            true
        };

        lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Idle);
        COUNTERS.unparks.inc();
        COUNTERS.workers_parked.fall();
        emit(EventKind::WorkerUnparked, worker as u64);
        if let Some(hb) = heartbeat {
            hb.set_parked(false);
        }
        self.exit_idle(slot);

        // Wake propagation: a token plus a backlog means the burst
        // that woke us was wider than one unit — pass the wake on.
        if woken && pending() > 1 {
            self.notify();
        }
        if woken {
            ParkResult::Woken
        } else {
            ParkResult::TimedOut
        }
    }

    /// Leave the idle path: retract the announcement and take over
    /// (clear) any in-flight handoff. The AcqRel swap also pairs with
    /// suppressed notifiers' handoff reads, publishing their pushes
    /// to our caller's next sweep.
    fn exit_idle(&self, slot: &ParkSlot) {
        slot.announced.store(false, Ordering::SeqCst);
        self.idle.fetch_sub(1, Ordering::SeqCst);
        self.handoff.swap(false, Ordering::AcqRel);
    }

    /// Wake-one notification. Call *after* making work visible (the
    /// push must precede this call). One fence + one load when nobody
    /// is idle — cheap enough for every spawn/requeue site.
    pub fn notify(&self) {
        self.notify_near(0);
    }

    /// [`ParkGroup::notify`], preferring to wake `target` (the worker
    /// whose queue just received the work) before scanning outward.
    /// Matters for runtimes whose stealing is scoped (qthreads
    /// shepherds): the nearest eligible sleeper is the one that can
    /// actually reach the unit.
    pub fn notify_near(&self, target: usize) {
        fence(Ordering::SeqCst);
        if self.idle.load(Ordering::SeqCst) == 0 {
            return;
        }
        if self.handoff.swap(true, Ordering::AcqRel) {
            // A wake is already in flight; the woken worker will
            // re-sweep (and propagate) once it exits the idle path.
            return;
        }
        let n = self.slots.len();
        for i in 0..n {
            let slot = &self.slots[(target + i) % n];
            if slot.announced.load(Ordering::SeqCst) {
                // Token, not signal: if the worker is still on its way
                // down to the sleep, the deposit makes that sleep
                // return immediately. Nothing is lost either way.
                slot.parker.unpark();
                return;
            }
        }
        // Every announced worker retracted while we scanned — they
        // found work on their own. Nobody holds the handoff; clear it.
        self.handoff.swap(false, Ordering::AcqRel);
    }

    /// Wake exactly `target` if it is inside the idle path; no-op
    /// otherwise. For single-consumer designs (Converse processor
    /// queues) where only the *owner* can serve newly pushed work —
    /// the scanning wake-one of [`Self::notify`] could spend its one
    /// wake on a worker that cannot help. Call after the push. Does
    /// not touch the handoff flag: the token is for a specific worker,
    /// so there is no herd to suppress, and suppression by an
    /// unrelated in-flight wake would strand this target until its
    /// backstop.
    pub fn notify_worker(&self, target: usize) {
        fence(Ordering::SeqCst);
        if let Some(slot) = self.slots.get(target) {
            if slot.announced.load(Ordering::SeqCst) {
                slot.parker.unpark();
            }
        }
    }

    /// Deposit a wake token for every slot — shutdown/finalize path.
    /// A fully parked pool resumes immediately instead of waiting out
    /// its backstops; workers not currently asleep consume the token
    /// on their next park attempt and re-check the stop flag. Call
    /// *after* storing the stop/abandon flag.
    pub fn unpark_all(&self) {
        fence(Ordering::SeqCst);
        for slot in self.slots.iter() {
            slot.parker.unpark();
        }
    }
}

impl std::fmt::Debug for ParkGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParkGroup")
            .field("capacity", &self.slots.len())
            .field("idle", &self.idle_workers())
            .finish()
    }
}

#[cfg(all(test, not(lwt_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;
    use std::time::Instant;

    // Policy state is process-global; serialize the tests that pin it.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn policy_parses_and_names_round_trip() {
        for p in [WaitPolicy::Active, WaitPolicy::Passive, WaitPolicy::Adaptive] {
            assert_eq!(WaitPolicy::parse(p.name()), Some(p));
            assert_eq!(WaitPolicy::parse(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(WaitPolicy::parse("aggressive"), None);
        assert_eq!(WaitPolicy::parse(""), None);
    }

    #[test]
    fn force_and_reset_drive_current_policy() {
        let _s = serial();
        force_wait_policy(WaitPolicy::Passive);
        assert_eq!(current_wait_policy(), WaitPolicy::Passive);
        force_wait_policy(WaitPolicy::Active);
        assert_eq!(current_wait_policy(), WaitPolicy::Active);
        reset_wait_policy_to_env();
        // Unset env ⇒ adaptive default (the test env never sets it).
        let p = current_wait_policy();
        assert!(
            p == WaitPolicy::Adaptive || std::env::var("LWT_WAIT_POLICY").is_ok(),
            "default policy must be adaptive, got {p:?}"
        );
        reset_wait_policy_to_env();
    }

    #[test]
    fn recheck_aborts_the_park_when_work_is_pending() {
        let _s = serial();
        force_wait_policy(WaitPolicy::Passive);
        let g = ParkGroup::new(1);
        let r = g.park(0, None, || 1);
        assert_eq!(r, ParkResult::FoundWork);
        assert_eq!(g.idle_workers(), 0, "aborted park must retract");
        reset_wait_policy_to_env();
    }

    #[test]
    fn notify_wakes_a_parked_worker_promptly() {
        let _s = serial();
        force_wait_policy(WaitPolicy::Passive);
        let g = Arc::new(ParkGroup::new(1));
        let work = Arc::new(StdAtomicUsize::new(0));
        let (g2, w2) = (Arc::clone(&g), Arc::clone(&work));
        let t = std::thread::spawn(move || {
            let t0 = Instant::now();
            loop {
                if w2.load(std::sync::atomic::Ordering::Acquire) > 0 {
                    return t0.elapsed();
                }
                let _ = g2.park(0, None, || {
                    w2.load(std::sync::atomic::Ordering::Acquire)
                });
            }
        });
        // Let the worker reach its sleep.
        while g.idle_workers() == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        work.store(1, std::sync::atomic::Ordering::Release);
        g.notify();
        let waited = t.join().unwrap();
        // Well under the 200 ms passive backstop ⇒ the notify, not the
        // timeout, did the waking.
        assert!(
            waited < Duration::from_millis(150),
            "wake took {waited:?}; backstop did the work, not notify"
        );
        reset_wait_policy_to_env();
    }

    #[test]
    fn unpark_all_releases_every_sleeper() {
        let _s = serial();
        force_wait_policy(WaitPolicy::Passive);
        const N: usize = 3;
        let g = Arc::new(ParkGroup::new(N));
        let stop = Arc::new(StdAtomicUsize::new(0));
        let threads: Vec<_> = (0..N)
            .map(|w| {
                let (g, stop) = (Arc::clone(&g), Arc::clone(&stop));
                std::thread::spawn(move || loop {
                    if stop.load(std::sync::atomic::Ordering::Acquire) > 0 {
                        break;
                    }
                    let _ = g.park(w, None, || 0);
                })
            })
            .collect();
        while g.idle_workers() < N {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        stop.store(1, std::sync::atomic::Ordering::Release);
        g.unpark_all();
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "shutdown waited out a backstop: {:?}",
            t0.elapsed()
        );
        reset_wait_policy_to_env();
    }

    #[test]
    fn active_policy_never_sleeps() {
        let _s = serial();
        force_wait_policy(WaitPolicy::Active);
        let g = ParkGroup::new(1);
        let t0 = Instant::now();
        assert_eq!(g.park(0, None, || 0), ParkResult::Spun);
        assert!(t0.elapsed() < Duration::from_millis(15));
        assert_eq!(g.idle_workers(), 0);
        reset_wait_policy_to_env();
    }

    #[test]
    fn out_of_range_worker_degrades_to_nap() {
        let _s = serial();
        force_wait_policy(WaitPolicy::Passive);
        let g = ParkGroup::new(2);
        assert_eq!(g.park(7, None, || 0), ParkResult::Spun);
        reset_wait_policy_to_env();
    }

    #[test]
    fn spurious_unpark_wakes_empty_handed_without_waiting_the_backstop() {
        let _s = serial();
        force_wait_policy(WaitPolicy::Passive);
        // Rate 100: every park attempt deposits a tokenized spurious
        // wake — the chaos site that exercises the empty-handed wake
        // path every real wake must also survive.
        lwt_chaos::force_chaos(0xDEAD_BEEF, 100);
        let g = ParkGroup::new(1);
        let t0 = Instant::now();
        let r = g.park(0, None, || 0);
        lwt_chaos::reset_to_env();
        assert_eq!(r, ParkResult::Woken, "spurious token must wake, not time out");
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "spurious wake waited out the backstop: {:?}",
            t0.elapsed()
        );
        assert_eq!(g.idle_workers(), 0, "empty-handed wake must retract");
        reset_wait_policy_to_env();
    }
}
