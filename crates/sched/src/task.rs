//! Future-task state machine: the no-lost-wake core of the async
//! bridge.
//!
//! A stackless future task is a heap cell that bounces between a ready
//! queue and a worker's poll loop. Unlike a ULT — which parks *inside*
//! its own stack and is resumed exactly once by exactly one waker — a
//! future's waker is a free-floating handle that any thread may fire
//! any number of times, including *while the task is being polled*.
//! The state machine here serializes those races so that
//!
//! 1. a task is never enqueued twice concurrently (one queue entry at
//!    a time, so `Future::poll`'s `&mut` exclusivity holds), and
//! 2. a wake is never lost: if a waker fires during a poll that then
//!    returns `Pending`, the task is re-enqueued by the *runner*
//!    (the coalesce path), so progress is preserved without the waker
//!    needing to see the poll's outcome.
//!
//! The atomics route through [`crate::sysapi`], so the exact same
//! transition code runs under the `lwt-model` checker
//! (`crates/model/tests/waker.rs`) that pins property 2 against
//! adversarial interleavings.

use crate::sysapi::AtomicUsize;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

/// Task is parked: not queued, not running. A wake must enqueue it.
const IDLE: usize = 0;
/// Task sits in a ready queue awaiting dispatch. Wakes coalesce.
const SCHEDULED: usize = 1;
/// A worker is inside `poll`. Wakes set [`NOTIFIED`] instead of
/// enqueueing, because the cell's future is exclusively borrowed.
const RUNNING: usize = 2;
/// A wake landed mid-poll. The runner, on seeing this when its poll
/// returns `Pending`, re-enqueues the task itself.
const NOTIFIED: usize = 3;
/// `poll` returned `Ready`. Terminal: wakes are no-ops forever.
const COMPLETE: usize = 4;

/// What the caller of [`TaskState::on_wake`] must do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeAction {
    /// The wake won the idle→scheduled race: push the task onto a
    /// ready queue now. Exactly one concurrent waker gets this.
    Schedule,
    /// The task was mid-poll; the wake was recorded and the *runner*
    /// will requeue. Count it, emit a trace event, but do not push.
    Coalesced,
    /// The task already sits in a queue (or a prior mid-poll wake is
    /// pending). Nothing to do.
    AlreadyQueued,
    /// The task finished. Wakes on completed tasks are no-ops.
    Complete,
}

/// The five-state lifecycle of one future task, shared between its
/// wakers (any thread) and its runner (one worker at a time).
///
/// State is a single [`AtomicUsize`] because [`crate::sysapi`] — the
/// facade that lets this code run unmodified inside the model checker
/// — exposes only the word-sized atomic.
#[derive(Debug)]
pub struct TaskState {
    state: AtomicUsize,
}

impl Default for TaskState {
    fn default() -> Self {
        TaskState::new()
    }
}

impl TaskState {
    /// A fresh task, born `SCHEDULED`: `spawn_async` enqueues the cell
    /// immediately, so the initial push *is* the first schedule and no
    /// waker exists yet to race with.
    #[must_use]
    pub fn new() -> Self {
        TaskState {
            state: AtomicUsize::new(SCHEDULED),
        }
    }

    /// A waker fired. Resolves the wake against the current state and
    /// tells the caller what to do ([`WakeAction`]).
    ///
    /// The CAS loop is the crux: `IDLE → SCHEDULED` hands exactly one
    /// winner the enqueue obligation; `RUNNING → NOTIFIED` records a
    /// mid-poll wake for the runner to honor. `AcqRel` on success makes
    /// everything the waker observed before calling `wake` visible to
    /// the worker that later dispatches the task.
    pub fn on_wake(&self) -> WakeAction {
        let mut cur = self.state.load(Acquire);
        loop {
            let (next, action) = match cur {
                IDLE => (SCHEDULED, WakeAction::Schedule),
                RUNNING => (NOTIFIED, WakeAction::Coalesced),
                SCHEDULED | NOTIFIED => return WakeAction::AlreadyQueued,
                _ => return WakeAction::Complete,
            };
            match self.state.compare_exchange(cur, next, AcqRel, Acquire) {
                Ok(_) => return action,
                Err(observed) => cur = observed,
            }
        }
    }

    /// A worker dequeued the task and is about to poll. Claims the
    /// `SCHEDULED → RUNNING` edge; returns `false` if the claim fails
    /// (the cell was completed or is already running — a stale queue
    /// entry from a chaos double-enqueue), in which case the worker
    /// must drop the entry without polling.
    #[must_use]
    pub fn begin_poll(&self) -> bool {
        self.state
            .compare_exchange(SCHEDULED, RUNNING, Acquire, Relaxed)
            .is_ok()
    }

    /// The poll returned `Pending`. Tries `RUNNING → IDLE`; if a wake
    /// coalesced mid-poll (`NOTIFIED` observed instead), transitions to
    /// `SCHEDULED` and returns `true` — the caller **must** re-enqueue
    /// the task, or that wake is lost.
    ///
    /// `Release` on the idle store publishes the future's post-poll
    /// state to the next waker; `Release` on the scheduled store does
    /// the same for the next dispatcher.
    #[must_use]
    pub fn finish_pending(&self) -> bool {
        match self.state.compare_exchange(RUNNING, IDLE, Release, Acquire) {
            Ok(_) => false,
            Err(_) => {
                // Only a waker writes NOTIFIED, and only over RUNNING,
                // which we exclusively own between begin_poll and here.
                self.state.store(SCHEDULED, Release);
                true
            }
        }
    }

    /// The poll returned `Ready`. Terminal; any concurrently-recorded
    /// `NOTIFIED` is deliberately discarded — there is nothing left to
    /// poll.
    pub fn complete(&self) {
        self.state.store(COMPLETE, Release);
    }

    /// Whether the task has reached its terminal state.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.state.load(Acquire) == COMPLETE
    }
}

#[cfg(all(test, not(lwt_model)))]
mod tests {
    use super::*;

    #[test]
    fn spawn_then_poll_then_complete() {
        let s = TaskState::new();
        // Born scheduled: a wake before the first poll coalesces.
        assert_eq!(s.on_wake(), WakeAction::AlreadyQueued);
        assert!(s.begin_poll());
        s.complete();
        assert!(s.is_complete());
        assert_eq!(s.on_wake(), WakeAction::Complete);
    }

    #[test]
    fn pending_then_wake_schedules_exactly_once() {
        let s = TaskState::new();
        assert!(s.begin_poll());
        assert!(!s.finish_pending()); // clean park: no requeue
        assert_eq!(s.on_wake(), WakeAction::Schedule);
        assert_eq!(s.on_wake(), WakeAction::AlreadyQueued);
    }

    #[test]
    fn wake_during_poll_makes_runner_requeue() {
        let s = TaskState::new();
        assert!(s.begin_poll());
        assert_eq!(s.on_wake(), WakeAction::Coalesced);
        assert_eq!(s.on_wake(), WakeAction::AlreadyQueued);
        assert!(s.finish_pending()); // runner owns the requeue
        assert!(s.begin_poll());
    }

    #[test]
    fn stale_queue_entry_fails_claim() {
        let s = TaskState::new();
        assert!(s.begin_poll());
        // A second dispatcher holding a stale entry must not poll.
        assert!(!s.begin_poll());
        s.complete();
        assert!(!s.begin_poll());
    }
}
