//! The Chase–Lev lock-free work-stealing deque.
//!
//! Models Intel OpenMP's task machinery: "the `icc` [implementation]
//! allows each thread to allocate a private task queue where tasks are
//! stored … it implements a work-stealing mechanism that is triggered
//! once a thread's task queue is empty" (paper §VII-B). The owner pushes
//! and pops at the *bottom* without synchronization in the common case;
//! thieves compete for the *top* with a compare-and-swap.
//!
//! The implementation follows Chase & Lev (SPAA'05) with the memory
//! orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13, "Correct and
//! Efficient Work-Stealing for Weak Memory Models"). `top` is a
//! monotonically increasing index, so the CAS is ABA-free. Buffer
//! growth retires the old buffer into a list freed when the deque
//! drops — in-flight thieves may still read (bitwise copies of)
//! elements from retired buffers, which is sound because a thief only
//! *keeps* its copy if its CAS on `top` succeeds, and at most one CAS
//! per index ever succeeds.

use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use lwt_sync::SpinLock;

use crate::sysapi::{fence, AtomicIsize, AtomicPtr, UnsafeCell};

/// Result of a [`Stealer::steal_once`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque appeared empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Successfully stole a unit.
    Success(T),
}

struct Buffer<T> {
    /// Power-of-two capacity.
    cap: usize,
    storage: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let storage = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::into_raw(Box::new(Buffer { cap, storage }))
    }

    /// Raw slot pointer for logical index `i` (wrapping).
    fn slot(&self, i: isize) -> *mut MaybeUninit<T> {
        self.storage[(i as usize) & (self.cap - 1)].get()
    }

    /// # Safety
    /// Slot `i` must hold an initialized value not concurrently written.
    unsafe fn read(&self, i: isize) -> T {
        // SAFETY: forwarded.
        unsafe { (*self.slot(i)).assume_init_read() }
    }

    /// # Safety
    /// Slot `i` must not be concurrently accessed.
    unsafe fn write(&self, i: isize, value: T) {
        // SAFETY: forwarded.
        unsafe { (*self.slot(i)).write(value) };
    }
}

struct Inner<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth; freed when the deque drops. Growth
    /// doubles capacity, so total retired memory is bounded by the
    /// final buffer's size.
    retired: SpinLock<Vec<*mut Buffer<T>>>,
}

// SAFETY: the algorithm synchronizes all cross-thread element handoff
// through top/bottom orderings and the steal CAS.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: see above.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let top = *self.top.get_mut();
        let bottom = *self.bottom.get_mut();
        let buf = *self.buffer.get_mut();
        // SAFETY: exclusive access (&mut self); indices top..bottom hold
        // initialized, un-stolen elements in the current buffer.
        unsafe {
            for i in top..bottom {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for r in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(r));
            }
        }
    }
}

/// Construct an empty Chase–Lev deque, returning the owner and one
/// thief handle (clone the [`Stealer`] for more thieves).
///
/// ```
/// use lwt_sched::{ChaseLev, Steal};
/// let (worker, stealer) = ChaseLev::new();
/// worker.push(10);
/// worker.push(20);
/// assert_eq!(worker.pop(), Some(20));          // owner: LIFO
/// assert_eq!(stealer.steal(), Some(10));       // thief: FIFO
/// assert_eq!(stealer.steal_once(), Steal::Empty);
/// ```
pub struct ChaseLev;

impl ChaseLev {
    /// Create an empty deque with the default initial capacity (64).
    #[must_use]
    #[allow(clippy::new_ret_no_self)]
    pub fn new<T: Send>() -> (Worker<T>, Stealer<T>) {
        Self::with_capacity(64)
    }

    /// Create an empty deque with a specific initial capacity (rounded
    /// up to a power of two, minimum 2).
    #[must_use]
    pub fn with_capacity<T: Send>(cap: usize) -> (Worker<T>, Stealer<T>) {
        let cap = cap.max(2).next_power_of_two();
        let inner = Arc::new(Inner {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::<T>::alloc(cap)),
            retired: SpinLock::new(Vec::new()),
        });
        (
            Worker {
                inner: inner.clone(),
            },
            Stealer { inner },
        )
    }
}

/// Owner handle: push/pop at the bottom. `Send` but not `Sync`/`Clone` —
/// exactly one owner exists.
pub struct Worker<T: Send> {
    inner: Arc<Inner<T>>,
}

impl<T: Send> Worker<T> {
    /// Push a unit onto the owner's end.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: only the owner mutates `buffer`, and `buf` points at a
        // live buffer.
        if b - t >= unsafe { (*buf).cap } as isize {
            buf = self.grow(t, b, buf);
        }
        // SAFETY: slot `b` is outside top..bottom, so no thief reads it.
        unsafe { (*buf).write(b, value) };
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop the most recently pushed unit (LIFO).
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Single element: race a pretend-steal for it.
                let claimed = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if claimed {
                    // SAFETY: the successful CAS on `top` grants
                    // exclusive ownership of index b == t.
                    Some(unsafe { (*buf).read(b) })
                } else {
                    None
                }
            } else {
                // SAFETY: b < old bottom and thieves only take t < b.
                Some(unsafe { (*buf).read(b) })
            }
        } else {
            // Deque was empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// **Seeded bug, model builds only.** [`Worker::pop`] with the
    /// `SeqCst` fence between the `bottom` store and the `top` load
    /// deleted. Without the fence the owner's `top` read may miss a
    /// thief's completed CAS, so for `top < bottom - 1` the owner
    /// returns an element a thief already took — duplicate delivery.
    /// Exists so `crates/model/tests/chase_lev.rs` can demonstrate the
    /// checker catching the classic Chase–Lev ordering bug with a
    /// replayable trace; never compiled into real builds.
    #[cfg(lwt_model)]
    pub fn pop_seeded_missing_fence(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // BUG (seeded): no fence(Ordering::SeqCst) here.
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                let claimed = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if claimed {
                    // SAFETY: as in `pop` — the CAS grants index b == t.
                    Some(unsafe { (*buf).read(b) })
                } else {
                    None
                }
            } else {
                // SAFETY: *unsound* when `t` is stale — that is the bug.
                Some(unsafe { (*buf).read(b) })
            }
        } else {
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Number of units currently queued (racy; diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        usize::try_from((b - t).max(0)).unwrap_or(0)
    }

    /// Whether the deque appears empty (racy; diagnostics only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Create another thief handle.
    #[must_use]
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.clone(),
        }
    }

    /// Double the buffer, copying live indices `t..b`; retire the old
    /// buffer (in-flight thieves may still read from it).
    #[cold]
    fn grow(&self, t: isize, b: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let inner = &*self.inner;
        // SAFETY: old points at the live buffer; only the owner grows.
        let new = unsafe {
            let new = Buffer::<T>::alloc((*old).cap * 2);
            for i in t..b {
                // Bitwise move of each live element; the old copies stay
                // behind for racing thieves but are never *kept* by them
                // unless their CAS wins, which also prevents the owner
                // from reading the same index — index ownership, not
                // buffer identity, is what guards duplication.
                (*new).write(i, (*old).read(i));
            }
            new
        };
        inner.buffer.store(new, Ordering::Release);
        inner.retired.lock().push(old);
        new
    }
}

impl<T: Send> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("chase_lev::Worker")
            .field("len", &self.len())
            .finish()
    }
}

/// Thief handle: steal from the top. Cloneable and shareable.
pub struct Stealer<T: Send> {
    inner: Arc<Inner<T>>,
}

impl<T: Send> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send> Stealer<T> {
    /// One steal attempt.
    pub fn steal_once(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = inner.buffer.load(Ordering::Acquire);
        // Speculatively copy the element *before* claiming it — the
        // classic Chase–Lev order. If the CAS below fails, the copy is
        // abandoned without dropping (it may be garbage by then).
        // SAFETY: `buf` is live (buffers are only freed when the deque
        // drops) and slot reads of racing data are discarded on CAS
        // failure via ManuallyDrop.
        let value = std::mem::ManuallyDrop::new(unsafe { (*buf).read(t) });
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(std::mem::ManuallyDrop::into_inner(value))
        } else {
            // Lost the race: forget the speculative copy.
            Steal::Retry
        }
    }

    /// Steal, retrying through [`Steal::Retry`] until success or empty.
    pub fn steal(&self) -> Option<T> {
        loop {
            match self.steal_once() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => crate::sysapi::spin_hint(),
            }
        }
    }

    /// Racy emptiness check (diagnostics only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        t >= b
    }
}

impl<T: Send> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("chase_lev::Stealer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_lifo_thief_fifo() {
        let (w, s) = ChaseLev::new();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Some(0));
        assert_eq!(s.steal(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), None);
    }

    #[test]
    fn growth_preserves_elements() {
        let (w, s) = ChaseLev::with_capacity(2);
        for i in 0..1000 {
            w.push(i);
        }
        assert_eq!(w.len(), 1000);
        let mut got = Vec::new();
        while let Some(v) = s.steal() {
            got.push(v);
        }
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_behaves_like_a_stack() {
        let (w, _s) = ChaseLev::new();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
        // Emptied deque keeps working.
        w.push(4);
        assert_eq!(w.pop(), Some(4));
    }

    #[test]
    fn drop_releases_unconsumed_elements() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (w, s) = ChaseLev::with_capacity(2);
            for _ in 0..10 {
                w.push(D);
            }
            drop(s.steal()); // one consumed
            drop(w.pop()); // one consumed
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn stress_owner_vs_thieves_exact_multiset() {
        const ITEMS: usize = 50_000;
        const THIEVES: usize = 3;
        let (w, s) = ChaseLev::with_capacity(4);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = s.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal_once() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut owner_got = Vec::new();
        for i in 0..ITEMS {
            w.push(i);
            // Interleave pops so the owner also contends.
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            owner_got.push(v);
        }
        done.store(true, Ordering::Release);
        let mut all = owner_got;
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ITEMS, "lost or duplicated work units");
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }
}
