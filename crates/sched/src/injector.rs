//! Lock-free MPSC injector queue for cross-worker work submission.
//!
//! The structure is Vyukov's intrusive MPSC queue, the design behind
//! the "inbox" queues of production schedulers (Go's runqueue
//! injector, Tokio, Argobots' `ABT_POOL_ACCESS_MPSC` pools): producers
//! on any thread link a heap node after the current tail with one
//! `swap` + one `store` (wait-free — a producer never loops), while
//! the single consumer chases `next` pointers from the head stub.
//!
//! The price of the wait-free push is a transient *inconsistent*
//! window: after a producer has swapped the tail but before it links
//! `prev.next`, the consumer can observe a non-empty queue whose chain
//! ends early. [`Injector::pop`] returns `None` for that window and
//! counts it as `queue_contention` — callers treat it like any other
//! empty poll and re-poll, which is exactly what scheduler loops do
//! anyway.
//!
//! FIFO: items come out in push order (per producer, and globally up
//! to the atomicity of the tail swap), which is what Converse's
//! message queues require.
//!
//! `pop` is safe to call from any thread — a lock-free claim flag
//! rejects (never blocks) concurrent consumers, so misuse degrades to
//! a missed poll instead of undefined behaviour.
//!
//! Nodes are recycled through an opportunistic spare pool rather than
//! round-tripping the allocator on every push/pop: the consumer parks
//! retired stubs in a bounded `try_lock` pool and producers draw from
//! it. A contended `try_lock` simply falls back to `Box::new`/`drop`,
//! so no path ever blocks — steady-state spawn loops run
//! allocation-free while the queue keeps its progress guarantees.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::Ordering;

use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;
use lwt_sync::SpinLock;

use crate::sysapi::{AtomicBool, AtomicPtr, AtomicUsize};

/// Upper bound on parked spare nodes per queue; beyond this, retired
/// nodes go back to the allocator.
const SPARE_CAP: usize = 256;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    /// `None` only for the stub node (and a consumed node that became
    /// the new stub).
    value: Option<T>,
}

impl<T> Node<T> {
    fn boxed(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value,
        }))
    }
}

/// Multi-producer single-consumer lock-free queue. See module docs.
pub struct Injector<T> {
    /// Consumer end: the current stub; its `next` chain holds the
    /// queued values in FIFO order.
    head: AtomicPtr<Node<T>>,
    /// Producer end: the most recently pushed node.
    tail: AtomicPtr<Node<T>>,
    /// Approximate occupancy (relaxed; diagnostics and idle checks).
    len: AtomicUsize,
    /// Lock-free single-consumer claim: `pop` is a no-op for any
    /// thread that loses this try-claim.
    popping: AtomicBool,
    /// Retired stub nodes awaiting reuse (value already taken, so they
    /// hold no `T`). Accessed only via `try_lock`; a miss falls back to
    /// the allocator.
    spares: SpinLock<Vec<*mut Node<T>>>,
    _owns: PhantomData<T>,
}

// SAFETY: values of T are moved through the queue, never shared
// between threads while inside it; nodes are only freed by the single
// consumer or by `Drop` (exclusive access). Spare nodes carry no `T`
// (their value was taken before retirement) and are handed between
// threads only under the `spares` lock.
unsafe impl<T: Send> Send for Injector<T> {}
// SAFETY: as above — `&Injector` only hands out `T` by value.
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// New empty queue (allocates the stub node).
    #[must_use]
    pub fn new() -> Self {
        let stub = Node::boxed(None);
        Injector {
            head: AtomicPtr::new(stub),
            tail: AtomicPtr::new(stub),
            len: AtomicUsize::new(0),
            popping: AtomicBool::new(false),
            spares: SpinLock::new(Vec::new()),
            _owns: PhantomData,
        }
    }

    /// Get a node carrying `value`: reuse a parked spare when the pool
    /// lock is free, otherwise allocate.
    fn node_for(&self, value: T) -> *mut Node<T> {
        if let Some(node) = self.spares.try_lock().and_then(|mut pool| pool.pop()) {
            // SAFETY: spares hold live, retired nodes this queue owns;
            // nobody else references them once parked. Publication to
            // other threads happens via the Release in push.
            unsafe {
                (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
                (*node).value = Some(value);
            }
            node
        } else {
            Node::boxed(Some(value))
        }
    }

    /// Retire a consumed node: park it for reuse, or free it when the
    /// pool is full or its lock is contended.
    fn retire(&self, node: *mut Node<T>) {
        if let Some(mut pool) = self.spares.try_lock() {
            if pool.len() < SPARE_CAP {
                pool.push(node);
                return;
            }
        }
        // SAFETY: node came off the consumed end of the chain; it is a
        // live Box nothing else references (value already taken).
        unsafe { drop(Box::from_raw(node)) };
    }

    /// Enqueue `value`. Wait-free; callable from any thread.
    pub fn push(&self, value: T) {
        let node = self.node_for(value);
        self.len.fetch_add(1, Ordering::Relaxed);
        // AcqRel: acquire the previous producer's node writes, release
        // our own node initialization to whoever links after us.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        // The queue is "inconsistent" (chain broken at prev) until
        // this store; pop handles that window.
        // SAFETY: prev came out of tail, so it is a live node — only
        // the consumer frees nodes, and it never frees the node that
        // tail still reaches.
        unsafe { (*prev).next.store(node, Ordering::Release) };
    }

    /// Dequeue the oldest value, or `None` when the queue is empty,
    /// mid-push, or another thread is already popping (both counted
    /// as `queue_contention`).
    ///
    /// Bounded by construction: there is no retry loop here — a
    /// mid-push window or a lost `popping` race returns `None`
    /// immediately and the caller falls through to its next source
    /// (and ultimately the idle/park path). Idle workers can never
    /// spin inside the injector.
    pub fn pop(&self) -> Option<T> {
        if self
            .popping
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.note_contention();
            return None;
        }
        let value = self.pop_claimed();
        self.popping.store(false, Ordering::Release);
        value
    }

    /// Core single-consumer pop; caller holds the `popping` claim.
    fn pop_claimed(&self) -> Option<T> {
        // Only the claim holder touches head, so Relaxed is enough.
        let head = self.head.load(Ordering::Relaxed);
        // SAFETY: head is a live node (frees only happen below, after
        // head has been moved past it).
        let next = unsafe { (*head).next.load(Ordering::Acquire) };
        if next.is_null() {
            if self.tail.load(Ordering::Acquire) != head {
                // A producer swapped tail but hasn't linked yet.
                self.note_contention();
            }
            return None;
        }
        // SAFETY: next is fully initialized (Acquire above pairs with
        // the producer's Release store) and holds a value: every node
        // but the original stub is pushed with `Some`.
        let value = unsafe { (*next).value.take() };
        debug_assert!(value.is_some(), "non-stub node must carry a value");
        self.head.store(next, Ordering::Relaxed);
        // The old stub is now unreachable from head and tail (tail is
        // at or past `next`, and the one producer whose swap returned
        // it has finished linking), so it can be recycled.
        self.retire(head);
        self.len.fetch_sub(1, Ordering::Relaxed);
        value
    }

    fn note_contention(&self) {
        COUNTERS.queue_contention.inc();
        emit(EventKind::QueueContention, 0);
    }

    /// Approximate number of queued values (relaxed read; exact only
    /// in quiescence).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue looks empty (same caveat as [`Self::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the chain, dropping values and nodes
        // (the first node is the stub, value = None).
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: every node in the chain is a live Box we own.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next.load(Ordering::Relaxed);
        }
        for spare in self.spares.get_mut().drain(..) {
            // SAFETY: parked spares are live Boxes we own, disjoint
            // from the chain (they were unlinked before retirement).
            unsafe { drop(Box::from_raw(spare)) };
        }
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_producer() {
        let q = Injector::new();
        for i in 0..100 {
            q.push(i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_occupancy_in_quiescence() {
        let q = Injector::new();
        assert_eq!(q.len(), 0);
        q.push("a");
        q.push("b");
        assert_eq!(q.len(), 2);
        let _ = q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn multi_producer_delivers_everything() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 5_000;
        let q = Arc::new(Injector::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push((p as u64) << 32 | i);
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        let mut last_seen = [None::<u64>; PRODUCERS];
        while got.len() < PRODUCERS * PER as usize {
            if let Some(v) = q.pop() {
                let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
                // Per-producer FIFO must hold even across interleaving.
                assert!(last_seen[p].is_none_or(|prev| i == prev + 1));
                last_seen[p] = Some(i);
                got.push(v);
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop(), None);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), PRODUCERS * PER as usize, "no loss, no dupes");
    }

    #[test]
    fn steady_state_recycles_nodes_instead_of_allocating() {
        let q = Injector::new();
        // A ping-pong workload cycles between the stub and one pushed
        // node; recycling means no third node is ever minted.
        let mut nodes = std::collections::HashSet::new();
        for i in 0..100u64 {
            q.push(i);
            nodes.insert(q.tail.load(Ordering::Relaxed) as usize);
            assert_eq!(q.pop(), Some(i));
        }
        assert!(
            nodes.len() <= 2,
            "ping-pong touched {} distinct nodes; recycling is broken",
            nodes.len()
        );
    }

    #[test]
    fn spare_pool_stays_bounded() {
        let q = Injector::new();
        for i in 0..(SPARE_CAP as u64 * 4) {
            q.push(i);
        }
        while q.pop().is_some() {}
        assert!(q.spares.lock().len() <= SPARE_CAP);
    }

    #[test]
    fn push_pop_progress_while_spare_pool_lock_is_held() {
        // Regression for the never-blocks contract: node_for/retire use
        // try_lock on the spare pool, so a contended pool must degrade
        // to the allocator, not spin. With lock() instead of try_lock()
        // this test would hang.
        let q = Injector::new();
        q.push(1u32);
        assert_eq!(q.pop(), Some(1)); // parks one retired node
        let pool = q.spares.lock(); // contend the pool from this thread
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        drop(pool);
        // Pool untouched while contended: still exactly one spare.
        assert_eq!(q.spares.lock().len(), 1);
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        let marker = Arc::new(());
        {
            let q = Injector::new();
            for _ in 0..10 {
                q.push(Arc::clone(&marker));
            }
            let _ = q.pop();
        }
        assert_eq!(Arc::strong_count(&marker), 1, "queued Arcs must drop");
    }

    #[test]
    fn concurrent_pop_claim_rejects_instead_of_corrupting() {
        let q = Arc::new(Injector::new());
        for i in 0..20_000u64 {
            q.push(i);
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut prev = None::<u64>;
                    loop {
                        match q.pop() {
                            Some(v) => {
                                // Whoever holds the claim sees FIFO.
                                assert!(prev.is_none_or(|p| v > p));
                                prev = Some(v);
                                got.push(v);
                            }
                            None if q.is_empty() => break,
                            None => std::hint::spin_loop(),
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 20_000, "every value popped exactly once");
    }
}
