//! Lock-protected stealable deque (MassiveThreads ready queues).

use std::collections::VecDeque;

use lwt_sync::SpinLock;

/// A per-worker deque whose owner works depth-first (LIFO at the front)
/// while thieves steal breadth-first (FIFO from the back).
///
/// MassiveThreads protects its per-worker ready queues with a mutex so
/// idle workers can steal — the paper: "this mechanism requires mutex
/// protection in order to access the queue". The lock cost on *every*
/// owner operation (not just steals) is part of what the paper's
/// for-loop benchmark observes for MassiveThreads.
pub struct StealableDeque<T> {
    inner: SpinLock<VecDeque<T>>,
}

impl<T> StealableDeque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Self {
        StealableDeque {
            inner: SpinLock::new(VecDeque::new()),
        }
    }

    /// Owner: push to the front (newest-first; depth-first execution).
    pub fn push(&self, value: T) {
        self.inner.lock().push_front(value);
    }

    /// Owner: push to the back (oldest-first; help-first creation keeps
    /// arrival order).
    pub fn push_back(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Owner: pop the most recently pushed unit.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Thief: steal the *oldest* unit from the opposite end.
    ///
    /// Stealing the oldest unit is the standard work-stealing heuristic
    /// (oldest units tend to represent the largest remaining subtrees in
    /// recursive workloads — MassiveThreads' target domain).
    pub fn steal(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// Current length (racy; diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the deque is empty (racy; diagnostics only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> Default for StealableDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for StealableDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealableDeque")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = StealableDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3)); // owner: newest
        assert_eq!(d.steal(), Some(1)); // thief: oldest
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn push_back_preserves_arrival_order_for_owner_pops() {
        let d = StealableDeque::new();
        d.push_back(1);
        d.push_back(2);
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), Some(2));
    }

    #[test]
    fn concurrent_steals_partition_the_work() {
        const ITEMS: usize = 20_000;
        let d = Arc::new(StealableDeque::new());
        for i in 0..ITEMS {
            d.push(i);
        }
        let thieves: Vec<_> = (0..4)
            .map(|_| {
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = d.steal() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = thieves
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }
}
