//! Dispatch helpers: round-robin target selection and random victim
//! selection for work stealing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Cyclic dispatcher over `n` targets.
///
/// The paper's microbenchmarks repeatedly use a "round-robin dispatch"
/// from the master thread: Converse message sends, `qthread_fork_to`,
/// and Argobots private-pool creation all distribute work units
/// cyclically over the workers. Shared-state and thread-safe so several
/// producers can interleave.
///
/// ```
/// use lwt_sched::RoundRobin;
/// let rr = RoundRobin::new(3);
/// assert_eq!([rr.next(), rr.next(), rr.next(), rr.next()], [0, 1, 2, 0]);
/// ```
#[derive(Debug)]
pub struct RoundRobin {
    n: usize,
    cursor: AtomicUsize,
}

impl RoundRobin {
    /// A dispatcher cycling through `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "round-robin over zero targets");
        RoundRobin {
            n,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Next target index.
    #[inline]
    pub fn next(&self) -> usize {
        self.cursor.fetch_add(1, Ordering::Relaxed) % self.n
    }

    /// Number of targets.
    #[must_use]
    pub fn targets(&self) -> usize {
        self.n
    }
}

/// Uniform random victim selection excluding the caller — the policy of
/// MassiveThreads' work stealing ("a random Work-Stealing mechanism that
/// allows an idle Worker to … steal a ULT").
///
/// Draws from the workspace PRNG (`lwt_sync::rng`, re-exported as
/// `lwt_core::rng`): one `xoshiro256**` per instance, no locks, no
/// global state, reproducible when seeded.
#[derive(Debug)]
pub struct RandomVictim {
    state: std::cell::Cell<lwt_sync::rng::Xoshiro256StarStar>,
    n: usize,
}

impl RandomVictim {
    /// A selector over `n` workers, seeded per-worker. Every seed is
    /// valid: state expansion goes through `SplitMix64`, which never
    /// yields the degenerate all-zero state.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "victim selection over zero workers");
        RandomVictim {
            state: std::cell::Cell::new(
                lwt_sync::rng::Xoshiro256StarStar::seed_from_u64(seed),
            ),
            n,
        }
    }

    /// Pick a victim uniformly from `0..n`, excluding `me` when `n > 1`.
    ///
    /// With a single worker there is nobody to steal from and `me` is
    /// returned (callers treat self-steal as a failed attempt).
    /// Chaos decision point: `StealMisdirect` returns `me` even with
    /// other workers available, sending the thief to probe itself —
    /// callers already treat self-steal as a failed attempt, so a
    /// misdirected round costs one wasted probe, never correctness.
    pub fn pick(&self, me: usize) -> usize {
        use lwt_sync::rng::Rng;
        if self.n == 1 {
            return me;
        }
        if lwt_chaos::should_inject(lwt_chaos::FaultSite::StealMisdirect) {
            return me;
        }
        let mut rng = self.state.get();
        // Unbiased draw from n-1 slots, skipping over `me`.
        let v = rng.gen_u64_below(self.n as u64 - 1) as usize;
        self.state.set(rng);
        if v >= me {
            v + 1
        } else {
            v
        }
    }
}

/// Victim order for a *bounded* pre-park sweep: every other worker
/// exactly once, nearest index-distance first (`me+1, me-1, me+2,
/// me-2, …`, wrapping).
///
/// Worker index distance is this workspace's topology proxy — worker
/// OS threads are created in index order, so adjacent indices tend to
/// land on adjacent cores and share cache. Before a worker parks it
/// must prove the whole pool dry; sweeping near victims first makes
/// the common hit cheap and the full sweep deterministic (unlike
/// [`RandomVictim`], which can re-probe one victim while missing
/// another — fine for throughput stealing, wrong for an emptiness
/// proof).
///
/// ```
/// use lwt_sched::near_first;
/// let order: Vec<usize> = near_first(1, 4).collect();
/// assert_eq!(order, vec![2, 0, 3]);
/// assert_eq!(near_first(0, 1).count(), 0);
/// ```
pub fn near_first(me: usize, n: usize) -> impl Iterator<Item = usize> {
    debug_assert!(n == 0 || me < n, "worker {me} outside pool of {n}");
    (1..n).map(move |d| {
        let hop = d.div_ceil(2);
        if d % 2 == 1 {
            (me + hop) % n
        } else {
            (me + n - hop) % n
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobin::new(4);
        let seq: Vec<_> = (0..8).map(|_| rr.next()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(rr.targets(), 4);
    }

    #[test]
    #[should_panic(expected = "zero targets")]
    fn round_robin_zero_rejected() {
        let _ = RoundRobin::new(0);
    }

    #[test]
    fn round_robin_is_fair_under_concurrency() {
        const THREADS: usize = 4;
        const PER: usize = 1_000;
        let rr = Arc::new(RoundRobin::new(5));
        let counts: Vec<_> = (0..THREADS)
            .map(|_| {
                let rr = rr.clone();
                std::thread::spawn(move || {
                    let mut c = [0usize; 5];
                    for _ in 0..PER {
                        c[rr.next()] += 1;
                    }
                    c
                })
            })
            .collect();
        let mut total = [0usize; 5];
        for t in counts {
            for (tot, c) in total.iter_mut().zip(t.join().unwrap()) {
                *tot += c;
            }
        }
        let sum: usize = total.iter().sum();
        assert_eq!(sum, THREADS * PER);
        // Perfect fairness over the *total* because fetch_add is atomic.
        for c in total {
            assert_eq!(c, THREADS * PER / 5);
        }
    }

    #[test]
    fn victim_never_picks_self_when_possible() {
        let v = RandomVictim::new(8, 0xDECAF);
        for _ in 0..10_000 {
            assert_ne!(v.pick(3), 3);
        }
    }

    #[test]
    fn victim_single_worker_returns_self() {
        let v = RandomVictim::new(1, 7);
        assert_eq!(v.pick(0), 0);
    }

    #[test]
    fn victim_covers_all_other_workers() {
        let v = RandomVictim::new(4, 42);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[v.pick(0)] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn victim_picks_are_deterministic_under_fixed_seed() {
        let a = RandomVictim::new(6, 0xFEED);
        let b = RandomVictim::new(6, 0xFEED);
        let sa: Vec<_> = (0..256).map(|_| a.pick(1)).collect();
        let sb: Vec<_> = (0..256).map(|_| b.pick(1)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn near_first_visits_everyone_once_nearest_first() {
        for n in 1..=9usize {
            for me in 0..n {
                let order: Vec<_> = near_first(me, n).collect();
                assert_eq!(order.len(), n - 1, "n={n} me={me}");
                let mut seen = vec![false; n];
                let mut last_dist = 0usize;
                for v in order {
                    assert_ne!(v, me, "self-probe in sweep, n={n} me={me}");
                    assert!(!seen[v], "duplicate victim {v}, n={n} me={me}");
                    seen[v] = true;
                    // Ring distance must be non-decreasing.
                    let fwd = (v + n - me) % n;
                    let dist = fwd.min(n - fwd);
                    assert!(dist >= last_dist, "n={n} me={me}: went far then near");
                    last_dist = dist;
                }
            }
        }
    }

    /// Chi-square goodness of fit over the victim distribution: with
    /// 4 eligible victims (3 degrees of freedom) the 99.9th percentile
    /// of χ²(3) is ≈ 16.3; a uniform selector sits far below it.
    #[test]
    fn victim_distribution_is_roughly_uniform() {
        let v = RandomVictim::new(5, 99);
        let mut counts = [0usize; 5];
        const DRAWS: usize = 40_000;
        for _ in 0..DRAWS {
            counts[v.pick(2)] += 1;
        }
        assert_eq!(counts[2], 0, "self-steal must never be drawn");
        let expected = DRAWS as f64 / 4.0;
        let chi2: f64 = counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, &c)| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 16.3, "χ² = {chi2:.2}, counts = {counts:?}");
    }
}
