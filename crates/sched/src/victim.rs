//! Dispatch helpers: round-robin target selection and random victim
//! selection for work stealing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Cyclic dispatcher over `n` targets.
///
/// The paper's microbenchmarks repeatedly use a "round-robin dispatch"
/// from the master thread: Converse message sends, `qthread_fork_to`,
/// and Argobots private-pool creation all distribute work units
/// cyclically over the workers. Shared-state and thread-safe so several
/// producers can interleave.
///
/// ```
/// use lwt_sched::RoundRobin;
/// let rr = RoundRobin::new(3);
/// assert_eq!([rr.next(), rr.next(), rr.next(), rr.next()], [0, 1, 2, 0]);
/// ```
#[derive(Debug)]
pub struct RoundRobin {
    n: usize,
    cursor: AtomicUsize,
}

impl RoundRobin {
    /// A dispatcher cycling through `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "round-robin over zero targets");
        RoundRobin {
            n,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Next target index.
    #[inline]
    pub fn next(&self) -> usize {
        self.cursor.fetch_add(1, Ordering::Relaxed) % self.n
    }

    /// Number of targets.
    #[must_use]
    pub fn targets(&self) -> usize {
        self.n
    }
}

/// Uniform random victim selection excluding the caller — the policy of
/// MassiveThreads' work stealing ("a random Work-Stealing mechanism that
/// allows an idle Worker to … steal a ULT").
///
/// Uses a small xorshift PRNG per instance: no locks, no global state,
/// reproducible when seeded.
#[derive(Debug)]
pub struct RandomVictim {
    state: std::cell::Cell<u64>,
    n: usize,
}

impl RandomVictim {
    /// A selector over `n` workers, seeded per-worker.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "victim selection over zero workers");
        RandomVictim {
            // Avoid the all-zero xorshift fixed point.
            state: std::cell::Cell::new(seed | 1),
            n,
        }
    }

    /// Pick a victim uniformly from `0..n`, excluding `me` when `n > 1`.
    ///
    /// With a single worker there is nobody to steal from and `me` is
    /// returned (callers treat self-steal as a failed attempt).
    pub fn pick(&self, me: usize) -> usize {
        if self.n == 1 {
            return me;
        }
        // xorshift64*
        let mut x = self.state.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state.set(x);
        let r = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize;
        // Draw from n-1 slots and skip over `me`.
        let v = r % (self.n - 1);
        if v >= me {
            v + 1
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobin::new(4);
        let seq: Vec<_> = (0..8).map(|_| rr.next()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(rr.targets(), 4);
    }

    #[test]
    #[should_panic(expected = "zero targets")]
    fn round_robin_zero_rejected() {
        let _ = RoundRobin::new(0);
    }

    #[test]
    fn round_robin_is_fair_under_concurrency() {
        const THREADS: usize = 4;
        const PER: usize = 1_000;
        let rr = Arc::new(RoundRobin::new(5));
        let counts: Vec<_> = (0..THREADS)
            .map(|_| {
                let rr = rr.clone();
                std::thread::spawn(move || {
                    let mut c = [0usize; 5];
                    for _ in 0..PER {
                        c[rr.next()] += 1;
                    }
                    c
                })
            })
            .collect();
        let mut total = [0usize; 5];
        for t in counts {
            for (tot, c) in total.iter_mut().zip(t.join().unwrap()) {
                *tot += c;
            }
        }
        let sum: usize = total.iter().sum();
        assert_eq!(sum, THREADS * PER);
        // Perfect fairness over the *total* because fetch_add is atomic.
        for c in total {
            assert_eq!(c, THREADS * PER / 5);
        }
    }

    #[test]
    fn victim_never_picks_self_when_possible() {
        let v = RandomVictim::new(8, 0xDECAF);
        for _ in 0..10_000 {
            assert_ne!(v.pick(3), 3);
        }
    }

    #[test]
    fn victim_single_worker_returns_self() {
        let v = RandomVictim::new(1, 7);
        assert_eq!(v.pick(0), 0);
    }

    #[test]
    fn victim_covers_all_other_workers() {
        let v = RandomVictim::new(4, 42);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[v.pick(0)] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn victim_distribution_is_roughly_uniform() {
        let v = RandomVictim::new(5, 99);
        let mut counts = [0usize; 5];
        const DRAWS: usize = 40_000;
        for _ in 0..DRAWS {
            counts[v.pick(2)] += 1;
        }
        assert_eq!(counts[2], 0);
        for (i, &c) in counts.iter().enumerate() {
            if i != 2 {
                let expected = DRAWS / 4;
                assert!(
                    c > expected * 8 / 10 && c < expected * 12 / 10,
                    "victim {i} drawn {c} times, expected ≈{expected}"
                );
            }
        }
    }
}
