//! `spawn_blocking` backing store: a lazily-grown OS-thread pool for
//! work that would wedge a scheduler worker (file I/O, syscalls,
//! long-running FFI).
//!
//! The paper's runtimes all share the failure mode this module exists
//! to avoid: a ULT that blocks in the kernel takes its whole execution
//! stream with it, because M:N scheduling only multiplexes *user-level*
//! suspension. The pool is process-global (blocking capacity is a
//! machine resource, not a per-runtime one): submitters push jobs into
//! an [`Injector`] inbox and wake one parked thread ([`Parker`], the
//! same one-token primitive `lwt_sched::ParkGroup` is built from), or
//! grow the pool while under [`max_threads`]. Idle threads park
//! indefinitely — they cost a stack, not a core.
//!
//! The handoff is lost-wake-safe by a re-check, mirroring ParkGroup's
//! contract: a worker going idle registers its parker *then* re-checks
//! the inbox, so a submitter that observed an empty idle list has its
//! job seen by that re-check, and a submitter that popped the parker
//! deposits a token that makes the worker's park return immediately.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use lwt_metrics::registry::COUNTERS;
use lwt_sched::Injector;
use lwt_sync::Parker;

/// Ceiling the pool grows to when `LWT_BLOCKING_THREADS` is unset and
/// no builder overrode it: enough to cover bursts of blocking calls
/// without letting a pathological workload fork an OS thread per job.
pub const DEFAULT_MAX_BLOCKING_THREADS: usize = 8;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool could not accept a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingPoolError {
    /// The pool is disabled: its thread ceiling is zero
    /// (`LWT_BLOCKING_THREADS=0` or `.blocking_threads(0)`).
    Disabled,
    /// The pool had no live thread and the OS refused to start one;
    /// the job was not accepted.
    SpawnFailed,
}

impl std::fmt::Display for BlockingPoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingPoolError::Disabled => {
                write!(f, "blocking pool disabled (max threads is 0)")
            }
            BlockingPoolError::SpawnFailed => {
                write!(f, "blocking pool could not start an OS thread")
            }
        }
    }
}

impl std::error::Error for BlockingPoolError {}

struct Pool {
    inbox: Injector<Job>,
    /// The inbox is MPSC; this lock elects the single consumer among
    /// however many pool threads are awake at once. Contention is
    /// bounded by the pool size and the jobs are blocking-length
    /// anyway, so a lock-free MPMC structure would buy nothing here.
    pop_lock: Mutex<()>,
    /// Parkers of threads with nothing to do, LIFO so the hottest
    /// thread (most recently parked) is woken first.
    idle: Mutex<Vec<Arc<Parker>>>,
    /// Live pool threads (monotonic under growth; threads never
    /// retire — an idle parked thread is cheap).
    live: AtomicUsize,
    /// Growth ceiling; see [`set_max_threads`].
    max: AtomicUsize,
}

fn env_max() -> usize {
    match std::env::var("LWT_BLOCKING_THREADS").ok().as_deref().map(str::trim) {
        None | Some("") => DEFAULT_MAX_BLOCKING_THREADS,
        Some(s) => s.parse().unwrap_or(DEFAULT_MAX_BLOCKING_THREADS),
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        inbox: Injector::new(),
        pop_lock: Mutex::new(()),
        idle: Mutex::new(Vec::new()),
        live: AtomicUsize::new(0),
        max: AtomicUsize::new(env_max()),
    })
}

/// Current growth ceiling of the pool.
#[must_use]
pub fn max_threads() -> usize {
    pool().max.load(Ordering::Relaxed)
}

/// Override the pool's growth ceiling (the `.blocking_threads(max)`
/// builder knob lands here). Process-global, like the stack cache and
/// wait policy: the pool outlives any single runtime instance.
/// Shrinking below the live count stops growth but retires nothing.
pub fn set_max_threads(max: usize) {
    pool().max.store(max, Ordering::Relaxed);
}

/// Re-read `LWT_BLOCKING_THREADS` (tests that mutate the environment).
pub fn reset_max_threads_to_env() {
    set_max_threads(env_max());
}

fn worker_loop(me: &Arc<Parker>) {
    let p = pool();
    loop {
        // Drain: elect ourselves consumer for one pop at a time so
        // the MPSC inbox never sees two concurrent consumers.
        loop {
            let job = {
                let _consumer = p.pop_lock.lock().unwrap();
                p.inbox.pop()
            };
            match job {
                Some(job) => {
                    // A panicking job must not kill the pool thread;
                    // the submitter's wrapper (EventSlot) already
                    // captured the payload for the joiner.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                }
                None => break,
            }
        }
        // Going idle: register, then re-check. A submitter that missed
        // us in the idle list has pushed before our re-check; one that
        // popped us will deposit an unpark token, making the park
        // below return immediately.
        p.idle.lock().unwrap().push(me.clone());
        if !p.inbox.is_empty() {
            let mut idle = p.idle.lock().unwrap();
            if let Some(pos) = idle.iter().position(|q| Arc::ptr_eq(q, me)) {
                // Not claimed yet: withdraw and go drain the inbox.
                idle.remove(pos);
                continue;
            }
            // Claimed by a submitter: its token is (or will be) in the
            // parker; fall through.
        }
        me.park();
    }
}

/// Hand `job` to the pool: run it on an OS thread that is allowed to
/// block. Wakes an idle pool thread, or grows the pool if all are busy
/// and the ceiling permits.
///
/// # Errors
///
/// [`BlockingPoolError::Disabled`] when the ceiling is zero (the job
/// is returned untouched, not queued);
/// [`BlockingPoolError::SpawnFailed`] when no pool thread exists and
/// the OS would not start one.
pub fn submit(job: impl FnOnce() + Send + 'static) -> Result<(), BlockingPoolError> {
    let p = pool();
    let max = p.max.load(Ordering::Relaxed);
    if max == 0 {
        return Err(BlockingPoolError::Disabled);
    }
    COUNTERS.blocking_spawns.inc();
    p.inbox.push(Box::new(job));
    // Prefer waking a parked thread over spawning a new one.
    let idle = p.idle.lock().unwrap().pop();
    if let Some(parker) = idle {
        parker.unpark();
        return Ok(());
    }
    // All live threads are busy (or mid-re-check, which is just as
    // good): grow, if allowed.
    loop {
        let live = p.live.load(Ordering::Relaxed);
        if live >= max {
            // Saturated: a busy thread will reach the job when it
            // finishes its current one.
            return Ok(());
        }
        if p.live
            .compare_exchange(live, live + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        let parker = Arc::new(Parker::new());
        let spawn = std::thread::Builder::new()
            .name(format!("lwt-blocking-{live}"))
            .spawn({
                let parker = parker.clone();
                move || worker_loop(&parker)
            });
        return match spawn {
            Ok(_) => Ok(()),
            Err(_) => {
                p.live.fetch_sub(1, Ordering::AcqRel);
                if p.live.load(Ordering::Acquire) == 0 {
                    // Nobody will ever pop the job; report the stall.
                    // (The job stays queued and runs if a later submit
                    // manages to start a thread.)
                    Err(BlockingPoolError::SpawnFailed)
                } else {
                    Ok(())
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_pool_reuses_parked_threads() {
        reset_max_threads_to_env();
        let hits = Arc::new(AtomicUsize::new(0));
        for round in 0..3 {
            let done = Arc::new(lwt_sync::Event::new());
            let n = 16;
            let latch = Arc::new(lwt_sync::CountLatch::new(n));
            for _ in 0..n {
                let (h, l, d) = (hits.clone(), latch.clone(), done.clone());
                submit(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                    if l.count_down() {
                        d.set();
                    }
                })
                .unwrap();
            }
            assert!(
                done.wait_timeout(Duration::from_secs(10), std::thread::yield_now),
                "round {round} jobs did not finish"
            );
        }
        assert_eq!(hits.load(Ordering::Relaxed), 48);
        // The pool never grew past its ceiling.
        assert!(pool().live.load(Ordering::Relaxed) <= max_threads());
    }

    #[test]
    fn blocking_jobs_overlap_beyond_one_thread() {
        reset_max_threads_to_env();
        // Two jobs that each wait for the other: only completable if
        // the pool runs them on distinct OS threads.
        let a = Arc::new(lwt_sync::Event::new());
        let b = Arc::new(lwt_sync::Event::new());
        let (a1, b1) = (a.clone(), b.clone());
        submit(move || {
            a1.set();
            b1.wait(std::thread::yield_now);
        })
        .unwrap();
        let (a2, b2) = (a.clone(), b.clone());
        submit(move || {
            a2.wait(std::thread::yield_now);
            b2.set();
        })
        .unwrap();
        assert!(a.wait_timeout(Duration::from_secs(10), std::thread::yield_now));
        assert!(b.wait_timeout(Duration::from_secs(10), std::thread::yield_now));
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        reset_max_threads_to_env();
        submit(|| panic!("blocking boom")).unwrap();
        let done = Arc::new(lwt_sync::Event::new());
        let d = done.clone();
        submit(move || d.set()).unwrap();
        assert!(done.wait_timeout(Duration::from_secs(10), std::thread::yield_now));
    }
}
