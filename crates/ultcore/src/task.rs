//! The stackless futures bridge: a hand-rolled executor cell that runs
//! `core::future::Future`s on the runtimes' existing ready queues.
//!
//! The paper's Table I separates *stackful* ULTs from *stackless*
//! tasklets; Rust's native stackless form is the `Future` state
//! machine. [`TaskCell`] is the heap record that makes one pollable by
//! any backend: it owns the future, a [`TaskState`] word serializing
//! wakes against polls (the no-lost-wake machine, model-checked in
//! `crates/model/tests/waker.rs`), a reschedule hook that pushes the
//! cell back onto whichever queue structure the backend uses, and the
//! completion slot its join handle reads.
//!
//! The waker is built from a raw vtable over the cell's own `Arc` — no
//! external executor crate — so `Waker::clone` is one strong-count
//! increment and `wake` is the [`TaskState::on_wake`] CAS plus, for
//! the winning waker, one queue push.
//!
//! ## Ordering contract (the waker vtable's side of the bargain)
//!
//! 1. Everything the waker's thread did before `wake()` is visible to
//!    the poll that the wake leads to (`AcqRel` on the state CAS, plus
//!    the queue's own publication).
//! 2. A `wake()` that lands while the task is being polled is never
//!    lost: the runner observes `NOTIFIED` when its poll returns
//!    `Pending` and requeues the cell itself
//!    ([`TaskState::finish_pending`]).
//! 3. At most one queue entry exists per task at any moment, so the
//!    `&mut` exclusivity `Future::poll` demands holds without a lock.

use std::any::Any;
use std::cell::UnsafeCell;
use std::future::Future;
use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use lwt_metrics::registry::{emit, emit_with_span, COUNTERS};
use lwt_metrics::{span, timeline, EventKind};
use lwt_sched::{TaskState, WakeAction};
use lwt_sync::Event;

use crate::UltCore;

/// The reschedule hook a [`TaskCell`] fires when its waker wins the
/// idle→scheduled race: push the task onto one of the backend's ready
/// queues. Captured per-`Glt` so the hook also encodes the runtime's
/// async placement policy.
pub type TaskResched = Arc<dyn Fn(Arc<dyn PollTask>) + Send + Sync>;

/// Type-erased view of a [`TaskCell`] that worker loops dispatch:
/// dequeue the unit, call [`PollTask::run`], done. All poll-protocol
/// bookkeeping (claim, metrics, span, requeue-on-notified) lives
/// behind `run`.
pub trait PollTask: Send + Sync + 'static {
    /// Claim and poll the task once. A stale queue entry (the task
    /// completed, or a chaos double-enqueue lost the claim race) is
    /// dropped silently.
    fn run(self: Arc<Self>);
    /// The causal span assigned at spawn (0 when tracing was off).
    fn span_id(&self) -> u64;
}

/// One ready-queue element of the ultcore-based runtimes: either a
/// stackful ULT or a stackless future task. Queues moved from
/// `ReadyQueue<Arc<UltCore>>` to `ReadyQueue<ReadyUnit>` when the
/// async bridge landed; [`run_unit`] dispatches either form.
#[derive(Clone)]
pub enum ReadyUnit {
    /// A stackful user-level thread ([`crate::run_ult`]).
    Ult(Arc<UltCore>),
    /// A stackless future task awaiting a poll.
    Task(Arc<dyn PollTask>),
}

impl From<Arc<UltCore>> for ReadyUnit {
    fn from(u: Arc<UltCore>) -> Self {
        ReadyUnit::Ult(u)
    }
}

impl std::fmt::Debug for ReadyUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadyUnit::Ult(u) => write!(f, "ReadyUnit::Ult({u:?})"),
            ReadyUnit::Task(_) => write!(f, "ReadyUnit::Task"),
        }
    }
}

/// Dispatch one dequeued [`ReadyUnit`] on the calling worker. Returns
/// `false` for stale ULT hints (same contract as [`crate::run_ult`]);
/// task units always report `true` — a lost task claim is a silent
/// drop, not a schedulable event.
pub fn run_unit(unit: &ReadyUnit) -> bool {
    match unit {
        ReadyUnit::Ult(u) => crate::run_ult(u),
        ReadyUnit::Task(t) => {
            t.clone().run();
            true
        }
    }
}

/// Typed access to a completed task's result — the join-handle half of
/// a [`TaskCell`], with the future's concrete type erased so handles
/// are generic only over the output.
pub trait TaskOutcome<T>: Send + Sync {
    /// Completion event; fires after the outcome slot is written.
    fn done(&self) -> &Event;
    /// Take the outcome (value or escaped panic). `None` before
    /// completion or if already taken.
    fn take(&self) -> Option<Result<T, Box<dyn Any + Send>>>;
    /// The causal span assigned at spawn (0 when tracing was off).
    fn span_id(&self) -> u64;
}

/// The heap record of one spawned future: state machine + future +
/// reschedule hook + completion slot. Built by [`TaskCell::spawn`];
/// thereafter it bounces between a ready queue (as an
/// `Arc<dyn PollTask>`) and worker poll loops until a poll returns
/// `Ready`.
pub struct TaskCell<F: Future> {
    state: TaskState,
    span: u64,
    resched: TaskResched,
    /// The future, polled in place (the Arc pins it); dropped — set to
    /// `None` — on completion, so captured resources release as soon
    /// as the task finishes rather than when the last waker drops.
    future: UnsafeCell<Option<F>>,
    /// Written exactly once, before `done` fires.
    outcome: UnsafeCell<Option<Result<F::Output, Box<dyn Any + Send>>>>,
    done: Event,
}

// SAFETY: the UnsafeCell fields follow the claim protocol — only the
// worker holding the RUNNING claim (TaskState::begin_poll) touches
// `future`/`outcome`; the joiner reads `outcome` only after `done`
// (Release set / Acquire is_set) fires, when no poll can be live.
unsafe impl<F: Future + Send> Send for TaskCell<F> where F::Output: Send {}
// SAFETY: see above.
unsafe impl<F: Future + Send> Sync for TaskCell<F> where F::Output: Send {}

impl<F> TaskCell<F>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    /// Allocate the cell for `fut`. The task is born `SCHEDULED`
    /// ([`TaskState::new`]); the caller must perform the initial
    /// enqueue (normally by calling `resched` with the returned task).
    ///
    /// Returns the same cell under both of its hats: the typed outcome
    /// view for the join handle, and the type-erased poll view for the
    /// ready queue.
    #[must_use]
    pub fn spawn(
        fut: F,
        resched: TaskResched,
    ) -> (Arc<dyn TaskOutcome<F::Output>>, Arc<dyn PollTask>) {
        let cell = Arc::new(TaskCell {
            state: TaskState::new(),
            span: span::on_spawn(),
            resched,
            future: UnsafeCell::new(Some(fut)),
            outcome: UnsafeCell::new(None),
            done: Event::new(),
        });
        (cell.clone(), cell)
    }

    /// Vtable over a raw `Arc<TaskCell<F>>` pointer. `clone` bumps the
    /// strong count; `wake` consumes the waker's reference after
    /// resolving the wake; `wake_by_ref` borrows it (`ManuallyDrop`);
    /// `drop` releases it.
    const VTABLE: RawWakerVTable = RawWakerVTable::new(
        Self::vt_clone,
        Self::vt_wake,
        Self::vt_wake_by_ref,
        Self::vt_drop,
    );

    unsafe fn vt_clone(p: *const ()) -> RawWaker {
        // SAFETY: p came from Arc::into_raw in waker()/vt_clone and the
        // waker holding it is alive, so the count is ≥ 1.
        unsafe { Arc::increment_strong_count(p.cast::<Self>()) };
        RawWaker::new(p, &Self::VTABLE)
    }

    unsafe fn vt_wake(p: *const ()) {
        // SAFETY: consumes the calling waker's reference.
        let cell = unsafe { Arc::from_raw(p.cast::<Self>()) };
        cell.wake();
    }

    unsafe fn vt_wake_by_ref(p: *const ()) {
        // SAFETY: borrows the calling waker's reference; ManuallyDrop
        // keeps the count balanced.
        let cell = ManuallyDrop::new(unsafe { Arc::from_raw(p.cast::<Self>()) });
        cell.wake();
    }

    unsafe fn vt_drop(p: *const ()) {
        // SAFETY: releases the calling waker's reference.
        drop(unsafe { Arc::from_raw(p.cast::<Self>()) });
    }

    /// Build a `Waker` holding one strong reference to this cell.
    fn waker(self: &Arc<Self>) -> Waker {
        let ptr = Arc::into_raw(self.clone()).cast::<()>();
        // SAFETY: VTABLE's contract matches Arc reference counting.
        unsafe { Waker::from_raw(RawWaker::new(ptr, &Self::VTABLE)) }
    }

    /// Resolve one waker firing. The winning wake requeues the cell;
    /// a wake landing mid-poll is recorded for the runner; wakes on
    /// queued or completed tasks are no-ops.
    fn wake(self: &Arc<Self>) {
        match self.state.on_wake() {
            WakeAction::Schedule => {
                COUNTERS.async_wakes.inc();
                emit_with_span(EventKind::AsyncWake, 0, self.span);
                (self.resched)(self.clone());
            }
            WakeAction::Coalesced => {
                COUNTERS.async_wakes.inc();
                emit_with_span(EventKind::AsyncWake, 1, self.span);
            }
            WakeAction::AlreadyQueued | WakeAction::Complete => {}
        }
    }

    /// Publish the task's outcome and retire it: drop the future,
    /// store the result, flip the state terminal, fire `done`.
    ///
    /// # Safety
    ///
    /// Caller must hold the RUNNING claim.
    unsafe fn finish(&self, out: Result<F::Output, Box<dyn Any + Send>>) {
        // SAFETY: RUNNING claim grants exclusivity; dropping the future
        // here (not at last-Arc drop) releases what it captured as soon
        // as the task completes.
        unsafe {
            *self.future.get() = None;
            *self.outcome.get() = Some(out);
        }
        self.state.complete();
        span::on_complete(self.span);
        // Release on `set` publishes the outcome write to the joiner.
        self.done.set();
    }
}

impl<F> PollTask for TaskCell<F>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    fn run(self: Arc<Self>) {
        if !self.state.begin_poll() {
            // Stale entry: completed, or another dispatcher won.
            return;
        }
        COUNTERS.async_polls.inc();
        timeline::enter(timeline::WorkerState::Busy);
        if self.span != 0 {
            span::set_current(self.span);
        }
        emit(EventKind::AsyncPoll, 0);
        if lwt_chaos::should_inject(lwt_chaos::FaultSite::AsyncPollDelay) {
            // Widen the window in which wakes land on a claimed task
            // and must coalesce instead of double-queueing.
            std::thread::yield_now();
        }
        let waker = self.waker();
        let mut cx = Context::from_waker(&waker);
        let polled = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: begin_poll grants exclusive access; the future
            // never moves after spawn (the Arc pins its storage), so
            // Pin::new_unchecked is sound.
            let fut = unsafe { &mut *self.future.get() };
            let fut = fut.as_mut().expect("polling a completed task");
            // SAFETY: see above.
            unsafe { Pin::new_unchecked(fut) }.poll(&mut cx)
        }));
        match polled {
            Ok(Poll::Pending) => {
                // Close the critical-path segment this poll opened.
                emit(EventKind::Yield, 0);
                if lwt_metrics::tracing_enabled() {
                    span::set_current(span::NO_SPAN);
                }
                timeline::enter(timeline::WorkerState::Dispatch);
                if self.state.finish_pending() {
                    // A wake coalesced mid-poll: the requeue obligation
                    // is ours — this is the no-lost-wake handoff.
                    (self.resched)(self.clone());
                } else if lwt_chaos::should_inject(lwt_chaos::FaultSite::AsyncSpuriousWake) {
                    // Cleanly parked; chaos re-wakes it with no
                    // progress attached, like a spurious OS wakeup.
                    self.wake();
                }
            }
            Ok(Poll::Ready(v)) => {
                // SAFETY: we hold the RUNNING claim.
                unsafe { self.finish(Ok(v)) };
                if lwt_metrics::tracing_enabled() {
                    span::set_current(span::NO_SPAN);
                }
                timeline::enter(timeline::WorkerState::Dispatch);
            }
            Err(p) => {
                // A panicking poll completes the task with the payload;
                // the join handle re-raises it, same as a ULT panic.
                // SAFETY: we hold the RUNNING claim.
                unsafe { self.finish(Err(p)) };
                if lwt_metrics::tracing_enabled() {
                    span::set_current(span::NO_SPAN);
                }
                timeline::enter(timeline::WorkerState::Dispatch);
            }
        }
    }

    fn span_id(&self) -> u64 {
        self.span
    }
}

impl<F> TaskOutcome<F::Output> for TaskCell<F>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    fn done(&self) -> &Event {
        &self.done
    }

    fn take(&self) -> Option<Result<F::Output, Box<dyn Any + Send>>> {
        if !self.done.is_set() {
            return None;
        }
        // SAFETY: done (Acquire) happens-after the outcome write, and
        // the completed runner never touches the slot again; the handle
        // consuming self is the only taker.
        unsafe { (*self.outcome.get()).take() }
    }

    fn span_id(&self) -> u64 {
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwt_sched::ReadyQueue;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Single-queue mini executor: an OS thread pops ReadyUnits and
    /// runs them, external code injects.
    struct MiniExec {
        queue: Arc<ReadyQueue<ReadyUnit>>,
        stop: Arc<AtomicBool>,
        worker: Option<std::thread::JoinHandle<()>>,
    }

    impl MiniExec {
        fn new() -> Self {
            let queue: Arc<ReadyQueue<ReadyUnit>> = Arc::new(ReadyQueue::new());
            let stop = Arc::new(AtomicBool::new(false));
            let (q, s) = (queue.clone(), stop.clone());
            let worker = std::thread::spawn(move || {
                q.bind();
                loop {
                    match q.pop() {
                        Some(u) => {
                            run_unit(&u);
                        }
                        None => {
                            if s.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
            MiniExec {
                queue,
                stop,
                worker: Some(worker),
            }
        }

        fn resched(&self) -> TaskResched {
            let q = self.queue.clone();
            Arc::new(move |t: Arc<dyn PollTask>| q.inject(ReadyUnit::Task(t)))
        }

        fn spawn<F>(&self, fut: F) -> Arc<dyn TaskOutcome<F::Output>>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            let resched = self.resched();
            let (out, task) = TaskCell::spawn(fut, resched.clone());
            resched(task);
            out
        }
    }

    impl Drop for MiniExec {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::Release);
            self.worker.take().unwrap().join().unwrap();
        }
    }

    /// A future that parks `yields` times, handing its waker to
    /// `wakers` each time, before resolving to `value`.
    struct Park {
        yields: usize,
        value: u64,
        wakers: Arc<Mutex<Vec<Waker>>>,
    }

    impl Future for Park {
        type Output = u64;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u64> {
            if self.yields == 0 {
                return Poll::Ready(self.value);
            }
            self.yields -= 1;
            self.wakers.lock().unwrap().push(cx.waker().clone());
            Poll::Pending
        }
    }

    #[test]
    fn ready_future_resolves_on_first_poll() {
        let ex = MiniExec::new();
        let out = ex.spawn(async { 6 * 7 });
        out.done().wait(std::thread::yield_now);
        assert_eq!(out.take().unwrap().unwrap(), 42);
        // Second take is empty: the slot is consumed.
        assert!(out.take().is_none());
    }

    #[test]
    fn pending_future_progresses_on_external_wakes() {
        let ex = MiniExec::new();
        let wakers = Arc::new(Mutex::new(Vec::new()));
        let out = ex.spawn(Park {
            yields: 3,
            value: 9,
            wakers: wakers.clone(),
        });
        for _ in 0..3 {
            // Wait for the park, then wake from this foreign thread.
            loop {
                if let Some(w) = wakers.lock().unwrap().pop() {
                    w.wake();
                    break;
                }
                std::thread::yield_now();
            }
        }
        out.done().wait(std::thread::yield_now);
        assert_eq!(out.take().unwrap().unwrap(), 9);
    }

    #[test]
    fn redundant_wakes_are_coalesced() {
        let ex = MiniExec::new();
        let wakers = Arc::new(Mutex::new(Vec::new()));
        let out = ex.spawn(Park {
            yields: 1,
            value: 1,
            wakers: wakers.clone(),
        });
        let w = loop {
            if let Some(w) = wakers.lock().unwrap().pop() {
                break w;
            }
            std::thread::yield_now();
        };
        // Hammer the same waker: exactly one requeue may result.
        for _ in 0..64 {
            w.wake_by_ref();
        }
        w.wake();
        out.done().wait(std::thread::yield_now);
        assert_eq!(out.take().unwrap().unwrap(), 1);
    }

    #[test]
    fn panicking_poll_surfaces_as_outcome_err() {
        let ex = MiniExec::new();
        let out = ex.spawn(async {
            panic!("future boom");
            #[allow(unreachable_code)]
            0u32
        });
        out.done().wait(std::thread::yield_now);
        let p = out.take().unwrap().unwrap_err();
        assert_eq!(p.downcast_ref::<&str>(), Some(&"future boom"));
    }

    #[test]
    fn completion_drops_the_future_and_what_it_captured() {
        struct Bump(Arc<AtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let ex = MiniExec::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let bump = Bump(drops.clone());
        let wakers = Arc::new(Mutex::new(Vec::new()));
        let w2 = wakers.clone();
        let out = ex.spawn(async move {
            let _held = bump;
            Park {
                yields: 1,
                value: 0,
                wakers: w2,
            }
            .await
        });
        // Exercise the vtable's clone/drop/wake paths from a foreign
        // thread while the cell is parked.
        let w = loop {
            if let Some(w) = wakers.lock().unwrap().pop() {
                break w;
            }
            std::thread::yield_now();
        };
        drop(w.clone());
        w.wake();
        out.done().wait(std::thread::yield_now);
        // finish() dropped the future in place, releasing its capture
        // even though `out` still holds the cell alive.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
