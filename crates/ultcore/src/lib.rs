//! # lwt-ultcore — the shared ULT executor core
//!
//! Four of the workspace's runtimes (Qthreads, MassiveThreads, Converse
//! Threads, Go) execute stackful user-level threads with identical
//! low-level mechanics and differ only in *queue topology and policy*.
//! This crate houses the delicate, unsafe common core exactly once:
//!
//! * [`UltCore`] — the work-unit record (state word, saved context,
//!   stack, entry closure, panic slot).
//! * [`WorkerCtx`]/[`enter_worker`] — the per-OS-thread executor
//!   context with the **post-switch protocol** (see below).
//! * [`run_ult`] — claim + switch into a ULT from a worker loop.
//! * [`yield_now`]/[`wait_until`]/[`in_ult`]/[`current_worker`] — the
//!   in-ULT primitives, parameterized by the runtime's requeue policy.
//! * [`TaskCell`]/[`ReadyUnit`]/[`run_unit`] ([`task`]) — the stackless
//!   futures bridge: `core::future::Future`s dispatched from the same
//!   ready queues as ULTs, with a hand-rolled waker vtable.
//! * [`blocking`] — the `spawn_blocking` OS-thread pool, so blocking
//!   syscalls never wedge a scheduler worker.
//!
//! The Argobots-model crate (`lwt-argobots`) keeps its own copy of this
//! machinery because its semantics are richer (two work-unit types,
//! `yield_to`, stackable schedulers); the four simpler runtimes share
//! this one.
//!
//! ## The post-switch protocol
//!
//! A suspending ULT cannot mark itself resumable *before* its context
//! is saved (a racing worker could resume a stale context) nor *after*
//! (it no longer runs). So the suspender records a deferred action in
//! the worker context, and whichever code gains control after the
//! switch — the worker loop, or the next resumed ULT — executes it:
//! re-queue on yield (via the runtime's [`Requeue`] policy), or
//! `TERMINATED` publication on exit (only once the dying stack has been
//! switched away from).

#![warn(missing_docs)]

pub mod blocking;
pub mod task;

pub use blocking::BlockingPoolError;
pub use task::{run_unit, PollTask, ReadyUnit, TaskCell, TaskOutcome, TaskResched};

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};
use std::sync::Arc;

use lwt_fiber::{cache, init_context, switch, switch_final, CachedStack, RawContext, StackSize};
use lwt_metrics::registry::{emit, timestamp_if_tracing, COUNTERS, SPAWN_LATENCY};
use lwt_metrics::{span, timeline, EventKind};

/// Work-unit lifecycle states.
pub mod state {
    /// Queued and claimable.
    pub const READY: u8 = 0;
    /// Claimed by a worker (running or suspended mid-yield-handoff).
    pub const RUNNING: u8 = 1;
    /// Completed.
    pub const TERMINATED: u8 = 2;
    /// Parked by [`crate::suspend`]; resumable only via
    /// [`crate::awaken`].
    pub const BLOCKED: u8 = 3;
}

/// The runtime-specific "where does a yielded ULT go" policy.
///
/// `worker` is the id passed to [`enter_worker`] by the worker loop the
/// yield happened on — MassiveThreads pushes to that worker's own
/// deque, Qthreads to the worker's shepherd, Go to the global queue.
pub trait Requeue: Send + Sync + 'static {
    /// Make `ult` runnable again. The core has already stored `READY`
    /// (Release) into the state word; implementations only enqueue the
    /// hint.
    fn requeue(&self, worker: usize, ult: Arc<UltCore>);
}

impl<F: Fn(usize, Arc<UltCore>) + Send + Sync + 'static> Requeue for F {
    fn requeue(&self, worker: usize, ult: Arc<UltCore>) {
        self(worker, ult);
    }
}

/// A stackful user-level thread record.
pub struct UltCore {
    state: AtomicU8,
    /// Saved context; valid whenever not RUNNING.
    ctx: UnsafeCell<RawContext>,
    /// Owned stack, on loan from the recycle cache; returned to it
    /// when the last Arc drops.
    stack: UnsafeCell<Option<CachedStack>>,
    /// Entry closure, taken at first execution.
    entry: UnsafeCell<Option<Box<dyn FnOnce() + Send + 'static>>>,
    /// Panic escaped from the entry closure; re-raised by the join
    /// wrapper the runtime builds.
    panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
    /// Wakeup that raced with a [`crate::suspend`] in progress; consumed
    /// by the post-switch Block processing.
    wake_pending: std::sync::atomic::AtomicBool,
    /// Creation timestamp for the spawn-to-first-run histogram; zero
    /// when tracing is off (the stamp is skipped) or already consumed.
    spawn_ns: AtomicU64,
    /// Causal span id ([`lwt_metrics::span`]), written once in `new`
    /// before the Arc is shared — plain field, no atomic needed. Zero
    /// when tracing was off at spawn; every hot-path use is gated on
    /// that, so the disabled cost is one field load.
    span: u64,
}

// SAFETY: interior fields follow the claim protocol — only the worker
// holding the RUNNING claim touches ctx/entry/panic; state transitions
// publish with Release/Acquire.
unsafe impl Send for UltCore {}
// SAFETY: see above.
unsafe impl Sync for UltCore {}

impl UltCore {
    /// Allocate a ULT that will run `f` when first scheduled.
    ///
    /// The returned Arc must be enqueued by the caller (state starts
    /// READY).
    #[must_use]
    pub fn new<F>(stack_size: StackSize, f: F) -> Arc<UltCore>
    where
        F: FnOnce() + Send + 'static,
    {
        Self::with_span(stack_size, span::on_spawn(), f)
    }

    /// Like [`UltCore::new`], but adopting `span` instead of allocating
    /// one — for spawns whose causal edge was recorded earlier on a
    /// different thread (e.g. Converse's two-stage bootstrap, where the
    /// `GLT_ult_create` call site owns the spawn edge and the CthCreate
    /// happens later inside a message). Pass `0` to run span-less.
    #[must_use]
    pub fn with_span<F>(stack_size: StackSize, span: u64, f: F) -> Arc<UltCore>
    where
        F: FnOnce() + Send + 'static,
    {
        COUNTERS.ults_created.inc();
        let stack = cache::acquire(stack_size);
        let ult = Arc::new(UltCore {
            state: AtomicU8::new(state::READY),
            ctx: UnsafeCell::new(RawContext::null()),
            stack: UnsafeCell::new(None),
            entry: UnsafeCell::new(Some(Box::new(f))),
            panic: UnsafeCell::new(None),
            wake_pending: std::sync::atomic::AtomicBool::new(false),
            spawn_ns: AtomicU64::new(timestamp_if_tracing()),
            span,
        });
        // SAFETY: ult_entry never returns; the data pointer is kept
        // alive by the Arc the worker holds while executing; moving the
        // Stack into the record does not move its heap allocation.
        let ctx = unsafe {
            init_context(&stack, ult_entry, Arc::as_ptr(&ult).cast_mut().cast::<u8>())
        };
        // SAFETY: not yet shared.
        unsafe {
            *ult.ctx.get() = ctx;
            *ult.stack.get() = Some(stack);
        }
        ult
    }

    /// Claim READY → RUNNING, acquiring exclusive execution rights.
    pub fn claim(&self) -> bool {
        self.state
            .compare_exchange(
                state::READY,
                state::RUNNING,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Feed the spawn-to-first-run histogram the first time the unit
    /// is dispatched. The fast path (tracing off, or already consumed)
    /// is one relaxed load.
    #[inline]
    fn record_first_run(&self) {
        if self.spawn_ns.load(Ordering::Relaxed) != 0 {
            let t0 = self.spawn_ns.swap(0, Ordering::Relaxed);
            if t0 != 0 {
                SPAWN_LATENCY.record(lwt_metrics::clock::now_ns().saturating_sub(t0));
            }
        }
    }

    /// The causal span id assigned at spawn (0 when tracing was off).
    /// Joiners pass this to [`lwt_metrics::span::on_join`].
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.span
    }

    /// Whether the ULT has completed.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.state.load(Ordering::Acquire) == state::TERMINATED
    }

    /// Take the panic payload, if the entry closure panicked.
    ///
    /// Only meaningful after [`UltCore::is_terminated`] returns true;
    /// the runtime's join path calls this before reading results.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        debug_assert!(self.is_terminated());
        // SAFETY: TERMINATED (Acquire) means the unit will never touch
        // the slot again; callers hold the join handle exclusively.
        unsafe { (*self.panic.get()).take() }
    }
}

impl std::fmt::Debug for UltCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self.state.load(Ordering::Relaxed) {
            state::READY => "ready",
            state::RUNNING => "running",
            _ => "terminated",
        };
        write!(f, "UltCore({s})")
    }
}

enum Post {
    None,
    Requeue(Arc<UltCore>),
    Terminated(Arc<UltCore>),
    /// Park the ULT (suspend): publish BLOCKED unless a wakeup already
    /// raced in, in which case requeue immediately.
    Block(Arc<UltCore>),
}

/// Per-OS-thread executor context.
pub struct WorkerCtx {
    sched_ctx: RawContext,
    current: Option<Arc<UltCore>>,
    post: Post,
    worker_id: usize,
    requeue: Arc<dyn Requeue>,
}

thread_local! {
    static WORKER: Cell<*mut WorkerCtx> = const { Cell::new(std::ptr::null_mut()) };
}

/// Read the worker TLS through an opaque call.
///
/// CRITICAL: every TLS read that can sit *after* a context switch in
/// the same function body must go through this `#[inline(never)]`
/// barrier. A ULT can resume on a different OS thread than it
/// suspended on; with the read inlined, LLVM legitimately CSEs the
/// thread-local address computed *before* the switch and hands the
/// resumed ULT the *previous* worker's context — double-processing its
/// post actions (observed as double-resumed ULTs in release builds).
#[inline(never)]
fn worker_ptr() -> *mut WorkerCtx {
    WORKER.with(Cell::get)
}

/// RAII registration of the calling OS thread as an executor.
///
/// Worker loops create this once, then call [`run_ult`] repeatedly.
pub struct WorkerGuard {
    ctx: *mut WorkerCtx,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        // SAFETY: ctx is live until the Box::from_raw below.
        emit(EventKind::EsStop, unsafe { (*self.ctx).worker_id } as u64);
        // Close the time-accounting books: stop extrapolating this
        // worker's in-progress state once it leaves the loop.
        timeline::retire();
        WORKER.with(|c| c.set(std::ptr::null_mut()));
        // SAFETY: created by Box::into_raw in enter_worker; no ULT is
        // running when the worker loop exits.
        drop(unsafe { Box::from_raw(self.ctx) });
    }
}

/// Register the calling OS thread as worker `worker_id` with the given
/// requeue policy. The guard must live for the whole worker loop.
#[must_use]
pub fn enter_worker(worker_id: usize, requeue: Arc<dyn Requeue>) -> WorkerGuard {
    let ctx = Box::into_raw(Box::new(WorkerCtx {
        sched_ctx: RawContext::null(),
        current: None,
        post: Post::None,
        worker_id,
        requeue,
    }));
    WORKER.with(|c| {
        assert!(c.get().is_null(), "thread is already an lwt worker");
        c.set(ctx);
    });
    emit(EventKind::EsStart, worker_id as u64);
    timeline::enter(timeline::WorkerState::Dispatch);
    WorkerGuard { ctx }
}

/// Run the deferred action left by whichever side switched away.
///
/// # Safety
///
/// `w` must be this thread's live `WorkerCtx`.
unsafe fn process_post(w: *mut WorkerCtx) {
    // SAFETY: exclusive by contract.
    let post = std::mem::replace(unsafe { &mut (*w).post }, Post::None);
    match post {
        Post::None => {}
        Post::Requeue(u) => {
            // READY must be published before the hint so the claim by
            // the eventual popper succeeds.
            u.state.store(state::READY, Ordering::Release);
            // SAFETY: worker fields are plain reads.
            let (id, rq) = unsafe { ((*w).worker_id, (*w).requeue.clone()) };
            rq.requeue(id, u);
        }
        Post::Terminated(u) => {
            u.state.store(state::TERMINATED, Ordering::Release);
        }
        Post::Block(u) => {
            if u.wake_pending.swap(false, Ordering::AcqRel) {
                // awaken() arrived while the ULT was still switching
                // away: make it runnable again right now.
                u.state.store(state::READY, Ordering::Release);
                // SAFETY: worker fields are plain reads.
                let (id, rq) = unsafe { ((*w).worker_id, (*w).requeue.clone()) };
                rq.requeue(id, u);
            } else {
                u.state.store(state::BLOCKED, Ordering::Release);
                // Re-check: awaken() may have set the flag between the
                // swap above and the BLOCKED store; it would then have
                // seen RUNNING and set the flag without requeueing.
                if u.wake_pending.swap(false, Ordering::AcqRel)
                    && u.state
                        .compare_exchange(
                            state::BLOCKED,
                            state::READY,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    // SAFETY: worker fields are plain reads.
                    let (id, rq) = unsafe { ((*w).worker_id, (*w).requeue.clone()) };
                    rq.requeue(id, u);
                }
            }
        }
    }
}

/// Claim and execute one ULT hint from a worker loop.
///
/// Returns `false` for stale hints (already claimed elsewhere), `true`
/// once the ULT ran until it yielded or finished.
///
/// # Panics
///
/// Panics if the calling thread has not [`enter_worker`]ed.
pub fn run_ult(ult: &Arc<UltCore>) -> bool {
    let w = worker_ptr();
    assert!(!w.is_null(), "run_ult outside an lwt worker");
    if !ult.claim() {
        return false;
    }
    ult.record_first_run();
    if ult.span != 0 {
        // The unit's events (and any spans it spawns) attribute to it.
        span::set_current(ult.span);
    }
    timeline::enter(timeline::WorkerState::Busy);
    emit(EventKind::UltRun, 0);
    // SAFETY: the claim grants exclusive execution; `ctx` holds the
    // suspended (or bootstrap) context; `w` is live for the whole loop.
    unsafe {
        (*w).current = Some(ult.clone());
        let target = *ult.ctx.get();
        switch(&mut (*w).sched_ctx, target);
        process_post(w);
    }
    timeline::enter(timeline::WorkerState::Dispatch);
    if lwt_metrics::tracing_enabled() {
        // Back in scheduler context; `yield_to` chains may have left a
        // different span current, so clear unconditionally under the
        // tracing gate.
        span::set_current(span::NO_SPAN);
    }
    true
}

/// Entry point of every ULT (first frames on its own stack).
unsafe extern "sysv64" fn ult_entry(data: *mut u8) -> ! {
    let w = worker_ptr();
    debug_assert!(!w.is_null());
    // SAFETY: live worker ctx; completes any handoff that targeted us.
    unsafe { process_post(w) };

    // SAFETY: kept alive by the Arc in the worker's `current`.
    let ult = unsafe { &*data.cast::<UltCore>() };
    // SAFETY: the RUNNING claim grants exclusive access.
    let f = unsafe { (*ult.entry.get()).take().expect("ULT entry missing") };
    if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
        // SAFETY: still exclusive until TERMINATED.
        unsafe { *ult.panic.get() = Some(p) };
    }
    // Final segment ends here, on whichever worker ran it.
    span::on_complete(ult.span);

    // Re-fetch: yields may have migrated us to another worker.
    let w = worker_ptr();
    // SAFETY: live worker ctx of whichever worker resumed us.
    unsafe {
        let me = (*w).current.take().expect("finishing ULT not current");
        (*w).post = Post::Terminated(me);
        let sched = (*w).sched_ctx;
        switch_final(sched)
    }
}

/// Yield the calling ULT: its runtime's [`Requeue`] policy decides
/// where it becomes runnable again.
///
/// # Panics
///
/// Panics when called outside a ULT.
pub fn yield_now() {
    let w = worker_ptr();
    assert!(
        !w.is_null() && unsafe { (*w).current.is_some() },
        "lwt_ultcore::yield_now() outside a ULT"
    );
    COUNTERS.yields.inc();
    emit(EventKind::Yield, 0);
    // SAFETY: same protocol as lwt-argobots (see module docs): the
    // requeue is deferred to whoever gains control after the switch.
    unsafe {
        let me = (*w).current.take().expect("yielding ULT not current");
        let my_ctx: *mut RawContext = me.ctx.get();
        (*w).post = Post::Requeue(me);
        let sched = (*w).sched_ctx;
        switch(&mut *my_ctx, sched);
        let w = worker_ptr();
        process_post(w);
    }
}

/// Transfer control directly to `target`, re-queuing the calling ULT
/// via the runtime's [`Requeue`] policy — the primitive behind
/// MassiveThreads' *work-first* creation ("the current work unit is
/// pushed into the ready queue and the thread executes the new work
/// unit").
///
/// Returns `false` (without switching) when `target` could not be
/// claimed (already running or finished).
///
/// # Panics
///
/// Panics when called outside a ULT.
pub fn yield_to(target: &Arc<UltCore>) -> bool {
    let w = worker_ptr();
    assert!(
        !w.is_null() && unsafe { (*w).current.is_some() },
        "lwt_ultcore::yield_to() outside a ULT"
    );
    if !target.claim() {
        return false;
    }
    COUNTERS.yields.inc();
    emit(EventKind::Yield, 0);
    target.record_first_run();
    if target.span != 0 {
        span::set_current(target.span);
    }
    emit(EventKind::UltRun, 0);
    // SAFETY: same protocol as yield_now, with control landing in the
    // claimed target; the target's resume path (or entry) performs our
    // requeue.
    unsafe {
        let me = (*w).current.take().expect("yielding ULT not current");
        let my_ctx: *mut RawContext = me.ctx.get();
        (*w).post = Post::Requeue(me);
        (*w).current = Some(target.clone());
        let tctx = *target.ctx.get();
        switch(&mut *my_ctx, tctx);
        let w = worker_ptr();
        process_post(w);
    }
    true
}

/// Park the calling ULT (`CthSuspend`): it will not run again until
/// some other code calls [`awaken`] on it. Obtain the `Arc<UltCore>`
/// to awaken through the runtime's handle machinery.
///
/// # Panics
///
/// Panics when called outside a ULT.
pub fn suspend() {
    let w = worker_ptr();
    assert!(
        !w.is_null() && unsafe { (*w).current.is_some() },
        "lwt_ultcore::suspend() outside a ULT"
    );
    // SAFETY: same switching protocol as yield_now; publication of the
    // BLOCKED state is deferred to the post-switch processing, which
    // also resolves races with concurrent awaken() calls.
    unsafe {
        let me = (*w).current.take().expect("suspending ULT not current");
        let my_ctx: *mut RawContext = me.ctx.get();
        (*w).post = Post::Block(me);
        let sched = (*w).sched_ctx;
        switch(&mut *my_ctx, sched);
        let w = worker_ptr();
        process_post(w);
    }
}

/// Make a [`suspend`]ed ULT runnable again (`CthAwaken`), enqueuing it
/// through `requeue`. Returns `true` if this call was responsible for
/// the wakeup (including the race where the ULT had not finished
/// parking yet), `false` if the ULT was not suspended (ready, running
/// with no suspend in flight, or terminated).
pub fn awaken(ult: &Arc<UltCore>, requeue: impl FnOnce(Arc<UltCore>)) -> bool {
    loop {
        match ult.state.load(Ordering::Acquire) {
            state::BLOCKED => {
                if ult
                    .state
                    .compare_exchange(
                        state::BLOCKED,
                        state::READY,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    requeue(ult.clone());
                    return true;
                }
            }
            state::RUNNING => {
                // Either mid-suspend (our flag will be consumed by the
                // post-switch Block processing) or simply running (the
                // flag is consumed unset by a later suspend — which is
                // exactly the semantics of a wakeup overtaking a park).
                ult.wake_pending.store(true, Ordering::Release);
                // If the park completed between our load and the store,
                // loop to perform the wakeup ourselves.
                if ult.state.load(Ordering::Acquire) != state::BLOCKED {
                    return true;
                }
            }
            _ => return false,
        }
    }
}

/// Whether the caller is executing inside a ULT.
#[must_use]
pub fn in_ult() -> bool {
    let w = worker_ptr();
    // SAFETY: when non-null, w is this thread's live ctx.
    !w.is_null() && unsafe { (*w).current.is_some() }
}

/// Id of the worker executing the caller, if on a worker thread.
#[must_use]
pub fn current_worker() -> Option<usize> {
    let w = worker_ptr();
    if w.is_null() {
        None
    } else {
        // SAFETY: live ctx.
        Some(unsafe { (*w).worker_id })
    }
}

/// Wait for `cond`: yielding inside a ULT, spin-then-yield on an OS
/// thread — the external-master join discipline of the paper's
/// microbenchmarks.
///
/// Slow-path waits register with the stall watchdog (`lwt-chaos`), so
/// a join on a unit that never completes lands in the blocked-unit
/// table instead of spinning invisibly.
pub fn wait_until(cond: impl Fn() -> bool) {
    if cond() {
        return;
    }
    let _watch = lwt_chaos::block_enter(
        lwt_chaos::BlockKind::Join,
        std::ptr::from_ref(&cond) as u64,
    );
    if in_ult() {
        // Yield the ULT so the worker can run other units; if the wait
        // drags on (the awaited unit lives on an OS thread that is not
        // getting scheduled), escalate to napping so this worker stops
        // monopolizing the core (see lwt_sync::AdaptiveRelax).
        let mut relax = lwt_sync::AdaptiveRelax::new();
        while !cond() {
            yield_now();
            if cond() {
                break;
            }
            relax.relax();
        }
    } else {
        let mut relax = lwt_sync::AdaptiveRelax::new();
        while !cond() {
            relax.relax();
        }
    }
}

/// Grace period granted after a drain deadline expires, between
/// raising the backend's `abandon` flag and detaching workers that
/// still have not exited: long enough for a worker parked between
/// units to notice the flag, short enough that a worker wedged
/// *inside* a unit cannot stall `shutdown_within` indefinitely.
pub const ABANDON_GRACE: std::time::Duration = std::time::Duration::from_millis(500);

/// Poll `handles` until every thread has finished or `deadline`
/// elapses; `true` iff all finished in time. The building block of the
/// backends' `shutdown_within`: the threads are *not* joined (callers
/// join afterwards, possibly after ordering their loops to abandon).
pub fn join_within(
    handles: &[std::thread::JoinHandle<()>],
    deadline: std::time::Duration,
) -> bool {
    let until = std::time::Instant::now() + deadline;
    let watch = lwt_chaos::block_enter(lwt_chaos::BlockKind::Finalize, handles.len() as u64);
    loop {
        if handles.iter().all(std::thread::JoinHandle::is_finished) {
            drop(watch);
            return true;
        }
        if std::time::Instant::now() >= until {
            drop(watch);
            return false;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

/// One work unit (or queue of them) still pending when a bounded
/// drain gave up — an entry in [`DrainError`]'s straggler table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Straggler {
    /// Worker/queue index the pending work was observed on.
    pub worker: usize,
    /// How many units were still pending there.
    pub pending: usize,
    /// What the pending count measures (backend-specific: "ready
    /// queue", "pool", "outstanding messages", …).
    pub what: &'static str,
}

impl std::fmt::Display for Straggler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker {}: {} pending in {}", self.worker, self.pending, self.what)
    }
}

/// A bounded runtime drain (`Glt::finalize`, backend
/// `shutdown_within`) hit its deadline with work still outstanding.
///
/// The runtime's workers were told to abandon their loops and were
/// joined — nothing is left running — but the listed [`Straggler`]s
/// never completed. Blocked units were *abandoned in place* (their
/// stacks and results are freed with the runtime), never unwound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainError {
    /// How long the drain waited before giving up.
    pub waited: std::time::Duration,
    /// Where work was still pending, one entry per non-idle location.
    /// May be empty: a wedged unit *running* (not queued) on a worker
    /// leaves no queue residue but still fails the drain.
    pub stragglers: Vec<Straggler>,
}

impl std::fmt::Display for DrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runtime drain incomplete after {:?}: ",
            self.waited
        )?;
        if self.stragglers.is_empty() {
            write!(f, "workers still busy (no queued stragglers)")
        } else {
            let total: usize = self.stragglers.iter().map(|s| s.pending).sum();
            write!(f, "{total} unit(s) never completed [")?;
            for (i, s) in self.stragglers.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "]")
        }
    }
}

impl std::error::Error for DrainError {}

/// Why a fallible join (`try_join`) failed: the joined work unit
/// panicked instead of completing.
///
/// Every runtime's `Handle::try_join` (and the GLT layer's
/// `GltHandle::try_join`) returns this one type, so cross-backend
/// code handles child panics uniformly. The infallible `join`s are
/// thin wrappers that [`JoinError::resume`] the payload.
pub struct JoinError(Box<dyn Any + Send>);

impl JoinError {
    /// Wrap a captured panic payload.
    #[must_use]
    pub fn new(payload: Box<dyn Any + Send>) -> Self {
        JoinError(payload)
    }

    /// The panic payload, for inspection or re-raising by hand.
    #[must_use]
    pub fn into_panic(self) -> Box<dyn Any + Send> {
        self.0
    }

    /// Re-raise the child's panic on the calling thread — the behavior
    /// of the infallible `join`s.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.0)
    }

    /// Panic message, when the payload is a string (the common case).
    #[must_use]
    pub fn message(&self) -> Option<&str> {
        self.0
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| self.0.downcast_ref::<String>().map(String::as_str))
    }
}

impl std::fmt::Debug for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("JoinError")
            .field(&self.message().unwrap_or("<non-string panic payload>"))
            .finish()
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.message() {
            Some(msg) => write!(f, "joined work unit panicked: {msg}"),
            None => write!(f, "joined work unit panicked"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Result slot shared between a spawned closure and its join handle;
/// synchronized by the ULT's TERMINATED transition.
pub struct ResultCell<T>(UnsafeCell<Option<T>>);

// SAFETY: single writer before TERMINATED, readers after (Acquire).
unsafe impl<T: Send> Send for ResultCell<T> {}
// SAFETY: see above.
unsafe impl<T: Send> Sync for ResultCell<T> {}

impl<T> ResultCell<T> {
    /// An empty slot.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(ResultCell(UnsafeCell::new(None)))
    }

    /// Store the result. Called exactly once, by the spawned closure.
    ///
    /// # Safety
    ///
    /// Must happen-before the owning unit's TERMINATED publication, on
    /// the unit's own execution.
    pub unsafe fn put(&self, value: T) {
        // SAFETY: forwarded contract.
        unsafe { *self.0.get() = Some(value) };
    }

    /// Take the result after observing TERMINATED.
    ///
    /// # Safety
    ///
    /// Caller must have observed the owning unit's TERMINATED state
    /// with Acquire ordering and be the only joiner.
    pub unsafe fn take(&self) -> Option<T> {
        // SAFETY: forwarded contract.
        unsafe { (*self.0.get()).take() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwt_sched::ReadyQueue;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    /// Minimal runtime over the core: one [`ReadyQueue`] per worker,
    /// round-robin external injection, work stealing between workers.
    struct MiniRt {
        queues: Arc<Vec<ReadyQueue<Arc<UltCore>>>>,
        next: AtomicUsize,
        stop: Arc<AtomicBool>,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl MiniRt {
        fn new(nworkers: usize) -> Self {
            let queues: Arc<Vec<ReadyQueue<Arc<UltCore>>>> =
                Arc::new((0..nworkers).map(|_| ReadyQueue::new()).collect());
            let stop = Arc::new(AtomicBool::new(false));
            let workers = (0..nworkers)
                .map(|id| {
                    let queues = queues.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        queues[id].bind();
                        let rq = queues.clone();
                        let requeue: Arc<dyn Requeue> =
                            Arc::new(move |w: usize, u: Arc<UltCore>| {
                                rq[w].push(u);
                            });
                        let _guard = enter_worker(id, requeue);
                        loop {
                            let next = queues[id].pop().or_else(|| {
                                (0..queues.len())
                                    .filter(|&v| v != id)
                                    .find_map(|v| queues[v].steal())
                            });
                            match next {
                                Some(u) => {
                                    run_ult(&u);
                                }
                                None => {
                                    if stop.load(Ordering::Acquire) {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                    })
                })
                .collect();
            MiniRt {
                queues,
                next: AtomicUsize::new(0),
                stop,
                workers,
            }
        }

        fn spawn(&self, f: impl FnOnce() + Send + 'static) -> Arc<UltCore> {
            let u = UltCore::new(StackSize(32 * 1024), f);
            let target = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            self.queues[target].inject(u.clone());
            u
        }

        fn shutdown(mut self) {
            self.stop.store(true, Ordering::Release);
            for w in self.workers.drain(..) {
                w.join().unwrap();
            }
        }
    }

    #[test]
    fn ults_run_and_terminate() {
        let rt = MiniRt::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let ults: Vec<_> = (0..100)
            .map(|_| {
                let h = hits.clone();
                rt.spawn(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for u in &ults {
            wait_until(|| u.is_terminated());
        }
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        rt.shutdown();
    }

    #[test]
    fn yield_interleaves_and_migrates() {
        let rt = MiniRt::new(2);
        let u = rt.spawn(|| {
            for _ in 0..10 {
                assert!(in_ult());
                assert!(current_worker().is_some());
                yield_now();
            }
        });
        wait_until(|| u.is_terminated());
        rt.shutdown();
    }

    #[test]
    fn result_cell_round_trip() {
        let rt = MiniRt::new(1);
        let cell = ResultCell::new();
        let c2 = cell.clone();
        let u = rt.spawn(move || {
            // SAFETY: before TERMINATED, sole writer.
            unsafe { c2.put(99) };
        });
        wait_until(|| u.is_terminated());
        // SAFETY: TERMINATED observed; sole joiner.
        assert_eq!(unsafe { cell.take() }, Some(99));
        rt.shutdown();
    }

    #[test]
    fn panic_is_captured_not_fatal() {
        let rt = MiniRt::new(1);
        let u = rt.spawn(|| panic!("inside ULT"));
        wait_until(|| u.is_terminated());
        let p = u.take_panic().expect("panic captured");
        assert_eq!(p.downcast_ref::<&str>(), Some(&"inside ULT"));
        rt.shutdown();
    }

    #[test]
    fn stale_hints_are_skipped() {
        let rt = MiniRt::new(1);
        let u = rt.spawn(|| {});
        wait_until(|| u.is_terminated());
        // The unit already ran; a duplicate hint must not re-execute.
        assert!(!run_ult_from_external(&u));
        rt.shutdown();
    }

    fn run_ult_from_external(u: &Arc<UltCore>) -> bool {
        // Claim should fail on a terminated unit; we do not need a
        // worker context for a failed claim.
        u.claim()
    }

    #[test]
    fn outside_worker_reports() {
        assert!(!in_ult());
        assert_eq!(current_worker(), None);
    }

    #[test]
    fn wait_until_external_spins() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            f2.store(true, Ordering::Release);
        });
        wait_until(|| flag.load(Ordering::Acquire));
        t.join().unwrap();
    }
}

#[cfg(test)]
mod suspend_tests {
    use super::*;
    use lwt_sched::ReadyQueue;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    /// The [`ReadyQueue`] runtime reused from the main tests, with
    /// awaken support.
    struct MiniRt {
        queues: Arc<Vec<ReadyQueue<Arc<UltCore>>>>,
        stop: Arc<AtomicBool>,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl MiniRt {
        fn new(nworkers: usize) -> Self {
            let queues: Arc<Vec<ReadyQueue<Arc<UltCore>>>> =
                Arc::new((0..nworkers).map(|_| ReadyQueue::new()).collect());
            let stop = Arc::new(AtomicBool::new(false));
            let workers = (0..nworkers)
                .map(|id| {
                    let queues = queues.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        queues[id].bind();
                        let rq = queues.clone();
                        let requeue: Arc<dyn Requeue> =
                            Arc::new(move |w: usize, u: Arc<UltCore>| {
                                rq[w].push(u);
                            });
                        let _guard = enter_worker(id, requeue);
                        loop {
                            let next = queues[id].pop().or_else(|| {
                                (0..queues.len())
                                    .filter(|&v| v != id)
                                    .find_map(|v| queues[v].steal())
                            });
                            match next {
                                Some(u) => {
                                    run_ult(&u);
                                }
                                None => {
                                    if stop.load(Ordering::Acquire) {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                    })
                })
                .collect();
            MiniRt {
                queues,
                stop,
                workers,
            }
        }

        fn spawn(&self, f: impl FnOnce() + Send + 'static) -> Arc<UltCore> {
            let u = UltCore::new(lwt_fiber::StackSize(32 * 1024), f);
            self.queues[0].inject(u.clone());
            u
        }

        fn awaken(&self, u: &Arc<UltCore>) -> bool {
            let q = self.queues.clone();
            awaken(u, move |u| q[0].inject(u))
        }

        fn shutdown(mut self) {
            self.stop.store(true, Ordering::Release);
            for w in self.workers.drain(..) {
                w.join().unwrap();
            }
        }
    }

    #[test]
    fn suspend_then_awaken_resumes() {
        let rt = MiniRt::new(1);
        let progress = Arc::new(AtomicUsize::new(0));
        let p = progress.clone();
        let u = rt.spawn(move || {
            p.fetch_add(1, Ordering::SeqCst);
            suspend();
            p.fetch_add(1, Ordering::SeqCst);
        });
        // Wait until parked.
        while progress.load(Ordering::SeqCst) < 1 || !matches!(
            u.state.load(Ordering::Acquire),
            state::BLOCKED
        ) {
            std::thread::yield_now();
        }
        assert_eq!(progress.load(Ordering::SeqCst), 1);
        assert!(rt.awaken(&u));
        wait_until(|| u.is_terminated());
        assert_eq!(progress.load(Ordering::SeqCst), 2);
        // Awakening a finished ULT reports false.
        assert!(!rt.awaken(&u));
        rt.shutdown();
    }

    #[test]
    fn awaken_racing_suspend_is_not_lost() {
        // Hammer the park/wake race: the awakener fires as fast as it
        // can while the ULT suspends repeatedly.
        const ROUNDS: usize = 200;
        let rt = MiniRt::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let u = rt.spawn(move || {
            for _ in 0..ROUNDS {
                suspend();
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        let mut woken = 0;
        while woken < ROUNDS {
            if rt.awaken(&u) {
                woken += 1;
                // Wait for the wakeup to be consumed before the next,
                // so each suspend pairs with one awaken.
                let target = woken;
                wait_until(|| {
                    hits.load(Ordering::SeqCst) >= target || u.is_terminated()
                });
            } else {
                std::thread::yield_now();
            }
        }
        wait_until(|| u.is_terminated());
        assert_eq!(hits.load(Ordering::SeqCst), ROUNDS);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "outside a ULT")]
    fn suspend_outside_ult_panics() {
        suspend();
    }

    #[test]
    fn awaken_ready_unit_is_noop() {
        let rt = MiniRt::new(1);
        // Never-scheduled unit is READY: awaken must refuse.
        let u = UltCore::new(lwt_fiber::StackSize(16 * 1024), || ());
        assert!(!rt.awaken(&u));
        rt.shutdown();
        // Let the unit drop unscheduled: its entry closure is simply
        // released with the record.
    }
}
