//! `qutil`-style parallel algorithms over the fork/join API.
//!
//! The C library ships `qutil` (parallel sorting, extrema, sums) as a
//! demonstration that ULT-grained divide and conquer is practical; this
//! module provides the same over [`crate::Runtime::fork`]: a parallel
//! mergesort ([`sort`]), parallel extrema ([`par_max`]) and a parallel
//! sum ([`par_sum`]) — each cutting over to sequential code below a
//! grain size, the standard qutil discipline.

use crate::Runtime;

/// Below this many elements, recursion stays sequential.
const SORT_GRAIN: usize = 1024;
/// Reduction grain.
const REDUCE_GRAIN: usize = 4096;

/// Parallel stable mergesort (`qutil_qsort` spirit; stable like
/// `qutil_mergesort`).
pub fn sort<T: Ord + Clone + Send + 'static>(rt: &Runtime, data: &mut [T]) {
    let len = data.len();
    if len <= SORT_GRAIN {
        data.sort();
        return;
    }
    // Work on a clone in plain Vecs to keep the recursion simple and
    // safe (qutil also buffers); merge back at the end.
    let sorted = msort(rt, data.to_vec());
    data.clone_from_slice(&sorted);
}

fn msort<T: Ord + Clone + Send + 'static>(rt: &Runtime, mut v: Vec<T>) -> Vec<T> {
    if v.len() <= SORT_GRAIN {
        v.sort();
        return v;
    }
    let right = v.split_off(v.len() / 2);
    let left = v;
    let rt2 = rt.clone();
    // Fork the left half; recurse into the right on this work unit.
    // SAFETY-free: plain owned data moves into the ULT.
    let left_handle = {
        let rt3 = rt.clone();
        rt.fork(move || msort(&rt3, left))
    };
    let right = msort(&rt2, right);
    let left = left_handle.join();
    merge(left, right)
}

fn merge<T: Ord>(left: Vec<T>, right: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut l = left.into_iter().peekable();
    let mut r = right.into_iter().peekable();
    loop {
        match (l.peek(), r.peek()) {
            (Some(a), Some(b)) => {
                if a <= b {
                    out.push(l.next().expect("peeked"));
                } else {
                    out.push(r.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(l);
                break;
            }
            (None, _) => {
                out.extend(r);
                break;
            }
        }
    }
    out
}

/// Parallel maximum (`qutil_maxf` family). Returns `None` on empty
/// input.
pub fn par_max<T: Ord + Copy + Send + Sync + 'static>(rt: &Runtime, data: &[T]) -> Option<T> {
    if data.is_empty() {
        return None;
    }
    if data.len() <= REDUCE_GRAIN {
        return data.iter().copied().max();
    }
    // Chunk over the workers via loop_accum on indices.
    let owned: std::sync::Arc<Vec<T>> = std::sync::Arc::new(data.to_vec());
    let o = owned.clone();
    let first = owned[0];
    Some(rt.loop_accum(
        0..owned.len(),
        first,
        move |i| o[i],
        |a, b| if a >= b { a } else { b },
    ))
}

/// Parallel sum (`qutil_uint_sum` family).
pub fn par_sum(rt: &Runtime, data: &[u64]) -> u64 {
    if data.len() <= REDUCE_GRAIN {
        return data.iter().sum();
    }
    let owned = std::sync::Arc::new(data.to_vec());
    let o = owned.clone();
    rt.loop_accum(0..owned.len(), 0u64, move |i| o[i], |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use lwt_sync::rng::{Rng, Xoshiro256StarStar};

    fn rt() -> Runtime {
        Runtime::init(Config {
            num_shepherds: 2,
            ..Config::default()
        })
    }

    #[test]
    fn sort_small_and_large() {
        let rt = rt();
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        for n in [0usize, 1, 2, 100, SORT_GRAIN + 1, 10_000] {
            let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            sort(&rt, &mut v);
            assert_eq!(v, expect, "n={n}");
        }
        rt.shutdown();
    }

    #[test]
    fn sort_already_sorted_and_reversed() {
        let rt = rt();
        let mut asc: Vec<u32> = (0..5000).collect();
        sort(&rt, &mut asc);
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        let mut desc: Vec<u32> = (0..5000).rev().collect();
        sort(&rt, &mut desc);
        assert!(desc.windows(2).all(|w| w[0] <= w[1]));
        rt.shutdown();
    }

    #[test]
    fn max_and_sum_match_sequential() {
        let rt = rt();
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let v: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        assert_eq!(par_max(&rt, &v), v.iter().copied().max());
        assert_eq!(par_sum(&rt, &v), v.iter().sum::<u64>());
        assert_eq!(par_max::<u64>(&rt, &[]), None);
        assert_eq!(par_sum(&rt, &[]), 0);
        rt.shutdown();
    }
}
