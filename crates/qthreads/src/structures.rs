//! Qthreads' distributed data structures.
//!
//! "A large number of distributed structures such as queues,
//! dictionaries, or pools are offered along with for loop and reduction
//! functionality" (paper §III-D). This module implements the three the
//! C library is best known for:
//!
//! * [`Sinc`] — `qt_sinc_t`: a count-down reduction sink for
//!   dynamically-created task trees.
//! * [`Dictionary`] — `qt_dictionary`: a concurrent hash map whose
//!   lookups can *wait for a key to appear*, FEB-style.
//! * [`QtQueue`] — `qt_queue`: a ULT-aware MPMC queue.
//!
//! All waiting is ULT-aware: inside a work unit the waiter yields, so
//! its worker keeps executing other units.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicUsize, Ordering};

use lwt_sync::SpinLock;
use lwt_ultcore::wait_until;

use crate::yield_now;

/// `qt_sinc_t`: a reduction sink over a dynamically growing set of
/// contributions.
///
/// Create with an identity and a reducer; [`Sinc::expect`] registers
/// upcoming contributions (callable from anywhere, including inside
/// contributing tasks — the dynamic-task-tree case `qt_sinc` exists
/// for); [`Sinc::submit`] folds one value in; [`Sinc::wait`] blocks
/// until the ledger balances and yields the reduced value.
pub struct Sinc<T> {
    remaining: AtomicUsize,
    acc: SpinLock<T>,
    reduce: Box<dyn Fn(&mut T, T) + Send + Sync>,
}

impl<T: Send> Sinc<T> {
    /// A sink with the given identity and reducer.
    #[must_use]
    pub fn new(identity: T, reduce: impl Fn(&mut T, T) + Send + Sync + 'static) -> Self {
        Sinc {
            remaining: AtomicUsize::new(0),
            acc: SpinLock::new(identity),
            reduce: Box::new(reduce),
        }
    }

    /// Register `n` future contributions (`qt_sinc_expect`).
    pub fn expect(&self, n: usize) {
        self.remaining.fetch_add(n, Ordering::AcqRel);
    }

    /// Fold one contribution in (`qt_sinc_submit`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if more values are submitted than expected.
    pub fn submit(&self, value: T) {
        (self.reduce)(&mut self.acc.lock(), value);
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "Sinc::submit without a matching expect");
    }

    /// Wait (ULT-aware) until all expected contributions arrived, then
    /// read the reduction with `f` (`qt_sinc_wait`).
    pub fn wait<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        wait_until(|| self.remaining.load(Ordering::Acquire) == 0);
        f(&self.acc.lock())
    }

    /// Outstanding contributions (racy; diagnostics only).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Relaxed)
    }
}

impl<T> std::fmt::Debug for Sinc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("qt::Sinc")
            .field("remaining", &self.remaining.load(Ordering::Relaxed))
            .finish()
    }
}

/// `qt_dictionary`: a bucketized concurrent hash map with FEB-flavored
/// blocking lookup.
///
/// `get_wait` parks the caller (yielding its worker) until some other
/// work unit `put`s the key — the dictionary equivalent of `readFF`,
/// and the idiom Qthreads programs use for dataflow tables.
pub struct Dictionary<K, V, S = RandomState> {
    buckets: Box<[SpinLock<HashMap<K, V>>]>,
    hasher: S,
}

impl<K: Hash + Eq + Clone, V: Clone> Dictionary<K, V> {
    /// A dictionary with the default hasher and bucket count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_buckets(64)
    }

    /// A dictionary with `buckets` buckets (rounded to a power of two).
    #[must_use]
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.max(1).next_power_of_two();
        Dictionary {
            buckets: (0..n).map(|_| SpinLock::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone, S: BuildHasher> Dictionary<K, V, S> {
    fn bucket(&self, key: &K) -> &SpinLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.buckets[h & (self.buckets.len() - 1)]
    }

    /// Insert or replace; returns the previous value
    /// (`qt_dictionary_put`).
    pub fn put(&self, key: K, value: V) -> Option<V> {
        self.bucket(&key).lock().insert(key, value)
    }

    /// Insert only if absent, returning the winning value
    /// (`qt_dictionary_put_if_absent`).
    pub fn put_if_absent(&self, key: K, value: V) -> V {
        let mut b = self.bucket(&key).lock();
        b.entry(key).or_insert(value).clone()
    }

    /// Non-blocking lookup (`qt_dictionary_get`).
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.bucket(key).lock().get(key).cloned()
    }

    /// Blocking lookup: wait (ULT-aware) until the key exists.
    pub fn get_wait(&self, key: &K) -> V {
        loop {
            if let Some(v) = self.get(key) {
                return v;
            }
            if lwt_ultcore::in_ult() {
                yield_now();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Remove a key (`qt_dictionary_delete`).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.bucket(key).lock().remove(key)
    }

    /// Total number of entries (takes every bucket lock; diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for Dictionary<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> std::fmt::Debug for Dictionary<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("qt::Dictionary")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

/// `qt_queue`: a ULT-aware MPMC FIFO.
pub struct QtQueue<T> {
    inner: SpinLock<std::collections::VecDeque<T>>,
}

impl<T> QtQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        QtQueue {
            inner: SpinLock::new(std::collections::VecDeque::new()),
        }
    }

    /// Enqueue at the back (`qt_queue_enqueue`).
    pub fn enqueue(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Non-blocking dequeue (`qt_queue_dequeue`).
    pub fn try_dequeue(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Blocking dequeue: waits (ULT-aware) for an element.
    pub fn dequeue(&self) -> T {
        loop {
            if let Some(v) = self.try_dequeue() {
                return v;
            }
            if lwt_ultcore::in_ult() {
                yield_now();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Number of queued elements (racy; diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue appears empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> Default for QtQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for QtQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("qt::Queue").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, Runtime};
    use lwt_fiber::StackSize;
    use std::sync::Arc;

    fn rt(sheps: usize) -> Runtime {
        Runtime::init(Config {
            num_shepherds: sheps,
            workers_per_shepherd: 1,
            stack_size: StackSize(32 * 1024),
        })
    }

    #[test]
    fn sinc_reduces_dynamic_tree() {
        let rt = rt(2);
        let sinc = Arc::new(Sinc::new(0u64, |acc, v| *acc += v));
        sinc.expect(4);
        let handles: Vec<_> = (0..4u64)
            .map(|p| {
                let (sinc, rt2) = (sinc.clone(), rt.clone());
                rt.fork_rr(move || {
                    // Each parent dynamically expects + spawns children.
                    sinc.expect(3);
                    for c in 0..3u64 {
                        let s = sinc.clone();
                        // Children submit their own contributions.
                        let _ = rt2.fork(move || s.submit(100 * c));
                    }
                    sinc.submit(p);
                })
            })
            .collect();
        let total = sinc.wait(|acc| *acc);
        for h in handles {
            h.join();
        }
        // 4 parents contribute 0+1+2+3 = 6; each spawns children worth
        // 0+100+200 = 300 → 4*300 + 6.
        assert_eq!(total, 1206);
        assert_eq!(sinc.remaining(), 0);
        rt.shutdown();
    }

    #[test]
    fn dictionary_basics() {
        let d: Dictionary<String, u32> = Dictionary::with_buckets(4);
        assert!(d.is_empty());
        assert_eq!(d.put("a".into(), 1), None);
        assert_eq!(d.put("a".into(), 2), Some(1));
        assert_eq!(d.get(&"a".into()), Some(2));
        assert_eq!(d.put_if_absent("a".into(), 9), 2);
        assert_eq!(d.put_if_absent("b".into(), 9), 9);
        assert_eq!(d.len(), 2);
        assert_eq!(d.remove(&"a".into()), Some(2));
        assert_eq!(d.get(&"a".into()), None);
    }

    #[test]
    fn dictionary_dataflow_get_wait() {
        let rt = rt(2);
        let d: Arc<Dictionary<u32, u32>> = Arc::new(Dictionary::new());
        // Consumers wait for keys produced by another work unit.
        let consumers: Vec<_> = (0..4)
            .map(|k| {
                let d = d.clone();
                rt.fork_rr(move || d.get_wait(&k))
            })
            .collect();
        let d2 = d.clone();
        rt.fork_rr(move || {
            for k in 0..4 {
                d2.put(k, k * 11);
            }
        })
        .join();
        for (k, c) in consumers.into_iter().enumerate() {
            assert_eq!(c.join(), k as u32 * 11);
        }
        rt.shutdown();
    }

    #[test]
    fn queue_mpmc_through_work_units() {
        let rt = rt(2);
        let q: Arc<QtQueue<usize>> = Arc::new(QtQueue::new());
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = q.clone();
                rt.fork_rr(move || {
                    for i in 0..50 {
                        q.enqueue(p * 50 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                rt.fork_rr(move || (0..50).map(|_| q.dequeue()).collect::<Vec<_>>())
            })
            .collect();
        for p in producers {
            p.join();
        }
        let mut all: Vec<usize> = consumers.into_iter().flat_map(|c| c.join()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..150).collect::<Vec<_>>());
        assert!(q.is_empty());
        rt.shutdown();
    }

    #[test]
    fn queue_debug_and_len() {
        let q = QtQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.len(), 2);
        assert!(format!("{q:?}").contains("len: 2"));
        assert_eq!(q.try_dequeue(), Some(1));
    }
}
