//! # lwt-qthreads — a Qthreads-model lightweight-thread runtime
//!
//! From-scratch Rust implementation of the programming model the paper
//! describes for Qthreads (Wheeler, Murphy & Thain): a **three-level
//! hierarchy** — unique in the paper's Table I — of
//!
//! * **Shepherds**: locality domains, each owning one work-unit queue.
//!   Bind one per node, per socket, or per CPU; the paper's evaluation
//!   settles on *one shepherd per CPU* for most benchmarks.
//! * **Workers**: OS threads executing work units, one or more per
//!   shepherd ([`Config::workers_per_shepherd`]).
//! * **Work units**: stackful, yieldable ULTs ([`Runtime::fork`]).
//!
//! Synchronization is word-granularity **full/empty bits**: a fork
//! returns a handle whose join performs `readFF` on the ULT's return
//! word ([`Handle::join`]), and any address can carry a FEB through the
//! runtime's [`FebTable`] ([`Runtime::feb`]) — including the "hidden
//! synchronization" cost the paper warns about. Work can be pushed to
//! the caller's shepherd (`qthread_fork` ≙ [`Runtime::fork`]), to a
//! specific shepherd (`qthread_fork_to` ≙ [`Runtime::fork_to`]), or
//! round-robin over shepherds ([`Runtime::fork_rr`], the paper's
//! microbenchmark dispatch). Loop and reduction helpers
//! ([`Runtime::loop_par`], [`Runtime::loop_accum`]) mirror
//! `qt_loop`/`qt_loopaccum`.
//!
//! ## Example
//!
//! ```
//! use lwt_qthreads::{Config, Runtime};
//!
//! let rt = Runtime::init(Config { num_shepherds: 2, ..Config::default() });
//! let h = rt.fork(|| 21 * 2);
//! assert_eq!(h.join(), 42);
//! let sum = rt.loop_accum(0..100usize, 0usize, |i| i, |a, b| a + b);
//! assert_eq!(sum, 4950);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]

pub mod qutil;
pub mod structures;

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lwt_fiber::StackSize;
use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;
use lwt_sched::{ParkGroup, ReadyQueue, RoundRobin};
use lwt_sync::{FebCell, FebTable, SpinLock};
use lwt_ultcore::{
    enter_worker, join_within, run_unit, wait_until, DrainError, PollTask, ReadyUnit, Requeue,
    ResultCell, Straggler, TaskResched, UltCore, ABANDON_GRACE,
};

pub use lwt_sync::FebTable as Feb;
pub use lwt_ultcore::{current_worker, in_ult, yield_now, JoinError};

/// Runtime configuration (`qthread_initialize` environment).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of shepherds (`QTHREAD_NUM_SHEPHERDS`).
    pub num_shepherds: usize,
    /// Workers per shepherd (`QTHREAD_NUM_WORKERS_PER_SHEPHERD`).
    pub workers_per_shepherd: usize,
    /// ULT stack size (`QTHREAD_STACK_SIZE`).
    pub stack_size: StackSize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            num_shepherds: std::thread::available_parallelism().map_or(4, usize::from),
            workers_per_shepherd: 1,
            stack_size: StackSize::DEFAULT,
        }
    }
}

struct RtInner {
    /// One ready queue per *worker*; a shepherd's queue of the paper
    /// is realised as its workers' queues plus same-shepherd stealing,
    /// so work still never leaves its locality domain.
    queues: Vec<ReadyQueue<ReadyUnit>>,
    /// Shepherd id → the global worker ids it owns.
    shepherd_workers: Vec<Vec<usize>>,
    /// Per-shepherd round-robin for external dispatch into it.
    shepherd_rr: Vec<RoundRobin>,
    /// Global worker id → shepherd id.
    worker_shepherd: Vec<usize>,
    /// Idle-worker parking (wake-one). Notifies pass the target worker
    /// as the scan hint: stealing is shepherd-scoped, and worker ids
    /// are laid out shepherd-major, so the nearest announced sleeper is
    /// one that can actually reach the work.
    park: ParkGroup,
    threads: SpinLock<Vec<Option<std::thread::JoinHandle<()>>>>,
    stop: AtomicBool,
    /// Bounded-drain escape hatch: workers exit even with (wedged)
    /// units still queued once a `shutdown_within` deadline expires.
    abandon: AtomicBool,
    rr: RoundRobin,
    stack_size: StackSize,
    feb: FebTable,
    shut: AtomicBool,
}

/// The Qthreads-model runtime. Cheap to clone.
///
/// The calling thread is external: it forks and joins but does not
/// execute work units (the paper's master-thread pattern).
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

/// Handle to a forked work unit; joining performs `readFF` on the
/// unit's full/empty return word.
pub struct Handle<T> {
    ult: Arc<UltCore>,
    result: Arc<ResultCell<T>>,
    ret: Arc<FebCell<u64>>,
}

impl<T> Handle<T> {
    /// Wait for completion (`qthread_readFF` on the return word) and
    /// take the result, surfacing an escaped panic as a [`JoinError`]
    /// instead of re-raising it.
    ///
    /// # Errors
    ///
    /// [`JoinError`] carrying the panic payload.
    pub fn try_join(self) -> Result<T, JoinError> {
        // The FEB is the paper-faithful join signal … (the FebCell
        // itself emits the FebBlock/FebWake ring events, span-tagged;
        // the counters stay here because they count *joins* that
        // blocked, the §IX-C formula the fidelity tests assert).
        if self.ret.is_full() {
            self.ret.read_ff(relax());
        } else {
            COUNTERS.feb_blocks.inc();
            self.ret.read_ff(relax());
            COUNTERS.feb_wakes.inc();
        }
        // … and TERMINATED is the memory-safety contract for the slot.
        wait_until(|| self.ult.is_terminated());
        // Causal join edge: this context observed the unit's completion.
        lwt_metrics::span::on_join(self.ult.span_id());
        if let Some(p) = self.ult.take_panic() {
            return Err(JoinError::new(p));
        }
        // SAFETY: TERMINATED observed; we consume the only handle.
        Ok(unsafe { self.result.take() }.expect("qthreads result missing"))
    }

    /// Wait for completion and take the result.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that escaped the work unit's closure.
    pub fn join(self) -> T {
        self.try_join().unwrap_or_else(|e| e.resume())
    }

    /// Non-consuming completion test (`qthread_feb_status`).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.ret.is_full()
    }
}

impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("qthreads::Handle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Relax strategy for FEB waits: yield the ULT when inside one.
fn relax() -> impl FnMut() {
    let inside = in_ult();
    let mut escalate = lwt_sync::AdaptiveRelax::new();
    move || {
        if inside {
            yield_now();
        }
        escalate.relax();
    }
}

impl Runtime {
    /// Initialize shepherds and workers (`qthread_initialize`).
    ///
    /// # Panics
    ///
    /// Panics if either hierarchy dimension is zero.
    #[must_use]
    pub fn init(config: Config) -> Self {
        assert!(config.num_shepherds > 0, "need at least one shepherd");
        assert!(config.workers_per_shepherd > 0, "need at least one worker");
        let mut worker_shepherd = Vec::new();
        let mut shepherd_workers = vec![Vec::new(); config.num_shepherds];
        for s in 0..config.num_shepherds {
            for _ in 0..config.workers_per_shepherd {
                shepherd_workers[s].push(worker_shepherd.len());
                worker_shepherd.push(s);
            }
        }
        let inner = Arc::new(RtInner {
            queues: (0..worker_shepherd.len()).map(|_| ReadyQueue::new()).collect(),
            shepherd_workers,
            shepherd_rr: (0..config.num_shepherds)
                .map(|_| RoundRobin::new(config.workers_per_shepherd))
                .collect(),
            park: ParkGroup::new(worker_shepherd.len()),
            worker_shepherd,
            threads: SpinLock::new(Vec::new()),
            stop: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
            rr: RoundRobin::new(config.num_shepherds),
            stack_size: config.stack_size,
            feb: FebTable::default(),
            shut: AtomicBool::new(false),
        });
        let rt = Runtime { inner };
        let mut threads = rt.inner.threads.lock();
        for (worker_id, &shep) in rt.inner.worker_shepherd.iter().enumerate() {
            let inner = rt.inner.clone();
            COUNTERS.os_threads_spawned.inc();
            threads.push(Some(
                std::thread::Builder::new()
                    .name(format!("qth-s{shep}-w{worker_id}"))
                    .spawn(move || worker_main(&inner, worker_id, shep))
                    .expect("spawn qthreads worker"),
            ));
        }
        drop(threads);
        rt
    }

    /// [`Runtime::init`] with defaults (one shepherd per CPU, one
    /// worker each — the paper's preferred configuration).
    #[must_use]
    pub fn init_default() -> Self {
        Self::init(Config::default())
    }

    /// Number of shepherds.
    #[must_use]
    pub fn num_shepherds(&self) -> usize {
        self.inner.shepherd_workers.len()
    }

    /// Total number of workers.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.inner.worker_shepherd.len()
    }

    /// The address-keyed full/empty-bit table (`qthread_readFF` &
    /// friends on arbitrary words).
    #[must_use]
    pub fn feb(&self) -> &FebTable {
        &self.inner.feb
    }

    /// Fork into the *caller's* shepherd (`qthread_fork`): the current
    /// worker's shepherd from inside a work unit, shepherd 0 from an
    /// external thread.
    pub fn fork<T, F>(&self, f: F) -> Handle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let shep = current_worker()
            .and_then(|w| self.inner.worker_shepherd.get(w).copied())
            .unwrap_or(0);
        self.fork_to(shep, f)
    }

    /// Fork round-robin over shepherds — the `qthread_fork_to`
    /// dispatch the paper's microbenchmarks use from the master thread.
    pub fn fork_rr<T, F>(&self, f: F) -> Handle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.fork_to(self.inner.rr.next(), f)
    }

    /// Fork into a specific shepherd's queue (`qthread_fork_to`).
    ///
    /// # Panics
    ///
    /// Panics if `shepherd` is out of range.
    pub fn fork_to<T, F>(&self, shepherd: usize, f: F) -> Handle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let result = ResultCell::new();
        let ret = Arc::new(FebCell::new());
        let (slot, word) = (result.clone(), ret.clone());
        let ult = UltCore::new(self.inner.stack_size, move || {
            // Fill the return word even if `f` panics (drop guard runs
            // during unwinding): joiners' readFF must always unblock. 0
            // is the aligned_t "success" value qthread_fork writes.
            struct FillOnExit(Arc<FebCell<u64>>);
            impl Drop for FillOnExit {
                fn drop(&mut self) {
                    self.0.write_ef(0, std::hint::spin_loop);
                }
            }
            let _fill = FillOnExit(word);
            let value = f();
            // SAFETY: sole writer, before TERMINATED.
            unsafe { slot.put(value) };
        });
        // `arg` = target shepherd: the fork_to dispatch decision.
        emit(EventKind::UltSpawn, shepherd as u64);
        // A fork from a worker already inside the target shepherd lands
        // on that worker's own deque (zero-contention fast path);
        // everything else is injected round-robin over the shepherd's
        // workers.
        let target = match current_worker() {
            Some(w) if self.inner.worker_shepherd.get(w) == Some(&shepherd) => w,
            _ => {
                let workers = &self.inner.shepherd_workers[shepherd];
                workers[self.inner.shepherd_rr[shepherd].next()]
            }
        };
        self.inner.queues[target].push(ult.clone().into());
        // Push first, then wake at most one sleeper near the target
        // (see ParkGroup docs for why this order prevents lost wakes).
        self.inner.park.notify_near(target);
        Handle { ult, result, ret }
    }

    /// Enqueue a stackless poll task, reusing `qthread_fork`'s
    /// placement: the caller's own deque when called from a worker
    /// (zero-contention fast path), otherwise round-robin over the
    /// shepherds like an external fork.
    pub fn post_task(&self, task: Arc<dyn PollTask>) {
        let target = match current_worker() {
            Some(w) if w < self.inner.queues.len() => w,
            _ => {
                let shepherd = self.inner.rr.next();
                let workers = &self.inner.shepherd_workers[shepherd];
                workers[self.inner.shepherd_rr[shepherd].next()]
            }
        };
        self.post_task_to(target, task);
    }

    /// Enqueue a stackless poll task onto a specific *worker's* queue
    /// (finer-grained than `fork_to`'s shepherd targeting: a waker must
    /// put the task exactly where the placement policy said).
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn post_task_to(&self, worker: usize, task: Arc<dyn PollTask>) {
        self.inner.queues[worker].push(ReadyUnit::Task(task));
        self.inner.park.notify_near(worker);
    }

    /// A reschedule hook posting via [`Runtime::post_task`]; holds the
    /// runtime alive so late wakes (after user drop) still land.
    #[must_use]
    pub fn task_poster(&self) -> TaskResched {
        let rt = self.clone();
        Arc::new(move |t| rt.post_task(t))
    }

    /// A reschedule hook pinning every (re)schedule to `worker`.
    #[must_use]
    pub fn task_poster_to(&self, worker: usize) -> TaskResched {
        let rt = self.clone();
        Arc::new(move |t| rt.post_task_to(worker, t))
    }

    /// Parallel for over `range` (`qt_loop`): one work unit per worker,
    /// statically chunked; joins before returning.
    pub fn loop_par<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let n = range.len();
        if n == 0 {
            return;
        }
        let workers = self.num_workers().max(1);
        let chunk = n.div_ceil(workers);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = f.clone();
                let lo = (range.start + w * chunk).min(range.end);
                let hi = (range.start + (w + 1) * chunk).min(range.end);
                self.fork_rr(move || {
                    for i in lo..hi {
                        f(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    }

    /// Parallel reduction over `range` (`qt_loopaccum`). `identity`
    /// must be a neutral element of `reduce` (it seeds every partial
    /// accumulator); empty ranges return it unchanged.
    pub fn loop_accum<T, F, R>(&self, range: Range<usize>, identity: T, f: F, reduce: R) -> T
    where
        T: Send + Clone + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
        R: Fn(T, T) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let reduce = Arc::new(reduce);
        let n = range.len();
        if n == 0 {
            return identity;
        }
        let workers = self.num_workers().max(1);
        let chunk = n.div_ceil(workers);
        let handles: Vec<_> = (0..workers)
            .filter_map(|w| {
                let lo = (range.start + w * chunk).min(range.end);
                let hi = (range.start + (w + 1) * chunk).min(range.end);
                if lo >= hi {
                    return None;
                }
                let f = f.clone();
                let reduce = reduce.clone();
                let id = identity.clone();
                Some(self.fork_rr(move || {
                    let mut acc = id;
                    for i in lo..hi {
                        acc = reduce(acc, f(i));
                    }
                    acc
                }))
            })
            .collect();
        let mut acc = identity;
        for h in handles {
            acc = reduce(acc, h.join());
        }
        acc
    }

    /// Stop all workers and join their OS threads
    /// (`qthread_finalize`). Idempotent. Unbounded: a ULT wedged on a
    /// never-filled FEB keeps its queue occupied forever — use
    /// [`Runtime::shutdown_within`] to degrade gracefully instead.
    pub fn shutdown(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.stop.store(true, Ordering::Release);
        // A fully parked pool must notice the flag now, not after a
        // backstop timeout.
        self.inner.park.unpark_all();
        let mut threads = self.inner.threads.lock();
        for t in threads.iter_mut() {
            if let Some(t) = t.take() {
                t.join().expect("qthreads worker panicked");
            }
        }
    }

    /// [`Runtime::shutdown`] with a drain deadline: wait up to
    /// `deadline` for the workers to drain their queues, then order
    /// them to abandon the rest and report stragglers. Workers are
    /// joined either way — on `Err` nothing is still running, but the
    /// listed units (typically ULTs wedged on never-filled FEBs) never
    /// completed. Idempotent (later calls return `Ok`).
    ///
    /// # Errors
    ///
    /// [`DrainError`] when the deadline expired with units still
    /// queued or running.
    pub fn shutdown_within(&self, deadline: std::time::Duration) -> Result<(), DrainError> {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.inner.stop.store(true, Ordering::Release);
        // Wake every sleeper *before* the drain deadline starts: a
        // fully parked pool drains instantly instead of eating the
        // deadline in 20–200 ms backstop increments.
        self.inner.park.unpark_all();
        let handles: Vec<_> = {
            let mut threads = self.inner.threads.lock();
            threads.iter_mut().filter_map(Option::take).collect()
        };
        let timed_out = !join_within(&handles, deadline);
        if timed_out {
            self.inner.abandon.store(true, Ordering::Release);
            self.inner.park.unpark_all();
            // Grace for workers idling between units to notice the flag.
            join_within(&handles, ABANDON_GRACE);
        }
        for t in handles {
            if t.is_finished() {
                t.join().expect("qthreads worker panicked");
            } else {
                // Wedged inside a unit: detach rather than hang (never
                // kill); the thread's Arcs keep its shared state alive.
                drop(t);
            }
        }
        if timed_out {
            let stragglers = self
                .inner
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(worker, q)| Straggler {
                    worker,
                    pending: q.len(),
                    what: "shepherd ready queue",
                })
                .collect();
            Err(DrainError {
                waited: deadline,
                stragglers,
            })
        } else {
            Ok(())
        }
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.park.unpark_all();
        for t in self.threads.lock().iter_mut() {
            if let Some(t) = t.take() {
                let _ = t.join();
            }
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("qthreads::Runtime")
            .field("shepherds", &self.num_shepherds())
            .field("workers", &self.num_workers())
            .finish()
    }
}

fn worker_main(inner: &Arc<RtInner>, worker_id: usize, shep: usize) {
    let requeue: Arc<dyn Requeue> = {
        let q = inner.clone();
        // Yielded ULTs go to the *back* of their worker's queue (the
        // inbox) so forked children run before a yield-looping joiner.
        Arc::new(move |w: usize, u: Arc<UltCore>| {
            q.queues[w].inject(u.into());
            q.park.notify_near(w);
        })
    };
    let _guard = enter_worker(worker_id, requeue);
    inner.queues[worker_id].bind();
    // Stealing stays within the shepherd: work never leaves its
    // locality domain (the hierarchy the paper's Table I highlights).
    let siblings: Vec<usize> = inner.shepherd_workers[shep]
        .iter()
        .copied()
        .filter(|&w| w != worker_id)
        .collect();
    let mut backoff = lwt_sync::Backoff::new();
    let heartbeat = lwt_chaos::register_worker("qthreads", worker_id);
    loop {
        heartbeat.beat();
        if inner.abandon.load(Ordering::Acquire) {
            break;
        }
        let unit = inner.queues[worker_id].pop().or_else(|| {
            lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Steal);
            for &v in &siblings {
                COUNTERS.steal_attempts.inc();
                if let Some(u) = inner.queues[v].steal() {
                    COUNTERS.steal_hits.inc();
                    emit(EventKind::StealHit, v as u64);
                    return Some(u);
                }
            }
            None
        });
        match unit {
            Some(u) => {
                if lwt_chaos::should_inject(lwt_chaos::FaultSite::YieldPoint) {
                    std::thread::yield_now();
                }
                backoff.reset();
                run_unit(&u);
            }
            None => {
                if inner.stop.load(Ordering::Acquire) {
                    break;
                }
                lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Idle);
                // Reactor idle hook: collect I/O readiness (wakes
                // repost through this runtime) before backing off.
                if lwt_sched::io_poll() > 0 {
                    backoff.reset();
                    continue;
                }
                backoff.spin();
                if backoff.is_saturated() {
                    // The sibling sweep proved the shepherd dry: sleep
                    // instead of burning the core. The re-check only
                    // counts work this worker can reach — its own
                    // queue plus sibling deques; other shepherds'
                    // queues are invisible by design.
                    let _ = inner.park.park(worker_id, Some(&heartbeat), || {
                        inner.queues[worker_id].len()
                            + siblings
                                .iter()
                                .map(|&v| inner.queues[v].stealable_len())
                                .sum::<usize>()
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn rt(sheps: usize, wps: usize) -> Runtime {
        Runtime::init(Config {
            num_shepherds: sheps,
            workers_per_shepherd: wps,
            stack_size: StackSize(32 * 1024),
        })
    }

    #[test]
    fn fork_join_returns_value() {
        let rt = rt(2, 1);
        assert_eq!(rt.fork(|| 7u64).join(), 7);
        rt.shutdown();
    }

    #[test]
    fn hierarchy_dimensions_report() {
        let rt = rt(2, 3);
        assert_eq!(rt.num_shepherds(), 2);
        assert_eq!(rt.num_workers(), 6);
        rt.shutdown();
    }

    #[test]
    fn fork_to_targets_shepherd() {
        let rt = rt(3, 1);
        for s in 0..3 {
            let h = rt.fork_to(s, move || current_worker());
            // Worker ids are laid out shepherd-major with 1 worker per
            // shepherd, so worker id == shepherd id.
            assert_eq!(h.join(), Some(s));
        }
        rt.shutdown();
    }

    #[test]
    fn fork_rr_round_robins() {
        let rt = rt(2, 1);
        let a = rt.fork_rr(current_worker).join();
        let b = rt.fork_rr(current_worker).join();
        let c = rt.fork_rr(current_worker).join();
        assert_eq!(a, c);
        assert_ne!(a, b);
        rt.shutdown();
    }

    #[test]
    fn many_forks_complete() {
        let rt = rt(2, 2);
        let handles: Vec<_> = (0..300).map(|i| rt.fork_rr(move || i)).collect();
        let sum: usize = handles.into_iter().map(Handle::join).sum();
        assert_eq!(sum, 300 * 299 / 2);
        rt.shutdown();
    }

    #[test]
    fn nested_fork_from_ult_uses_own_shepherd() {
        let rt = rt(2, 1);
        let rt2 = rt.clone();
        let h = rt.fork_to(1, move || {
            // qthread_fork from inside lands on the caller's shepherd.
            rt2.fork(|| current_worker()).join()
        });
        assert_eq!(h.join(), Some(1));
        rt.shutdown();
    }

    #[test]
    fn ults_yield_cooperatively() {
        let rt = rt(1, 1);
        let h = rt.fork(|| {
            for _ in 0..5 {
                yield_now();
            }
            "done"
        });
        assert_eq!(h.join(), "done");
        rt.shutdown();
    }

    #[test]
    fn feb_table_synchronizes_units() {
        let rt = rt(2, 1);
        let addr = 0xABCD_usize;
        let rt2 = rt.clone();
        let producer = rt.fork(move || {
            rt2.feb().write_ef(addr, 31337, || yield_now());
        });
        let rt3 = rt.clone();
        let consumer = rt.fork(move || rt3.feb().read_ff(addr, || yield_now()));
        assert_eq!(consumer.join(), 31337);
        producer.join();
        rt.shutdown();
    }

    #[test]
    fn loop_par_covers_every_index() {
        let rt = rt(2, 2);
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..500).map(|_| AtomicUsize::new(0)).collect());
        let h2 = hits.clone();
        rt.loop_par(0..500, move |i| {
            h2[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        rt.shutdown();
    }

    #[test]
    fn loop_accum_reduces() {
        let rt = rt(3, 1);
        let total = rt.loop_accum(1..101usize, 0usize, |i| i * i, |a, b| a + b);
        assert_eq!(total, (1..101).map(|i| i * i).sum());
        rt.shutdown();
    }

    #[test]
    fn empty_loop_is_fine() {
        let rt = rt(2, 1);
        rt.loop_par(5..5, |_| panic!("must not run"));
        assert_eq!(rt.loop_accum(5..5, 42, |_| 0, |a, b| a + b), 42);
        rt.shutdown();
    }

    #[test]
    fn panic_propagates_at_join() {
        let rt = rt(1, 1);
        let h = rt.fork(|| panic!("qth boom"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()))
            .expect_err("join must re-raise");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"qth boom"));
        rt.shutdown();
    }

    #[test]
    fn shutdown_idempotent_and_drop_safe() {
        let rt = rt(1, 1);
        rt.fork(|| ()).join();
        rt.shutdown();
        rt.shutdown();
        let rt2 = rt.clone();
        drop(rt);
        drop(rt2);
    }
}
