//! Teams, regions, and the two task systems (gcc / icc style).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lwt_sched::{ChaseLev, SharedQueue, Stealer, Worker};
use lwt_sync::{SenseBarrier, SpinLock};

/// Which OpenMP runtime's behavior set to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Flavor {
    /// libgomp-like: shared task queue, cutoff 64 × team size, nested
    /// regions spawn fresh threads.
    #[default]
    Gcc,
    /// Intel-like: per-thread task deques with stealing, cutoff 256 per
    /// queue, nested regions reuse idle threads.
    Icc,
}

/// `OMP_WAIT_POLICY`: how idle threads wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitPolicy {
    /// Spin. The OpenMP default; maximizes queue contention (the paper
    /// switches gcc task benchmarks *away* from this).
    Active,
    /// Yield to the kernel (and park between regions). What the paper
    /// sets for its gcc task measurements.
    #[default]
    Passive,
}

/// gcc's task cutoff: beyond 64 tasks per team thread, new tasks are
/// executed inline instead of queued (paper §VII-B).
const GCC_CUTOFF_PER_THREAD: usize = 64;
/// icc's task cutoff: 256 queued tasks per thread queue (paper §VII-B).
const ICC_CUTOFF: usize = 256;

/// A queued explicit task: the closure plus its causal trace span
/// (0 when tracing was off at submission).
struct Task {
    span: u64,
    f: Box<dyn FnOnce() + Send + 'static>,
}

/// One parallel-region team.
pub(crate) struct Team {
    size: usize,
    flavor: Flavor,
    wait: WaitPolicy,
    barrier: SenseBarrier,
    /// Shared task queue (gcc flavor).
    gcc_queue: SharedQueue<Task>,
    /// Per-member thief handles (icc flavor), registered at the fork
    /// barrier.
    stealers: SpinLock<Vec<Option<Stealer<Task>>>>,
    /// Tasks queued or running; zero means task-quiescent.
    outstanding: AtomicUsize,
    /// Team-wide lock backing `#pragma omp critical`.
    critical: SpinLock<()>,
    /// Which `single` constructs (by per-thread sequence number) have
    /// already been claimed.
    single_claims: SpinLock<std::collections::HashSet<usize>>,
}

/// Per-member (per team thread) region state.
struct MemberCtx {
    team: Arc<Team>,
    index: usize,
    /// This member's own task deque (icc flavor).
    worker: Option<Worker<Task>>,
    /// Per-thread count of `single` constructs encountered, pairing the
    /// team's members at the same program point.
    single_seq: Cell<usize>,
}

thread_local! {
    /// Innermost region membership of this OS thread (nested regions
    /// save and restore the previous value).
    static CURRENT: Cell<*const MemberCtx> = const { Cell::new(std::ptr::null()) };
}

/// Whether the calling thread is inside a parallel region.
pub(crate) fn in_region() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

impl Team {
    pub(crate) fn new(size: usize, flavor: Flavor, wait: WaitPolicy) -> Arc<Team> {
        Arc::new(Team {
            size,
            flavor,
            wait,
            barrier: SenseBarrier::new(size),
            gcc_queue: SharedQueue::new(),
            stealers: SpinLock::new((0..size).map(|_| None).collect()),
            outstanding: AtomicUsize::new(0),
            critical: SpinLock::new(()),
            single_claims: SpinLock::new(std::collections::HashSet::new()),
        })
    }

    fn relax(&self) {
        match self.wait {
            WaitPolicy::Active => std::hint::spin_loop(),
            WaitPolicy::Passive => std::thread::yield_now(),
        }
    }

    /// Run one member of the region: fork barrier, body, task drain,
    /// join barrier.
    pub(crate) fn member(self: &Arc<Team>, index: usize, f: &(dyn Fn(&Ctx) + Sync)) {
        self.member_with(index, f, || {});
    }

    /// [`Team::member`] with a hook that runs after this member is
    /// task-quiescent but *before* it arrives at the end barrier.
    /// Everything the hook does is therefore visible to the other
    /// members once they pass the barrier — the ordering the nested
    /// pool relies on to re-queue workers race-free.
    pub(crate) fn member_with(
        self: &Arc<Team>,
        index: usize,
        f: &(dyn Fn(&Ctx) + Sync),
        before_join: impl FnOnce(),
    ) {
        let worker = match self.flavor {
            Flavor::Gcc => None,
            Flavor::Icc => {
                let (w, s) = ChaseLev::new();
                self.stealers.lock()[index] = Some(s);
                Some(w)
            }
        };
        let member = MemberCtx {
            team: self.clone(),
            index,
            worker,
            single_seq: Cell::new(0),
        };
        let prev = CURRENT.with(|c| c.replace(&member));
        // Fork barrier: all stealers registered before anyone works.
        self.barrier.wait(|| self.relax());

        let ctx = Ctx { member: &member };
        lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Busy);
        f(&ctx);
        lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Dispatch);

        // Implicit end barrier, draining outstanding tasks first.
        drain_tasks(&member);
        before_join();
        self.barrier.wait(|| self.relax());

        CURRENT.with(|c| c.set(prev));
        if self.flavor == Flavor::Icc {
            self.stealers.lock()[index] = None;
        }
    }
}

/// Pop the next runnable task for `member` (own queue, then steal).
fn next_task(member: &MemberCtx) -> Option<Task> {
    match member.team.flavor {
        Flavor::Gcc => member.team.gcc_queue.pop(),
        Flavor::Icc => {
            if let Some(w) = &member.worker {
                if let Some(t) = w.pop() {
                    return Some(t);
                }
            }
            // Work stealing: sweep the other members' deques.
            lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Steal);
            let stealers = member.team.stealers.lock();
            let n = stealers.len();
            for off in 1..n {
                let v = (member.index + off) % n;
                if let Some(Some(s)) = stealers.get(v) {
                    lwt_metrics::registry::COUNTERS.steal_attempts.inc();
                    lwt_metrics::registry::emit(
                        lwt_metrics::EventKind::StealAttempt,
                        v as u64,
                    );
                    if let Some(t) = s.steal() {
                        lwt_metrics::registry::COUNTERS.steal_hits.inc();
                        lwt_metrics::registry::emit(lwt_metrics::EventKind::StealHit, v as u64);
                        return Some(t);
                    }
                }
            }
            None
        }
    }
}

fn run_task(member: &MemberCtx, task: Task) {
    lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Busy);
    if task.span != 0 {
        // Restore the previous span afterwards: cutoff paths run tasks
        // inline inside other tasks (or the region body).
        let prev = lwt_metrics::span::set_current(task.span);
        lwt_metrics::emit(lwt_metrics::EventKind::TaskletExec, 0);
        (task.f)();
        lwt_metrics::span::on_complete(task.span);
        lwt_metrics::span::set_current(prev);
    } else {
        (task.f)();
    }
    lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Dispatch);
    member.team.outstanding.fetch_sub(1, Ordering::AcqRel);
}

/// Execute tasks until the team is task-quiescent.
fn drain_tasks(member: &MemberCtx) {
    while member.team.outstanding.load(Ordering::Acquire) > 0 {
        match next_task(member) {
            Some(t) => run_task(member, t),
            None => {
                lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Idle);
                member.team.relax();
            }
        }
    }
}

/// Per-thread view of the enclosing parallel region
/// (`omp_get_thread_num` and friends).
pub struct Ctx<'a> {
    member: &'a MemberCtx,
}

impl Ctx<'_> {
    /// This thread's index within the team (`omp_get_thread_num`).
    #[must_use]
    pub fn thread_num(&self) -> usize {
        self.member.index
    }

    /// Team size (`omp_get_num_threads`).
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.member.team.size
    }

    /// Whether this is thread 0 — the `#pragma omp master` /
    /// `single`-region guard used by the paper's task microbenchmarks.
    #[must_use]
    pub fn is_master(&self) -> bool {
        self.member.index == 0
    }

    /// `#pragma omp task`: queue `f` per the flavor's policy, or run it
    /// inline once the cutoff triggers.
    pub fn task<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        submit_task(self.member, Box::new(f));
    }

    /// `#pragma omp taskwait` (taskgroup-style): execute and wait until
    /// the whole team is task-quiescent.
    pub fn taskwait(&self) {
        drain_tasks(self.member);
    }

    /// Explicit `#pragma omp barrier`.
    pub fn barrier(&self) {
        let team = &self.member.team;
        team.barrier.wait(|| team.relax());
    }

    /// `#pragma omp critical`: run `f` under the team-wide mutual
    /// exclusion lock.
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.member.team.critical.lock();
        f()
    }

    /// `#pragma omp single`: exactly one team thread (the first to
    /// arrive at this construct) runs `f`; the others get `None`.
    ///
    /// All team threads must encounter the same sequence of `single`
    /// constructs (the usual OpenMP well-formedness rule) — pairing is
    /// by per-thread arrival count.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        let seq = self.member.single_seq.get();
        self.member.single_seq.set(seq + 1);
        let claimed = self.member.team.single_claims.lock().insert(seq);
        if claimed {
            Some(f())
        } else {
            None
        }
    }

    /// A `'static`, shareable handle for creating tasks from inside
    /// other tasks (nested task parallelism).
    #[must_use]
    pub fn team_handle(&self) -> TeamHandle {
        TeamHandle {
            team: self.member.team.clone(),
        }
    }
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("omp::Ctx")
            .field("thread_num", &self.thread_num())
            .field("num_threads", &self.num_threads())
            .finish()
    }
}

fn submit_task(member: &MemberCtx, f: Box<dyn FnOnce() + Send + 'static>) {
    let team = &member.team;
    let task = Task {
        span: lwt_metrics::span::on_spawn(),
        f,
    };
    team.outstanding.fetch_add(1, Ordering::AcqRel);
    match team.flavor {
        Flavor::Gcc => {
            if team.gcc_queue.len() >= GCC_CUTOFF_PER_THREAD * team.size {
                // Cutoff: execute sequentially instead of queueing.
                run_task(member, task);
            } else {
                team.gcc_queue.push(task);
            }
        }
        Flavor::Icc => match &member.worker {
            Some(w) if w.len() < ICC_CUTOFF => w.push(task),
            _ => run_task(member, task),
        },
    }
}

/// Owner-independent task submission handle (see
/// [`Ctx::team_handle`]).
#[derive(Clone)]
pub struct TeamHandle {
    team: Arc<Team>,
}

impl TeamHandle {
    /// Create a task on the calling thread's member context if it
    /// belongs to this team; tasks created from foreign threads run
    /// inline.
    pub fn task<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let cur = CURRENT.with(Cell::get);
        if !cur.is_null() {
            // SAFETY: CURRENT points at a live MemberCtx owned by an
            // active region frame on this thread.
            let member = unsafe { &*cur };
            if Arc::ptr_eq(&member.team, &self.team) {
                submit_task(member, Box::new(f));
                return;
            }
        }
        // Not a member (or a different team): run inline.
        f();
    }
}

impl std::fmt::Debug for TeamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("omp::TeamHandle")
            .field("size", &self.team.size)
            .finish()
    }
}

/// A lifetime-erased region body paired with its team, handed to pool
/// workers.
pub(crate) struct RegionJob {
    team: Arc<Team>,
    f: *const (dyn Fn(&Ctx) + Sync),
}

// SAFETY: the closure behind `f` is Sync and the region's caller blocks
// until every member passed the end barrier, bounding all use.
unsafe impl Send for RegionJob {}
// SAFETY: see above.
unsafe impl Sync for RegionJob {}

impl Clone for RegionJob {
    fn clone(&self) -> Self {
        RegionJob {
            team: self.team.clone(),
            f: self.f,
        }
    }
}

impl RegionJob {
    /// Erase the body's lifetime.
    ///
    /// # Safety
    ///
    /// The caller must block until the region completes (every member
    /// passes the end barrier) while `f` stays alive — `parallel`'s
    /// structure guarantees this.
    pub(crate) unsafe fn erase(f: &(dyn Fn(&Ctx) + Sync), team: Arc<Team>) -> Self {
        // SAFETY(transmute): extends the borrow to 'static; the
        // contract above bounds all actual use to the region's scope.
        let f: &'static (dyn Fn(&Ctx) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(&Ctx) + Sync), &'static (dyn Fn(&Ctx) + Sync)>(f)
        };
        RegionJob {
            team,
            f: f as *const _,
        }
    }

    pub(crate) fn team_size(&self) -> usize {
        self.team.size
    }

    /// Run member `index` of the region.
    ///
    /// # Safety
    ///
    /// See [`RegionJob::erase`]: the body must still be alive, which
    /// holds while the region's caller is blocked in its own member.
    pub(crate) unsafe fn run_member(&self, index: usize) {
        // SAFETY: forwarded contract.
        unsafe { self.run_member_with(index, || {}) }
    }

    /// Run member `index` of the region; `before_join` fires after the
    /// member drains its tasks, just before the end barrier (see
    /// [`Team::member_with`]).
    ///
    /// # Safety
    ///
    /// See [`RegionJob::erase`]: the body must still be alive, which
    /// holds while the region's caller is blocked in its own member.
    pub(crate) unsafe fn run_member_with(&self, index: usize, before_join: impl FnOnce()) {
        // SAFETY: forwarded contract.
        let f = unsafe { &*self.f };
        self.team.member_with(index, f, before_join);
    }
}
