//! Observability counters backing the paper's thread-count claims.
//!
//! The paper's §IX-C: with T = 36 and a 1,000-iteration nested outer
//! loop, gcc creates 36 + 1000 × 35 = **35,036** threads (no reuse of
//! idle nested threads) while icc's reuse bounds it at **1,296**. The
//! formulas generalize to `T + regions × (T − 1)` (gcc) vs a pool
//! high-water mark ≤ `T × (T − 1)` (icc); `tests/metrics_fidelity.rs`
//! asserts them against these counters.

use lwt_metrics::{Counter, Gauge};

/// Every OS thread this runtime ever spawned (persistent pool workers,
/// scope extras, nested fresh threads, nested pool threads).
pub static THREADS_SPAWNED: Counter = Counter::new();

/// Nested parallel regions opened.
pub static NESTED_REGIONS: Counter = Counter::new();

/// Live size of the icc-style nested thread pool.
pub static NESTED_POOL_SIZE: Gauge = Gauge::new();

/// Reset all counters (tests only; not synchronized with running
/// regions).
pub fn reset() {
    THREADS_SPAWNED.reset();
    NESTED_REGIONS.reset();
    NESTED_POOL_SIZE.reset();
}
