//! Observability counters backing the paper's thread-count claims.
//!
//! The paper's §IX-C: with T = 36 and a 1,000-iteration nested outer
//! loop, gcc creates 36 + 1000 × 35 = **35,036** threads (no reuse of
//! idle nested threads) while icc's reuse bounds it at **1,296**. The
//! formulas generalize to `T + regions × (T − 1)` (gcc) vs a pool
//! high-water mark ≤ `T × (T − 1)` (icc); `tests/metrics_fidelity.rs`
//! asserts them against these counters.
//!
//! The statics are aliases into the runtime-wide registry
//! ([`lwt_metrics::registry::COUNTERS`]) so openmp thread counts show
//! up in the same [`lwt_metrics::registry::snapshot`] every other
//! runtime reports into — this module only preserves the historical
//! openmp-local names.

use lwt_metrics::registry::COUNTERS;
use lwt_metrics::{Counter, Gauge};

/// Every OS thread this runtime ever spawned (persistent pool workers,
/// scope extras, nested fresh threads, nested pool threads). Alias of
/// the registry-wide `os_threads_spawned`.
pub static THREADS_SPAWNED: &Counter = &COUNTERS.os_threads_spawned;

/// Nested parallel regions opened. Alias of the registry-wide
/// `nested_regions`.
pub static NESTED_REGIONS: &Counter = &COUNTERS.nested_regions;

/// Live size of the icc-style nested thread pool. Alias of the
/// registry-wide `nested_pool_size`.
pub static NESTED_POOL_SIZE: &Gauge = &COUNTERS.nested_pool_size;

/// Reset these counters (tests only; not synchronized with running
/// regions — prefer [`lwt_metrics::registry::scoped`], which
/// serializes reset→run→read windows process-wide).
pub fn reset() {
    THREADS_SPAWNED.reset();
    NESTED_REGIONS.reset();
    NESTED_POOL_SIZE.reset();
}
