//! Nested parallel regions: the gcc/icc split the paper's Fig. 7
//! hinges on.
//!
//! * **gcc**: "does not reuse the idle threads in nested parallel
//!   codes, so each time an OpenMP pragma is found, a set of new
//!   threads is created" → [`run_nested_fresh`] spawns brand-new OS
//!   threads per nested region. (Deviation noted in DESIGN.md: libgomp
//!   additionally *keeps* the idle threads around, inflating thread
//!   counts further; we join them at region end, which preserves the
//!   dominant per-region creation cost.)
//! * **icc**: "reuses the idle threads … or creating them" →
//!   [`run_nested_pooled`] draws threads from a grow-only idle pool.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lwt_sync::{Parker, SpinLock};

use crate::team::{Ctx, RegionJob, Team};
use crate::OpenMp;

/// gcc-style nested region: fresh OS threads, joined at region end.
pub(crate) fn run_nested_fresh(rt: &OpenMp, size: usize, f: &(dyn Fn(&Ctx) + Sync)) {
    crate::metrics::NESTED_REGIONS.inc();
    lwt_metrics::registry::emit(lwt_metrics::EventKind::NestedRegionOpen, size as u64);
    let team = Team::new(size, rt.flavor(), crate::WaitPolicy::Passive);
    std::thread::scope(|scope| {
        for i in 1..size {
            let team = team.clone();
            crate::metrics::THREADS_SPAWNED.inc();
            scope.spawn(move || team.member(i, f));
        }
        team.member(0, f);
    });
}

/// icc-style nested region: reuse idle pool threads, growing the pool
/// on demand (threads are never returned to the OS until shutdown —
/// matching icc's 1,296-thread high-water mark in the paper).
pub(crate) fn run_nested_pooled(rt: &OpenMp, size: usize, f: &(dyn Fn(&Ctx) + Sync)) {
    crate::metrics::NESTED_REGIONS.inc();
    lwt_metrics::registry::emit(lwt_metrics::EventKind::NestedRegionOpen, size as u64);
    let team = Team::new(size, rt.flavor(), crate::WaitPolicy::Passive);
    // SAFETY: we block in `member(0, …)` below until the whole team
    // passes the end barrier, so the erased borrow cannot dangle.
    let job = unsafe { RegionJob::erase(f, team.clone()) };
    let threads = rt.nested_pool().acquire(size - 1);
    for (i, t) in threads.iter().enumerate() {
        t.assign(NestedJob {
            job: job.clone(),
            index: i + 1,
        });
    }
    team.member(0, f);
    // End barrier passed ⇒ all pooled members re-queued themselves as
    // idle before arriving at it (the `before_join` hook in the worker
    // loop), so the next region sees them in the pool.
}

pub(crate) struct NestedJob {
    job: RegionJob,
    index: usize,
}

/// One reusable nested-region thread.
pub(crate) struct NestedThread {
    parker: Parker,
    slot: SpinLock<Option<NestedJob>>,
}

impl NestedThread {
    fn new() -> Self {
        NestedThread {
            parker: Parker::new(),
            slot: SpinLock::new(None),
        }
    }

    pub(crate) fn assign(&self, job: NestedJob) {
        let mut slot = self.slot.lock();
        debug_assert!(slot.is_none(), "nested thread double-assigned");
        *slot = Some(job);
        drop(slot);
        self.parker.unpark();
    }
}

/// Grow-only pool of idle threads for icc-style nested regions.
pub(crate) struct NestedPool {
    idle: Arc<SpinLock<Vec<Arc<NestedThread>>>>,
    join: SpinLock<Vec<std::thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    /// Every thread ever created (for shutdown signalling).
    all: SpinLock<Vec<Arc<NestedThread>>>,
}

impl NestedPool {
    pub(crate) fn new() -> Self {
        NestedPool {
            idle: Arc::new(SpinLock::new(Vec::new())),
            join: SpinLock::new(Vec::new()),
            stop: Arc::new(AtomicBool::new(false)),
            all: SpinLock::new(Vec::new()),
        }
    }

    /// Take `n` threads: idle ones first, newly spawned as needed.
    pub(crate) fn acquire(&self, n: usize) -> Vec<Arc<NestedThread>> {
        let mut out = Vec::with_capacity(n);
        {
            let mut idle = self.idle.lock();
            while out.len() < n {
                match idle.pop() {
                    Some(t) => out.push(t),
                    None => break,
                }
            }
        }
        while out.len() < n {
            out.push(self.spawn_one());
        }
        out
    }

    fn spawn_one(&self) -> Arc<NestedThread> {
        crate::metrics::THREADS_SPAWNED.inc();
        crate::metrics::NESTED_POOL_SIZE.rise();
        let t = Arc::new(NestedThread::new());
        self.all.lock().push(t.clone());
        let stop = self.stop.clone();
        let me = t.clone();
        let idle = self.idle.clone();
        let handle = std::thread::Builder::new()
            .name("omp-nested".into())
            .spawn(move || loop {
                // Wait for work or shutdown.
                while me.slot.lock().is_none() {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    me.parker.park_timeout(std::time::Duration::from_millis(50));
                }
                let job = me.slot.lock().take().expect("job vanished");
                // Re-queue into the idle pool *before* arriving at the
                // end barrier (the `before_join` hook): the region's
                // master cannot pass the barrier until this member
                // arrives, so a back-to-back region is guaranteed to
                // find this thread idle instead of spawning a fresh
                // one. A premature `assign` from that next region just
                // parks in the slot until this loop comes back around.
                //
                // SAFETY: the region caller blocks until the end
                // barrier; the erased body is alive.
                unsafe {
                    job.job
                        .run_member_with(job.index, || idle.lock().push(me.clone()));
                }
            })
            .expect("spawn nested pool thread");
        self.join.lock().push(handle);
        t
    }

    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for t in self.all.lock().iter() {
            t.parker.unpark();
        }
        for h in self.join.lock().drain(..) {
            let _ = h.join();
        }
    }
}
