//! # lwt-openmp — an OpenMP-like OS-thread runtime (the paper's baseline)
//!
//! The paper evaluates every LWT library against the two dominant
//! OpenMP runtimes, and repeatedly traces their curves to specific
//! implementation choices. This crate re-implements an OpenMP-shaped
//! runtime on plain OS threads with both behavior sets selectable via
//! [`Flavor`]:
//!
//! | Mechanism | [`Flavor::Gcc`] (libgomp-like) | [`Flavor::Icc`] (Intel-like) |
//! |---|---|---|
//! | Task queue | one shared, mutex-protected queue | per-thread deques + work stealing |
//! | Task cutoff | 64 × `num_threads` total queued | 256 per thread queue |
//! | Nested `parallel` | fresh OS threads every time (no reuse) | reuse idle threads from a pool |
//! | Idle waiting | `OMP_WAIT_POLICY` active/passive ([`WaitPolicy`]) | same knob |
//!
//! The paper's observations these choices reproduce: `gcc`'s shared
//! task queue contends (Fig. 5: the paper sets `OMP_WAIT_POLICY=passive`
//! to tame it); `icc`'s work stealing costs when load is imbalanced
//! (Fig. 5) and vanishes when balanced (Fig. 6); and nested parallelism
//! oversubscribes catastrophically for both (Fig. 7: 35,036 threads for
//! gcc at 36 threads, 1,296 for icc — "LWTs … increase the performance
//! with respect to the Intel OpenMP approach by factors of 130, 48 and
//! 60").
//!
//! ## API shape
//!
//! `#pragma omp parallel` ≙ [`OpenMp::parallel`] (the caller is thread
//! 0 of the team); `#pragma omp parallel for` ≙
//! [`OpenMp::parallel_for`]; `#pragma omp task` ≙ [`Ctx::task`];
//! `#pragma omp taskwait`/implicit barrier ≙ [`Ctx::taskwait`] /
//! automatic at region end; `#pragma omp single` ≙ [`Ctx::is_master`]
//! guard.
//!
//! ```
//! use lwt_openmp::{Config, Flavor, OpenMp};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let omp = OpenMp::init(Config { num_threads: 2, ..Config::default() });
//! let sum = AtomicUsize::new(0);
//! omp.parallel_for(0..100, |i| {
//!     sum.fetch_add(i, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 4950);
//! omp.shutdown();
//! ```

#![warn(missing_docs)]

mod nested;
pub mod metrics;
mod team;

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use lwt_sync::{Parker, SpinLock};

pub use team::{Ctx, Flavor, TeamHandle, WaitPolicy};

/// Loop scheduling policy (`schedule(static|dynamic|guided)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Pre-computed equal chunks, one per thread.
    Static,
    /// Threads grab fixed-size chunks from a shared cursor.
    Dynamic(usize),
    /// Chunks shrink as the loop drains (minimum chunk given).
    Guided(usize),
}
use team::{RegionJob, Team};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Team size for top-level regions (`OMP_NUM_THREADS`).
    pub num_threads: usize,
    /// Task-queue & nested-parallelism behavior set.
    pub flavor: Flavor,
    /// Idle-thread waiting (`OMP_WAIT_POLICY`).
    pub wait_policy: WaitPolicy,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            num_threads: std::thread::available_parallelism().map_or(4, usize::from),
            flavor: Flavor::default(),
            wait_policy: WaitPolicy::default(),
        }
    }
}

struct PoolWorker {
    parker: Arc<Parker>,
    thread: Option<std::thread::JoinHandle<()>>,
}

struct RtInner {
    config: Config,
    /// Persistent workers for top-level regions (thread 0 is the
    /// caller). OpenMP runtimes keep this team alive across regions —
    /// the paper's Fig. 2 comparison explicitly excludes Pthread
    /// creation "so that the overhead of the Pthreads creation step is
    /// not added".
    workers: SpinLock<Vec<PoolWorker>>,
    /// Current top-level region, versioned by generation.
    gen: AtomicUsize,
    job: SpinLock<Option<RegionJob>>,
    stop: AtomicBool,
    shut: AtomicBool,
    /// Idle-thread pool for Icc-style nested regions.
    nested_pool: nested::NestedPool,
}

/// The OpenMP-like runtime. Cheap to clone.
#[derive(Clone)]
pub struct OpenMp {
    inner: Arc<RtInner>,
}

impl OpenMp {
    /// Spawn the persistent team (minus the caller, who participates
    /// as thread 0 of every top-level region).
    ///
    /// # Panics
    ///
    /// Panics if `config.num_threads` is zero.
    #[must_use]
    pub fn init(config: Config) -> Self {
        assert!(config.num_threads > 0, "need at least one thread");
        let inner = Arc::new(RtInner {
            config: config.clone(),
            workers: SpinLock::new(Vec::new()),
            gen: AtomicUsize::new(0),
            job: SpinLock::new(None),
            stop: AtomicBool::new(false),
            shut: AtomicBool::new(false),
            nested_pool: nested::NestedPool::new(),
        });
        let rt = OpenMp { inner };
        let mut workers = rt.inner.workers.lock();
        for i in 1..config.num_threads {
            let parker = Arc::new(Parker::new());
            let inner = rt.inner.clone();
            let p2 = parker.clone();
            metrics::THREADS_SPAWNED.inc();
            let thread = std::thread::Builder::new()
                .name(format!("omp-w{i}"))
                .spawn(move || pool_worker_main(&inner, i, &p2))
                .expect("spawn OpenMP pool worker");
            workers.push(PoolWorker {
                parker,
                thread: Some(thread),
            });
        }
        drop(workers);
        rt
    }

    /// [`OpenMp::init`] with defaults.
    #[must_use]
    pub fn init_default() -> Self {
        Self::init(Config::default())
    }

    /// Configured team size.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.inner.config.num_threads
    }

    /// The behavior set in use.
    #[must_use]
    pub fn flavor(&self) -> Flavor {
        self.inner.config.flavor
    }

    /// `#pragma omp parallel`: run `f` on every thread of a team, the
    /// caller acting as thread 0. Blocks until the implicit end
    /// barrier (which also drains outstanding tasks).
    ///
    /// Called from *inside* a region, this opens a **nested** region:
    /// fresh OS threads under [`Flavor::Gcc`], pool-reused threads
    /// under [`Flavor::Icc`] — reproducing the paper's Fig. 7 split.
    pub fn parallel<F>(&self, f: F)
    where
        F: Fn(&Ctx) + Sync,
    {
        self.parallel_n(self.inner.config.num_threads, f);
    }

    /// [`OpenMp::parallel`] with an explicit team size
    /// (`num_threads` clause).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn parallel_n<F>(&self, size: usize, f: F)
    where
        F: Fn(&Ctx) + Sync,
    {
        assert!(size > 0, "empty team");
        if team::in_region() {
            // Nested region.
            match self.inner.config.flavor {
                Flavor::Gcc => nested::run_nested_fresh(self, size, &f),
                Flavor::Icc => nested::run_nested_pooled(self, size, &f),
            }
            return;
        }
        let team = Team::new(
            size,
            self.inner.config.flavor,
            self.inner.config.wait_policy,
        );
        // SAFETY: the region blocks in `member` below until every team
        // thread has passed the end barrier, so erasing `f`'s lifetime
        // to 'static never lets it dangle.
        let job = unsafe { RegionJob::erase(&f, team.clone()) };
        let pool_size = self.inner.config.num_threads;
        let active_workers = size.min(pool_size) - 1;
        {
            let mut slot = self.inner.job.lock();
            *slot = Some(job);
        }
        self.inner.gen.fetch_add(1, Ordering::AcqRel);
        if self.inner.config.wait_policy == WaitPolicy::Passive {
            let workers = self.inner.workers.lock();
            for w in workers.iter().take(active_workers) {
                w.parker.unpark();
            }
        }
        // If the requested team is larger than the persistent pool,
        // make up the difference with temporary threads.
        std::thread::scope(|scope| {
            for extra in pool_size..size {
                let team = team.clone();
                let fr: &(dyn Fn(&Ctx) + Sync) = &f;
                metrics::THREADS_SPAWNED.inc();
                scope.spawn(move || team.member(extra, fr));
            }
            team.member(0, &f);
        });
    }

    /// `#pragma omp parallel for` with static chunking and the implicit
    /// end barrier.
    pub fn parallel_for<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_sched(range, Schedule::Static, f);
    }

    /// `#pragma omp parallel for schedule(...)`.
    pub fn parallel_for_sched<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let n = range.len();
        let start = range.start;
        let cursor = AtomicUsize::new(0);
        self.parallel(move |ctx| match schedule {
            Schedule::Static => {
                let t = ctx.thread_num();
                let size = ctx.num_threads();
                let chunk = n.div_ceil(size);
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                for i in lo..hi {
                    f(start + i);
                }
            }
            Schedule::Dynamic(chunk) => {
                let chunk = chunk.max(1);
                loop {
                    let lo = cursor.fetch_add(chunk, Ordering::AcqRel);
                    if lo >= n {
                        break;
                    }
                    for i in lo..(lo + chunk).min(n) {
                        f(start + i);
                    }
                }
            }
            Schedule::Guided(min_chunk) => {
                let min_chunk = min_chunk.max(1);
                let size = ctx.num_threads();
                loop {
                    let done = cursor.load(Ordering::Acquire);
                    if done >= n {
                        break;
                    }
                    // Guided: take a share of what is left, shrinking
                    // as the loop drains; CAS to claim exactly it.
                    let want = ((n - done) / size).max(min_chunk);
                    let hi = (done + want).min(n);
                    if cursor
                        .compare_exchange(done, hi, Ordering::AcqRel, Ordering::Relaxed)
                        .is_err()
                    {
                        continue;
                    }
                    for i in done..hi {
                        f(start + i);
                    }
                }
            }
        });
    }

    /// `#pragma omp parallel for reduction(...)`: map each index and
    /// fold with `reduce`; `identity` must be neutral for `reduce`.
    pub fn parallel_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Clone + Send + Sync,
        M: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let n = range.len();
        let start = range.start;
        let global: SpinLock<Option<T>> = SpinLock::new(None);
        let id = identity.clone();
        self.parallel(|ctx| {
            let t = ctx.thread_num();
            let size = ctx.num_threads();
            let chunk = n.div_ceil(size);
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                return; // empty chunk: contribute nothing
            }
            let mut acc = id.clone();
            for i in lo..hi {
                acc = reduce(acc, map(start + i));
            }
            let mut g = global.lock();
            *g = Some(match g.take() {
                Some(prev) => reduce(prev, acc),
                None => acc,
            });
        });
        global
            .into_inner()
            .map_or(identity, |v| v)
    }

    /// Stop the persistent pool and nested-thread pool. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.stop.store(true, Ordering::Release);
        self.inner.gen.fetch_add(1, Ordering::AcqRel);
        let mut workers = self.inner.workers.lock();
        for w in workers.iter() {
            w.parker.unpark();
        }
        for w in workers.iter_mut() {
            if let Some(t) = w.thread.take() {
                t.join().expect("OpenMP pool worker panicked");
            }
        }
        drop(workers);
        self.inner.nested_pool.shutdown();
    }

    pub(crate) fn nested_pool(&self) -> &nested::NestedPool {
        &self.inner.nested_pool
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.gen.fetch_add(1, Ordering::AcqRel);
        for w in self.workers.lock().iter_mut() {
            w.parker.unpark();
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
        self.nested_pool.shutdown();
    }
}

impl std::fmt::Debug for OpenMp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenMp")
            .field("num_threads", &self.inner.config.num_threads)
            .field("flavor", &self.inner.config.flavor)
            .finish()
    }
}

fn pool_worker_main(inner: &Arc<RtInner>, index: usize, parker: &Parker) {
    let mut last_gen = 0usize;
    loop {
        let gen = inner.gen.load(Ordering::Acquire);
        if gen == last_gen {
            if inner.stop.load(Ordering::Acquire) {
                return;
            }
            match inner.config.wait_policy {
                WaitPolicy::Active => std::hint::spin_loop(),
                WaitPolicy::Passive => {
                    parker.park_timeout(std::time::Duration::from_millis(50));
                }
            }
            continue;
        }
        last_gen = gen;
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let job = inner.job.lock().clone();
        let Some(job) = job else { continue };
        if index < job.team_size() {
            // SAFETY: the region's caller blocks until the end barrier,
            // so the erased closure outlives this call.
            unsafe { job.run_member(index) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn omp(n: usize, flavor: Flavor) -> OpenMp {
        OpenMp::init(Config {
            num_threads: n,
            flavor,
            wait_policy: WaitPolicy::Passive,
        })
    }

    #[test]
    fn region_runs_on_all_threads() {
        let rt = omp(3, Flavor::Gcc);
        let seen = SpinLock::new(HashSet::new());
        rt.parallel(|ctx| {
            assert_eq!(ctx.num_threads(), 3);
            seen.lock().insert(ctx.thread_num());
        });
        assert_eq!(seen.into_inner(), HashSet::from([0, 1, 2]));
        rt.shutdown();
    }

    #[test]
    fn caller_is_thread_zero() {
        let rt = omp(2, Flavor::Icc);
        let caller = std::thread::current().id();
        let zero_tid = SpinLock::new(None);
        rt.parallel(|ctx| {
            if ctx.thread_num() == 0 {
                *zero_tid.lock() = Some(std::thread::current().id());
            }
        });
        assert_eq!(zero_tid.into_inner(), Some(caller));
        rt.shutdown();
    }

    #[test]
    fn parallel_for_covers_range_exactly_once() {
        let rt = omp(4, Flavor::Gcc);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel_for(0..1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        rt.shutdown();
    }

    #[test]
    fn regions_reuse_the_team() {
        let rt = omp(3, Flavor::Gcc);
        let ids = SpinLock::new(HashSet::new());
        for _ in 0..5 {
            rt.parallel(|_| {
                ids.lock().insert(std::thread::current().id());
            });
        }
        // 5 regions, still only 3 distinct OS threads.
        assert_eq!(ids.into_inner().len(), 3);
        rt.shutdown();
    }

    #[test]
    fn team_larger_than_pool_spawns_extras() {
        let rt = omp(2, Flavor::Gcc);
        let seen = SpinLock::new(HashSet::new());
        rt.parallel_n(5, |ctx| {
            seen.lock().insert(ctx.thread_num());
        });
        assert_eq!(seen.into_inner().len(), 5);
        rt.shutdown();
    }

    #[test]
    fn tasks_single_region_gcc() {
        let rt = omp(3, Flavor::Gcc);
        let count = Arc::new(AtomicUsize::new(0));
        rt.parallel(|ctx| {
            if ctx.is_master() {
                for _ in 0..500 {
                    let count = count.clone();
                    ctx.task(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            ctx.taskwait();
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        rt.shutdown();
    }

    #[test]
    fn tasks_single_region_icc_steals() {
        let rt = omp(3, Flavor::Icc);
        let count = Arc::new(AtomicUsize::new(0));
        let executors = Arc::new(SpinLock::new(HashSet::new()));
        rt.parallel(|ctx| {
            if ctx.is_master() {
                for _ in 0..500 {
                    let (count, executors) = (count.clone(), executors.clone());
                    ctx.task(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                        executors.lock().insert(std::thread::current().id());
                        // Widen the stealing window.
                        std::thread::yield_now();
                    });
                }
            }
            ctx.taskwait();
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        // Work stealing should spread execution beyond the creator.
        assert!(executors.lock().len() > 1, "no stealing happened");
        rt.shutdown();
    }

    #[test]
    fn tasks_parallel_region_both_flavors() {
        for flavor in [Flavor::Gcc, Flavor::Icc] {
            let rt = omp(3, flavor);
            let count = Arc::new(AtomicUsize::new(0));
            rt.parallel(|ctx| {
                for _ in 0..100 {
                    let count = count.clone();
                    ctx.task(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
                ctx.taskwait();
            });
            assert_eq!(count.load(Ordering::Relaxed), 300, "flavor {flavor:?}");
            rt.shutdown();
        }
    }

    #[test]
    fn nested_tasks() {
        let rt = omp(2, Flavor::Icc);
        let count = Arc::new(AtomicUsize::new(0));
        rt.parallel(|ctx| {
            if ctx.is_master() {
                for _ in 0..20 {
                    let count = count.clone();
                    let ctx2 = ctx.team_handle();
                    ctx.task(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..4 {
                            let c = count.clone();
                            ctx2.task(move || {
                                c.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            }
            ctx.taskwait();
        });
        assert_eq!(count.load(Ordering::Relaxed), 20 * 5);
        rt.shutdown();
    }

    #[test]
    fn nested_parallel_gcc_fresh_threads() {
        let rt = omp(2, Flavor::Gcc);
        let inner_ids = SpinLock::new(HashSet::new());
        let outer_ids = SpinLock::new(HashSet::new());
        rt.parallel(|_| {
            outer_ids.lock().insert(std::thread::current().id());
            rt.parallel_n(2, |_| {
                inner_ids.lock().insert(std::thread::current().id());
            });
        });
        // Each of the 2 outer threads opened a nested team of 2: itself
        // + 1 fresh thread → at least 2 ids beyond the outer ones.
        let outer = outer_ids.into_inner();
        let inner = inner_ids.into_inner();
        assert_eq!(outer.len(), 2);
        assert!(inner.len() >= 4, "gcc nested must spawn fresh threads");
        rt.shutdown();
    }

    #[test]
    fn nested_parallel_icc_reuses_pool() {
        let rt = omp(2, Flavor::Icc);
        let outer_ids = SpinLock::new(HashSet::new());
        let first = SpinLock::new(HashSet::new());
        let second = SpinLock::new(HashSet::new());
        rt.parallel(|_| {
            outer_ids.lock().insert(std::thread::current().id());
            rt.parallel_n(2, |_| {
                first.lock().insert(std::thread::current().id());
            });
        });
        rt.parallel(|_| {
            outer_ids.lock().insert(std::thread::current().id());
            rt.parallel_n(2, |_| {
                second.lock().insert(std::thread::current().id());
            });
        });
        let outer = outer_ids.into_inner();
        let first = first.into_inner();
        let second = second.into_inner();
        assert_eq!(outer.len(), 2);
        // icc semantics: the nested pool grows only to the peak
        // *concurrent* demand (here 2 regions × 1 extra member) and
        // idle threads are reused. How many distinct pool threads each
        // round touches depends on whether the two regions overlapped
        // (a region ending before its sibling starts hands its thread
        // straight back for reuse within the round), so we bound the
        // union rather than demand round 2 ⊆ round 1. gcc-style fresh
        // spawning would show 4 distinct pool ids here.
        let first_pool: HashSet<_> = first.difference(&outer).copied().collect();
        let second_pool: HashSet<_> = second.difference(&outer).copied().collect();
        let all_pool: HashSet<_> = first_pool.union(&second_pool).copied().collect();
        assert!(
            all_pool.len() <= 2,
            "icc nested pool must not exceed peak concurrent demand: \
             outer {outer:?}, pool {all_pool:?}"
        );
        // Reuse must actually happen: every round-1 pool thread
        // re-queues itself as idle before the region's end barrier, so
        // round 2 finds the pool populated and at least one round-1
        // thread serves again instead of a fresh spawn.
        assert!(
            !first_pool.is_disjoint(&second_pool),
            "icc nested must reuse idle threads: {first_pool:?} vs {second_pool:?}"
        );
        rt.shutdown();
    }

    #[test]
    fn cutoff_keeps_counts_exact() {
        // Far beyond both cutoffs; every task must still run exactly
        // once whether queued or inlined.
        for flavor in [Flavor::Gcc, Flavor::Icc] {
            let rt = omp(2, flavor);
            let count = Arc::new(AtomicUsize::new(0));
            rt.parallel(|ctx| {
                if ctx.is_master() {
                    for _ in 0..2000 {
                        let count = count.clone();
                        ctx.task(move || {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                }
                ctx.taskwait();
            });
            assert_eq!(count.load(Ordering::Relaxed), 2000, "flavor {flavor:?}");
            rt.shutdown();
        }
    }

    #[test]
    fn barrier_synchronizes_team() {
        let rt = omp(3, Flavor::Gcc);
        let phase = AtomicUsize::new(0);
        rt.parallel(|ctx| {
            phase.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            assert_eq!(phase.load(Ordering::SeqCst), 3);
        });
        rt.shutdown();
    }

    #[test]
    fn shutdown_idempotent_and_drop_safe() {
        let rt = omp(2, Flavor::Icc);
        rt.parallel(|_| {});
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn omp(n: usize, flavor: Flavor) -> OpenMp {
        OpenMp::init(Config {
            num_threads: n,
            flavor,
            wait_policy: WaitPolicy::Passive,
        })
    }

    #[test]
    fn dynamic_schedule_covers_exactly_once() {
        let rt = omp(3, Flavor::Gcc);
        let hits: Vec<AtomicUsize> = (0..777).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel_for_sched(0..777, Schedule::Dynamic(16), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        rt.shutdown();
    }

    #[test]
    fn guided_schedule_covers_exactly_once() {
        let rt = omp(3, Flavor::Icc);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel_for_sched(0..1000, Schedule::Guided(4), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        rt.shutdown();
    }

    #[test]
    fn dynamic_schedule_balances_skewed_work() {
        // A wildly skewed cost distribution: dynamic scheduling should
        // still let all threads participate.
        let rt = omp(3, Flavor::Gcc);
        let by_thread = SpinLock::new(HashSet::new());
        rt.parallel_for_sched(0..300, Schedule::Dynamic(1), |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            by_thread.lock().insert(std::thread::current().id());
        });
        assert!(by_thread.into_inner().len() > 1);
        rt.shutdown();
    }

    #[test]
    fn reduction_matches_sequential() {
        let rt = omp(4, Flavor::Gcc);
        let total = rt.parallel_reduce(1..1001usize, 0usize, |i| i * i, |a, b| a + b);
        assert_eq!(total, (1..1001).map(|i| i * i).sum());
        // Empty range yields the identity.
        assert_eq!(rt.parallel_reduce(5..5, 7usize, |i| i, |a, b| a + b), 7);
        rt.shutdown();
    }

    #[test]
    fn single_runs_exactly_once_per_construct() {
        let rt = omp(3, Flavor::Gcc);
        let first = AtomicUsize::new(0);
        let second = AtomicUsize::new(0);
        rt.parallel(|ctx| {
            ctx.single(|| first.fetch_add(1, Ordering::Relaxed));
            ctx.barrier();
            ctx.single(|| second.fetch_add(1, Ordering::Relaxed));
        });
        assert_eq!(first.load(Ordering::Relaxed), 1);
        assert_eq!(second.load(Ordering::Relaxed), 1);
        rt.shutdown();
    }

    #[test]
    fn critical_serializes() {
        let rt = omp(4, Flavor::Icc);
        let mut shared = 0usize;
        let cell = SpinLock::new(&mut shared);
        rt.parallel(|ctx| {
            for _ in 0..1000 {
                ctx.critical(|| {
                    // A non-atomic RMW: only safe because of critical.
                    let mut g = cell.lock();
                    **g += 1;
                });
            }
        });
        assert_eq!(shared, 4000);
        rt.shutdown();
    }
}
