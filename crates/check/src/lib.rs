//! # lwt-check — minimal in-repo property-based testing
//!
//! A tiny, hermetic replacement for the slice of `proptest` this
//! workspace used: seeded random case generation over composable
//! [`Strategy`] values, a fixed number of cases per property, and
//! greedy shrink-on-failure so a falsified property reports a minimal
//! counterexample instead of a 200-element operation vector.
//!
//! All randomness comes from `lwt_sync::rng` (deterministic
//! `SplitMix64`/`xoshiro256**`), so a failing run is replayable: the
//! failure message prints the per-case seed, and setting
//! `LWT_CHECK_SEED` re-runs the whole property from that seed.
//! `LWT_CHECK_CASES` scales the case count without recompiling.
//!
//! ```
//! use lwt_check::{check, range, vec_of, prop_assert};
//!
//! check("reverse twice is identity", 64, vec_of(range(0u8..255), 0..32), |v| {
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     prop_assert!(w == *v, "mismatch: {w:?}");
//!     Ok(())
//! });
//! ```

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use lwt_sync::rng::{Rng, SplitMix64, UniformInt, Xoshiro256StarStar};

/// A generator of random test cases plus a shrinker toward simpler
/// cases. Mirrors the `proptest` strategy concept at one percent of
/// the surface.
pub trait Strategy {
    /// The concrete case type produced.
    type Value: Clone + Debug;

    /// Draw one random case.
    fn generate(&self, rng: &mut Xoshiro256StarStar) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. Returning
    /// an empty vector means `value` is already minimal.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

/// Uniform integer draw from a half-open range; shrinks toward the
/// range start.
#[derive(Debug, Clone)]
pub struct IntRange<T> {
    range: Range<T>,
}

/// Strategy for `range.start <= v < range.end` (like proptest's
/// `lo..hi`).
///
/// # Panics
///
/// [`Strategy::generate`] panics if the range is empty.
pub fn range<T: UniformInt + Debug>(range: Range<T>) -> IntRange<T> {
    IntRange { range }
}

impl<T: UniformInt + Debug> Strategy for IntRange<T> {
    type Value = T;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> T {
        rng.gen_range(self.range.start..self.range.end)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let lo = self.range.start.to_u64();
        let v = value.to_u64();
        let mut out = Vec::new();
        // Toward the minimum: the minimum itself, the midpoint, one
        // step down — a bisection that converges in O(log) rounds.
        for cand in [lo, lo + (v - lo) / 2, v.saturating_sub(1)] {
            if cand >= lo && cand < v && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out.into_iter().map(T::from_u64).collect()
    }
}

/// Full-width `u64` draw (like proptest's `any::<u64>()`); shrinks
/// toward zero.
#[derive(Debug, Clone, Copy)]
pub struct AnyU64;

/// Strategy over all of `u64`.
#[must_use]
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Strategy for AnyU64 {
    type Value = u64;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        [0, v >> 1, v.saturating_sub(1)]
            .into_iter()
            .filter(|&c| c < v)
            .collect()
    }
}

/// Random-length vector of cases from an element strategy; shrinks by
/// dropping elements (respecting the minimum length), then by
/// shrinking individual elements.
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    len: Range<usize>,
}

/// Strategy for vectors with `len` in the given half-open range (like
/// proptest's `collection::vec(elem, lo..hi)`).
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecOf<S> {
    VecOf { elem, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.start..self.len.end);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Structural shrinks first: halve, drop tail, drop head.
        if value.len() > min {
            let half = min.max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        // Then element-wise: first shrink candidate at each position.
        for (i, v) in value.iter().enumerate() {
            if let Some(smaller) = self.elem.shrink(v).into_iter().next() {
                let mut next = value.clone();
                next[i] = smaller;
                out.push(next);
            }
        }
        out
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let (a, b, c) = value;
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|x| (x, b.clone(), c.clone()))
            .collect();
        out.extend(self.1.shrink(b).into_iter().map(|x| (a.clone(), x, c.clone())));
        out.extend(self.2.shrink(c).into_iter().map(|x| (a.clone(), b.clone(), x)));
        out
    }
}

/// Runner knobs. [`Config::default`] reads `LWT_CHECK_CASES` and
/// `LWT_CHECK_SEED` so CI can scale effort or replay a failure without
/// recompiling.
#[derive(Debug, Clone)]
pub struct Config {
    /// Random cases per property.
    pub cases: u32,
    /// Base seed for the per-case seed stream.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking.
    pub max_shrinks: u32,
}

impl Default for Config {
    fn default() -> Self {
        let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse().ok());
        Config {
            cases: env_u64("LWT_CHECK_CASES").map_or(32, |v: u64| v as u32),
            seed: env_u64("LWT_CHECK_SEED").unwrap_or(0x1C3A_11ED_5EED_0001),
            max_shrinks: 512,
        }
    }
}

/// The outcome of one property evaluation: `Ok(())` or a failure
/// message (from an explicit `Err`, a [`prop_assert!`], or a caught
/// panic in the code under test).
pub type PropResult = Result<(), String>;

fn run_one<V: Clone + Debug>(prop: &impl Fn(&V) -> PropResult, case: &V) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(case))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Run `prop` against `cases` random cases from `strategy` under the
/// given config; on failure, shrink to a minimal counterexample and
/// panic with a replayable report.
///
/// # Panics
///
/// Panics when the property is falsified — that is the failure
/// mechanism that makes the enclosing `#[test]` fail.
pub fn check_with<S: Strategy>(
    cfg: &Config,
    name: &str,
    strategy: &S,
    prop: impl Fn(&S::Value) -> PropResult,
) {
    let mut seeds = SplitMix64::new(cfg.seed);
    for case_no in 0..cfg.cases {
        let case_seed = seeds.next_u64();
        let mut rng = Xoshiro256StarStar::seed_from_u64(case_seed);
        let case = strategy.generate(&mut rng);
        let Err(first_msg) = run_one(&prop, &case) else {
            continue;
        };

        // Greedy shrink: take the first simplification that still
        // fails, repeat until none does or the budget runs out.
        let mut best = case;
        let mut best_msg = first_msg;
        let mut budget = cfg.max_shrinks;
        'shrinking: while budget > 0 {
            for cand in strategy.shrink(&best) {
                budget = budget.saturating_sub(1);
                if let Err(msg) = run_one(&prop, &cand) {
                    best = cand;
                    best_msg = msg;
                    continue 'shrinking;
                }
                if budget == 0 {
                    break;
                }
            }
            break;
        }

        panic!(
            "property '{name}' falsified (case {case_no} of {total}, \
             case seed {case_seed:#x})\n  minimal counterexample: {best:?}\n  \
             error: {best_msg}\n  replay: LWT_CHECK_SEED={seed} (base seed)",
            total = cfg.cases,
            seed = cfg.seed,
        );
    }
}

/// [`check_with`] under the default [`Config`] with an explicit case
/// count — the common entry point for test files.
pub fn check<S: Strategy>(
    name: &str,
    cases: u32,
    strategy: S,
    prop: impl Fn(&S::Value) -> PropResult,
) {
    let cfg = Config {
        cases,
        ..Config::default()
    };
    check_with(&cfg, name, &strategy, prop);
}

/// Fail the property with a formatted message unless `cond` holds.
/// Only usable inside a closure returning [`PropResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail the property unless the two expressions are equal, reporting
/// both values. Only usable inside a closure returning [`PropResult`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}: {l:?} vs {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: {l:?} vs {r:?}",
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0u32);
        check("sum under bound", 17, range(0u32..10), |&v| {
            hits.set(hits.get() + 1);
            prop_assert!(v < 10, "out of range: {v}");
            Ok(())
        });
        assert_eq!(hits.get(), 17);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_case() {
        // Property: v < 120. Minimal counterexample is exactly 120.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("v below 120", 64, range(0u32..1000), |&v| {
                prop_assert!(v < 120, "too big: {v}");
                Ok(())
            });
        }))
        .expect_err("property must be falsified");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic message")
            .clone();
        assert!(
            msg.contains("minimal counterexample: 120"),
            "did not shrink to 120: {msg}"
        );
    }

    #[test]
    fn vector_shrinking_drops_irrelevant_elements() {
        // Property fails iff the vec contains a 7; minimal case: [7].
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("no sevens", 200, vec_of(range(0u8..10), 0..20), |v| {
                prop_assert!(!v.contains(&7), "found 7 in {v:?}");
                Ok(())
            });
        }))
        .expect_err("property must be falsified");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic message")
            .clone();
        assert!(
            msg.contains("minimal counterexample: [7]"),
            "did not shrink to [7]: {msg}"
        );
    }

    #[test]
    fn panics_in_the_property_are_caught_and_reported() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("no panics", 8, range(0u32..4), |&v| {
                assert!(v < 100, "impossible");
                if v == 0 {
                    panic!("boom at zero");
                }
                Ok(())
            });
        }))
        .expect_err("property must be falsified");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic message")
            .clone();
        assert!(msg.contains("boom at zero"), "panic not captured: {msg}");
        assert!(msg.contains("minimal counterexample: 0"), "{msg}");
    }

    #[test]
    fn tuples_generate_and_shrink_componentwise() {
        check("tuple bounds", 32, (range(1usize..8), range(0u8..4)), |&(n, b)| {
            prop_assert!((1..8).contains(&n));
            prop_assert!(b < 4);
            Ok(())
        });
    }

    #[test]
    fn fixed_base_seed_reproduces_cases() {
        let cfg = Config {
            cases: 16,
            seed: 0xABCD,
            max_shrinks: 0,
        };
        let first = std::cell::RefCell::new(Vec::new());
        check_with(&cfg, "collect A", &range(0u64..1_000_000), |&v| {
            first.borrow_mut().push(v);
            Ok(())
        });
        let second = std::cell::RefCell::new(Vec::new());
        check_with(&cfg, "collect B", &range(0u64..1_000_000), |&v| {
            second.borrow_mut().push(v);
            Ok(())
        });
        assert_eq!(first.into_inner(), second.into_inner());
    }
}
