//! Shim synchronization primitives: atomics, `fence`, and a `Mutex`.
//!
//! Each shim atomic wraps the *real* std atomic (so `get_mut` /
//! `into_inner` and free-running code keep working) plus a token cell
//! the engine uses to identify the location across address reuse.
//! Inside a model execution every operation is a schedule point, and
//! loads may observe any store permitted by the engine's memory
//! model; outside one (or after an abort) the ops fall through to
//! the real primitives untouched.

use std::sync::atomic::AtomicU64 as RawToken;
use std::sync::Arc;

use crate::exec::{current, free_run_yield, Execution, LocKey};

pub mod atomic {
    //! Drop-ins for [`std::sync::atomic`] types used by the checked
    //! crates.

    pub use std::sync::atomic::Ordering;

    use super::*;

    macro_rules! model_atomic {
        ($(#[$meta:meta])* $Name:ident, $Std:ident, $Raw:ty) => {
            $(#[$meta])*
            pub struct $Name {
                real: std::sync::atomic::$Std,
                token: RawToken,
            }

            impl $Name {
                /// Construct with an initial value.
                pub const fn new(v: $Raw) -> Self {
                    $Name { real: std::sync::atomic::$Std::new(v), token: RawToken::new(0) }
                }

                fn key(&self) -> LocKey<'_> {
                    LocKey {
                        addr: &self.real as *const _ as usize,
                        token: &self.token,
                        name: stringify!($Name),
                    }
                }

                fn enc(v: $Raw) -> u64 {
                    v as u64
                }

                fn dec(v: u64) -> $Raw {
                    v as $Raw
                }

                /// Atomic load; inside the model this is a schedule
                /// point and may observe a stale-but-legal store.
                pub fn load(&self, ord: Ordering) -> $Raw {
                    if let Some((exec, tid)) = current() {
                        let cur = Self::enc(self.real.load(Ordering::Relaxed));
                        if let Some(v) = exec.load(tid, &self.key(), ord, cur) {
                            return Self::dec(v);
                        }
                    }
                    self.real.load(ord)
                }

                /// Atomic store.
                pub fn store(&self, v: $Raw, ord: Ordering) {
                    if let Some((exec, tid)) = current() {
                        let cur = Self::enc(self.real.load(Ordering::Relaxed));
                        if exec.store(tid, &self.key(), ord, Self::enc(v), cur) {
                            self.real.store(v, Ordering::Relaxed);
                            return;
                        }
                    }
                    self.real.store(v, ord)
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, v: $Raw, ord: Ordering) -> $Raw {
                    if let Some((exec, tid)) = current() {
                        let cur = Self::enc(self.real.load(Ordering::Relaxed));
                        if let Some(old) =
                            exec.rmw(tid, &self.key(), ord, cur, &mut |_| Self::enc(v))
                        {
                            self.real.store(v, Ordering::Relaxed);
                            return Self::dec(old);
                        }
                    }
                    self.real.swap(v, ord)
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    expect: $Raw,
                    new: $Raw,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$Raw, $Raw> {
                    if let Some((exec, tid)) = current() {
                        let cur = Self::enc(self.real.load(Ordering::Relaxed));
                        match exec.cas(
                            tid,
                            &self.key(),
                            success,
                            failure,
                            Self::enc(expect),
                            Self::enc(new),
                            cur,
                        ) {
                            Some(Ok(old)) => {
                                self.real.store(new, Ordering::Relaxed);
                                return Ok(Self::dec(old));
                            }
                            Some(Err(found)) => return Err(Self::dec(found)),
                            None => {}
                        }
                    }
                    self.real.compare_exchange(expect, new, success, failure)
                }

                /// Atomic compare-exchange, weak form. The model
                /// never fails spuriously (a real weak CAS is allowed
                /// to, so this explores a subset — documented in the
                /// crate README).
                pub fn compare_exchange_weak(
                    &self,
                    expect: $Raw,
                    new: $Raw,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$Raw, $Raw> {
                    self.compare_exchange(expect, new, success, failure)
                }

                /// Exclusive read, no synchronization needed.
                pub fn get_mut(&mut self) -> &mut $Raw {
                    self.real.get_mut()
                }

                /// Consume and return the value.
                pub fn into_inner(self) -> $Raw {
                    self.real.into_inner()
                }
            }

            impl std::fmt::Debug for $Name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($Name))
                        .field(&self.real.load(Ordering::Relaxed))
                        .finish()
                }
            }

            impl Default for $Name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($Name:ident, $Raw:ty) => {
            impl $Name {
                /// Atomic wrapping add; returns the previous value.
                pub fn fetch_add(&self, v: $Raw, ord: Ordering) -> $Raw {
                    if let Some((exec, tid)) = current() {
                        let cur = Self::enc(self.real.load(Ordering::Relaxed));
                        if let Some(old) = exec.rmw(tid, &self.key(), ord, cur, &mut |o| {
                            Self::enc(Self::dec(o).wrapping_add(v))
                        }) {
                            let new = Self::dec(old).wrapping_add(v);
                            self.real.store(new, Ordering::Relaxed);
                            return Self::dec(old);
                        }
                    }
                    self.real.fetch_add(v, ord)
                }

                /// Atomic wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $Raw, ord: Ordering) -> $Raw {
                    if let Some((exec, tid)) = current() {
                        let cur = Self::enc(self.real.load(Ordering::Relaxed));
                        if let Some(old) = exec.rmw(tid, &self.key(), ord, cur, &mut |o| {
                            Self::enc(Self::dec(o).wrapping_sub(v))
                        }) {
                            let new = Self::dec(old).wrapping_sub(v);
                            self.real.store(new, Ordering::Relaxed);
                            return Self::dec(old);
                        }
                    }
                    self.real.fetch_sub(v, ord)
                }
            }
        };
    }

    model_atomic!(
        /// Model-checked drop-in for [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        AtomicUsize,
        usize
    );
    model_atomic!(
        /// Model-checked drop-in for [`std::sync::atomic::AtomicIsize`].
        AtomicIsize,
        AtomicIsize,
        isize
    );
    model_atomic!(
        /// Model-checked drop-in for [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        AtomicU64,
        u64
    );
    model_atomic!(
        /// Model-checked drop-in for [`std::sync::atomic::AtomicU8`].
        AtomicU8,
        AtomicU8,
        u8
    );
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicIsize, isize);
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicU8, u8);

    /// Model-checked drop-in for [`std::sync::atomic::AtomicBool`].
    pub struct AtomicBool {
        real: std::sync::atomic::AtomicBool,
        token: RawToken,
    }

    impl AtomicBool {
        /// Construct with an initial value.
        pub const fn new(v: bool) -> Self {
            AtomicBool { real: std::sync::atomic::AtomicBool::new(v), token: RawToken::new(0) }
        }

        fn key(&self) -> LocKey<'_> {
            LocKey {
                addr: &self.real as *const _ as usize,
                token: &self.token,
                name: "AtomicBool",
            }
        }

        /// Atomic load.
        pub fn load(&self, ord: Ordering) -> bool {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as u64;
                if let Some(v) = exec.load(tid, &self.key(), ord, cur) {
                    return v != 0;
                }
            }
            self.real.load(ord)
        }

        /// Atomic store.
        pub fn store(&self, v: bool, ord: Ordering) {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as u64;
                if exec.store(tid, &self.key(), ord, v as u64, cur) {
                    self.real.store(v, Ordering::Relaxed);
                    return;
                }
            }
            self.real.store(v, ord)
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as u64;
                if let Some(old) = exec.rmw(tid, &self.key(), ord, cur, &mut |_| v as u64) {
                    self.real.store(v, Ordering::Relaxed);
                    return old != 0;
                }
            }
            self.real.swap(v, ord)
        }

        /// Atomic compare-exchange.
        pub fn compare_exchange(
            &self,
            expect: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as u64;
                match exec.cas(
                    tid,
                    &self.key(),
                    success,
                    failure,
                    expect as u64,
                    new as u64,
                    cur,
                ) {
                    Some(Ok(old)) => {
                        self.real.store(new, Ordering::Relaxed);
                        return Ok(old != 0);
                    }
                    Some(Err(found)) => return Err(found != 0),
                    None => {}
                }
            }
            self.real.compare_exchange(expect, new, success, failure)
        }

        /// Atomic compare-exchange, weak form (never fails spuriously
        /// under the model).
        pub fn compare_exchange_weak(
            &self,
            expect: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.compare_exchange(expect, new, success, failure)
        }

        /// Exclusive read, no synchronization needed.
        pub fn get_mut(&mut self) -> &mut bool {
            self.real.get_mut()
        }

        /// Consume and return the value.
        pub fn into_inner(self) -> bool {
            self.real.into_inner()
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool").field(&self.real.load(Ordering::Relaxed)).finish()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    /// Model-checked drop-in for [`std::sync::atomic::AtomicPtr`].
    pub struct AtomicPtr<T> {
        real: std::sync::atomic::AtomicPtr<T>,
        token: RawToken,
    }

    impl<T> AtomicPtr<T> {
        /// Construct with an initial pointer.
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr { real: std::sync::atomic::AtomicPtr::new(p), token: RawToken::new(0) }
        }

        fn key(&self) -> LocKey<'_> {
            LocKey {
                addr: &self.real as *const _ as usize,
                token: &self.token,
                name: "AtomicPtr",
            }
        }

        /// Atomic load.
        pub fn load(&self, ord: Ordering) -> *mut T {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as usize as u64;
                if let Some(v) = exec.load(tid, &self.key(), ord, cur) {
                    return v as usize as *mut T;
                }
            }
            self.real.load(ord)
        }

        /// Atomic store.
        pub fn store(&self, p: *mut T, ord: Ordering) {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as usize as u64;
                if exec.store(tid, &self.key(), ord, p as usize as u64, cur) {
                    self.real.store(p, Ordering::Relaxed);
                    return;
                }
            }
            self.real.store(p, ord)
        }

        /// Atomic swap; returns the previous pointer.
        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as usize as u64;
                if let Some(old) = exec.rmw(tid, &self.key(), ord, cur, &mut |_| p as usize as u64)
                {
                    self.real.store(p, Ordering::Relaxed);
                    return old as usize as *mut T;
                }
            }
            self.real.swap(p, ord)
        }

        /// Atomic compare-exchange.
        pub fn compare_exchange(
            &self,
            expect: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            if let Some((exec, tid)) = current() {
                let cur = self.real.load(Ordering::Relaxed) as usize as u64;
                match exec.cas(
                    tid,
                    &self.key(),
                    success,
                    failure,
                    expect as usize as u64,
                    new as usize as u64,
                    cur,
                ) {
                    Some(Ok(old)) => {
                        self.real.store(new, Ordering::Relaxed);
                        return Ok(old as usize as *mut T);
                    }
                    Some(Err(found)) => return Err(found as usize as *mut T),
                    None => {}
                }
            }
            self.real.compare_exchange(expect, new, success, failure)
        }

        /// Atomic compare-exchange, weak form (never fails spuriously
        /// under the model).
        pub fn compare_exchange_weak(
            &self,
            expect: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.compare_exchange(expect, new, success, failure)
        }

        /// Exclusive read, no synchronization needed.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.real.get_mut()
        }

        /// Consume and return the pointer.
        pub fn into_inner(self) -> *mut T {
            self.real.into_inner()
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicPtr").field(&self.real.load(Ordering::Relaxed)).finish()
        }
    }

    /// Model-checked drop-in for [`std::sync::atomic::fence`]. Every
    /// model fence joins the global SC clock both ways — stronger
    /// than a C11 acquire/release fence, never weaker.
    pub fn fence(ord: Ordering) {
        if let Some((exec, tid)) = current() {
            if exec.fence(tid, ord) {
                return;
            }
        }
        std::sync::atomic::fence(ord)
    }
}

// ---------------------------------------------------------------------------
// Mutex

/// Model-checked drop-in for [`std::sync::Mutex`].
///
/// Lock acquisition is a schedule point (looping, so contention
/// orders are explored); the release edge from unlock to the next
/// lock is modeled with the holder's clock. One restriction, checked
/// at runtime: the critical section must not perform shim-atomic
/// operations. This keeps real hold times schedule-point-free so
/// free-running TLS destructors (e.g. the fiber stack cache donating
/// to the global pool at thread exit) can never deadlock against a
/// suspended lock holder.
pub struct Mutex<T: ?Sized> {
    token: RawToken,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Construct a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { token: RawToken::new(0), inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn key(&self) -> LocKey<'_> {
        LocKey { addr: &self.token as *const _ as usize, token: &self.token, name: "Mutex" }
    }

    /// Acquire the lock, blocking (model: scheduling) until held.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        if let Some((exec, tid)) = current() {
            let mut held: Option<(std::sync::MutexGuard<'_, T>, bool)> = None;
            let acquired = exec.mutex_lock(tid, &self.key(), &mut || {
                match self.inner.try_lock() {
                    Ok(g) => {
                        held = Some((g, false));
                        true
                    }
                    Err(std::sync::TryLockError::Poisoned(pe)) => {
                        held = Some((pe.into_inner(), true));
                        true
                    }
                    Err(std::sync::TryLockError::WouldBlock) => false,
                }
            });
            if acquired {
                let (g, poisoned) = held.expect("model mutex_lock returned without real lock");
                let guard =
                    MutexGuard { lock: self, inner: Some(g), model: Some((exec, tid)) };
                return if poisoned {
                    Err(std::sync::PoisonError::new(guard))
                } else {
                    Ok(guard)
                };
            }
            drop(held);
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { lock: self, inner: Some(g), model: None }),
            Err(pe) => Err(std::sync::PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(pe.into_inner()),
                model: None,
            })),
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, tid)) = self.model.take() {
            exec.mutex_unlock(tid, &self.lock.key());
        }
        // The real std guard drops after the model release is
        // recorded; other model threads cannot run until the next
        // schedule point anyway.
        self.inner = None;
    }
}

/// Free-run helper re-exported for the thread shim.
pub(crate) fn yield_like() {
    if let Some((exec, tid)) = current() {
        if exec.yield_now(tid) {
            return;
        }
        free_run_yield();
        return;
    }
    std::thread::yield_now()
}
